"""The aggregation register mechanism of paper Figure 3.

Three single-ported register arrays cooperate to keep one piece of
algorithmic state (per-queue size, in the paper's example) up to date:

* the **main register** holds the algorithmic state and serves packet
  events' reads and read-modify-writes,
* the **enqueue aggregation register** accumulates pending ADDs from
  enqueue events (``0: ADD 200`` in Figure 3 is two aggregated 100-byte
  enqueues),
* the **dequeue aggregation register** accumulates pending SUBs from
  dequeue events.

"During idle clock cycles when there is spare memory bandwidth
available, the aggregated operations are applied to the main register."
A drain visits one *index* per idle cycle, applying that index's entire
accumulated net delta in a single main-register operation — this is
what makes the backlog (and therefore the staleness) bounded: pending
work is capped by the number of state entries, not by the event rate.

Every array is wrapped in a :class:`MemoryPortModel`, so a correctly
operating file shows **zero** port conflicts even when an enqueue, a
dequeue, and a packet read land on the same cycle — the claim the
Figure 3 bench verifies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List

from repro.pisa.externs.register import Register
from repro.state.memory import MemoryPortModel
from repro.state.store import StateStore, make_store


@dataclass
class PendingOp:
    """Drain-queue entry: a dirty index and when it was first touched."""

    index: int
    cycle_issued: int


class AggregationRegisterFile:
    """Figure 3's main + enqueue-aggregation + dequeue-aggregation file.

    ``size`` is the number of state entries (queues).  Aggregation
    arrays accumulate per-index deltas; a FIFO of *dirty indices*
    (ordered by first touch) decides drain order, and a drain clears
    both aggregation entries of its index jointly, preserving per-index
    event ordering so the main register never transiently underflows.
    """

    #: Register width; queue sizes fit comfortably in 32 bits.
    WIDTH_BITS = 32

    #: Drain-priority policies (§4's open question about how memory
    #: accesses should be scheduled): first-touched-first ("fifo"),
    #: largest pending delta first ("largest"), or most recently
    #: touched first ("lifo", a deliberately bad policy for contrast).
    DRAIN_POLICIES = ("fifo", "largest", "lifo")

    def __init__(
        self, size: int, strict_ports: bool = True, drain_policy: str = "fifo"
    ) -> None:
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        if drain_policy not in self.DRAIN_POLICIES:
            raise ValueError(f"unknown drain policy {drain_policy!r}")
        self.size = size
        self.drain_policy = drain_policy
        self.main = MemoryPortModel(
            Register(size, self.WIDTH_BITS, name="main"), ports=1, strict=strict_ports
        )
        self.enq_agg = MemoryPortModel(
            Register(size, self.WIDTH_BITS, name="enq_agg"),
            ports=1,
            strict=strict_ports,
        )
        self.deq_agg = MemoryPortModel(
            Register(size, self.WIDTH_BITS, name="deq_agg"),
            ports=1,
            strict=strict_ports,
        )
        # Dirty indices in first-touch order (index -> cycle first touched).
        self._dirty: "OrderedDict[int, int]" = OrderedDict()
        # Ground truth for staleness measurement (not a hardware array).
        self._truth = make_store(size, 0, name="truth")
        self.drained_indices = 0
        self.total_drain_lag_cycles = 0
        self.max_drain_lag_cycles = 0

    # ------------------------------------------------------------------
    # Event-side operations (one per cycle per array)
    # ------------------------------------------------------------------
    def enqueue_update(self, cycle: int, index: int, delta: int) -> None:
        """An enqueue event aggregates +delta for ``index``."""
        self._check(index)
        if delta < 0:
            raise ValueError(f"enqueue delta must be non-negative, got {delta}")
        self.enq_agg.add(cycle, index, delta)
        self._dirty.setdefault(index, cycle)
        self._truth[index] += delta

    def dequeue_update(self, cycle: int, index: int, delta: int) -> None:
        """A dequeue event aggregates −delta for ``index``."""
        self._check(index)
        if delta < 0:
            raise ValueError(f"dequeue delta must be non-negative, got {delta}")
        if self._truth[index] < delta:
            raise ValueError(
                f"dequeue of {delta} from index {index} exceeds true "
                f"occupancy {self._truth[index]}"
            )
        self.deq_agg.add(cycle, index, delta)
        self._dirty.setdefault(index, cycle)
        self._truth[index] -= delta

    def packet_read(self, cycle: int, index: int) -> int:
        """A packet event reads the (possibly stale) main register."""
        self._check(index)
        return self.main.read(cycle, index)

    # ------------------------------------------------------------------
    # Idle-cycle drain
    # ------------------------------------------------------------------
    def drain(self, cycle: int, max_indices: int = 1) -> int:
        """Apply pending deltas of up to ``max_indices`` dirty indices.

        Called on idle cycles (the main register's port is free, and so
        are the aggregation arrays' — no event landed this cycle).  For
        each visited index both aggregation entries are read-and-cleared
        and the net delta folds into the main register in one operation.
        Returns the number of indices drained.
        """
        drained = 0
        while drained < max_indices and self._dirty:
            index, first_touch = self._pick_dirty()
            add = self.enq_agg.peek(index)
            sub = self.deq_agg.peek(index)
            self.enq_agg.write(cycle, index, 0)
            self.deq_agg.write(cycle, index, 0)
            self.main.add(cycle, index, add - sub)
            self.drained_indices += 1
            lag = cycle - first_touch
            self.total_drain_lag_cycles += lag
            self.max_drain_lag_cycles = max(self.max_drain_lag_cycles, lag)
            drained += 1
        return drained

    def _pick_dirty(self):
        """Select the next dirty index according to the drain policy."""
        if self.drain_policy == "fifo":
            return self._dirty.popitem(last=False)
        if self.drain_policy == "lifo":
            return self._dirty.popitem(last=True)
        # "largest": the index with the biggest absolute pending delta —
        # prioritizes the most-wrong entries (§4's "most important").
        # Dirty sets are small, so per-index peeks beat full snapshots.
        enq, deq = self.enq_agg, self.deq_agg
        index = max(self._dirty, key=lambda i: abs(enq.peek(i) - deq.peek(i)))
        first_touch = self._dirty.pop(index)
        return index, first_touch

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_indices(self) -> int:
        """Dirty indices awaiting a drain."""
        return len(self._dirty)

    def truth(self, index: int) -> int:
        """The exact current value (as multi-ported memory would hold)."""
        self._check(index)
        return self._truth[index]

    def staleness(self, index: int) -> int:
        """Absolute error of the main register vs. truth at ``index``."""
        return abs(self.truth(index) - self.main.peek(index))

    def max_staleness(self) -> int:
        """Worst-case absolute error across all entries."""
        snapshot = self.main.register.snapshot()
        return max(abs(t - m) for t, m in zip(self._truth.snapshot(), snapshot))

    def stores(self) -> List[StateStore]:
        """All backing stores of the file (main, aggregations, truth)."""
        return [
            *self.main.stores(),
            *self.enq_agg.stores(),
            *self.deq_agg.stores(),
            self._truth,
        ]

    def mean_drain_lag_cycles(self) -> float:
        """Mean cycles an index stayed dirty before draining."""
        return (
            self.total_drain_lag_cycles / self.drained_indices
            if self.drained_indices
            else 0.0
        )

    def port_report(self) -> Dict[str, Dict[str, int]]:
        """Port-usage reports for all three arrays."""
        return {
            "main": self.main.report(),
            "enq_agg": self.enq_agg.report(),
            "deq_agg": self.deq_agg.report(),
        }

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} out of range [0, {self.size})")

    def __repr__(self) -> str:
        return (
            f"AggregationRegisterFile(size={self.size}, "
            f"dirty={self.pending_indices}, max_staleness={self.max_staleness()})"
        )
