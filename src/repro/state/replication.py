"""State replication across independent pipelines (paper §4).

"Things get more complicated when a device has multiple independent
pipelines (e.g. Tofino has four independent pipelines).  Deciding how
state is shared turns out to be a key design decision."

On such a device each pipeline holds its own copy of the algorithmic
state, and a flow whose packets spray across pipelines updates all the
copies *partially*.  :class:`ReplicatedRegister` models the standard
remedy — periodic delta exchange:

* each replica accumulates a local **delta** since the last sync,
* :meth:`sync` folds every replica's delta into the shared **base** and
  redistributes it, so all replicas agree right after a sync,
* between syncs, a replica's reads miss the other pipelines' deltas —
  the cross-pipeline staleness this module measures.

:func:`run_multipipe` drives a per-flow-occupancy workload across K
pipelines and reports read error and sync cost as a function of the
sync period, quantifying §4's "key design decision".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.rng import SeededRng
from repro.state.store import StateStore, make_store


class ReplicatedRegister:
    """One logical register array replicated across K pipelines.

    The base copy and each replica's delta are :class:`StateStore`
    instances; delta arrays are a natural fit for the sparse ``dict``
    backend since flows touch few indices between syncs.
    """

    def __init__(
        self,
        replicas: int,
        size: int,
        name: str = "replicated",
        backend: Optional[str] = None,
    ) -> None:
        if replicas <= 0:
            raise ValueError(f"replica count must be positive, got {replicas}")
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.replicas = replicas
        self.size = size
        self.name = name
        self._base = make_store(size, 0, backend, name=f"{name}.base")
        self._delta = [
            make_store(size, 0, backend, name=f"{name}.delta[{i}]")
            for i in range(replicas)
        ]
        self.syncs = 0
        self.entries_synced = 0

    # ------------------------------------------------------------------
    # Per-pipeline data-plane operations
    # ------------------------------------------------------------------
    def add(self, replica: int, index: int, delta: int) -> None:
        """Pipeline ``replica`` applies a local read-modify-write add."""
        self._check(replica, index)
        self._delta[replica][index] += delta

    def read(self, replica: int, index: int) -> int:
        """Pipeline ``replica``'s view: base + its own delta only."""
        self._check(replica, index)
        return self._base[index] + self._delta[replica][index]

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------
    def sync(self) -> int:
        """Fold all deltas into the base; returns entries exchanged.

        The cost model: every index any replica dirtied must cross the
        inter-pipeline interconnect once per dirty replica.
        """
        self.syncs += 1
        exchanged = 0
        for index in range(self.size):
            for replica in range(self.replicas):
                delta = self._delta[replica][index]
                if delta:
                    self._base[index] += delta
                    self._delta[replica][index] = 0
                    exchanged += 1
        self.entries_synced += exchanged
        return exchanged

    # ------------------------------------------------------------------
    # Truth and staleness
    # ------------------------------------------------------------------
    def truth(self, index: int) -> int:
        """The global value (base plus every replica's pending delta)."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} out of range")
        return self._base[index] + sum(
            self._delta[replica][index] for replica in range(self.replicas)
        )

    def read_error(self, replica: int, index: int) -> int:
        """How far one replica's view is from the global truth."""
        return abs(self.truth(index) - self.read(replica, index))

    def _check(self, replica: int, index: int) -> None:
        if not 0 <= replica < self.replicas:
            raise IndexError(f"replica {replica} out of range [0, {self.replicas})")
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} out of range [0, {self.size})")

    def stores(self) -> List[StateStore]:
        """The backing stores (for checkpoints and state manifests)."""
        return [self._base, *self._delta]

    def __repr__(self) -> str:
        return (
            f"ReplicatedRegister({self.name!r}, replicas={self.replicas}, "
            f"size={self.size}, syncs={self.syncs})"
        )


@dataclass
class MultiPipeResult:
    """Outcome of one multi-pipeline run."""

    pipelines: int
    sync_period_cycles: Optional[int]
    reads: int
    mean_read_error: float
    max_read_error: int
    stale_read_fraction: float
    sync_entries_per_cycle: float

    def summary_row(self) -> str:
        """A printable summary row."""
        period = (
            f"{self.sync_period_cycles}" if self.sync_period_cycles else "never"
        )
        return (
            f"pipes={self.pipelines} sync_every={period:<6} "
            f"read_err(mean/max)={self.mean_read_error:7.1f}/{self.max_read_error:<6} "
            f"stale%={100 * self.stale_read_fraction:5.1f} "
            f"sync_cost={self.sync_entries_per_cycle:6.3f} entries/cycle"
        )


def run_multipipe(
    pipelines: int = 4,
    sync_period_cycles: Optional[int] = 64,
    cycles: int = 50_000,
    flows: int = 32,
    update_rate: float = 0.5,
    read_rate: float = 0.3,
    seed: int = 3,
) -> MultiPipeResult:
    """Flows spray across pipelines; replicas track per-flow occupancy.

    Each cycle, each pipeline applies an occupancy update (±64B, never
    below zero globally) with probability ``update_rate`` and reads a
    random flow's occupancy with probability ``read_rate``.  Smaller
    sync periods buy accuracy with interconnect bandwidth; ``None``
    never syncs (fully partitioned state).
    """
    if pipelines <= 0:
        raise ValueError(f"pipeline count must be positive, got {pipelines}")
    if sync_period_cycles is not None and sync_period_cycles <= 0:
        raise ValueError("sync period must be positive (or None)")
    register = ReplicatedRegister(pipelines, flows)
    rng = SeededRng(seed, "multipipe")
    reads = 0
    stale_reads = 0
    total_error = 0
    max_error = 0
    for cycle in range(cycles):
        if sync_period_cycles is not None and cycle and cycle % sync_period_cycles == 0:
            register.sync()
        for pipe in range(pipelines):
            if rng.random() < update_rate:
                flow = rng.randint(0, flows - 1)
                if register.truth(flow) >= 64 and rng.random() < 0.5:
                    register.add(pipe, flow, -64)
                else:
                    register.add(pipe, flow, 64)
            if rng.random() < read_rate:
                flow = rng.randint(0, flows - 1)
                error = register.read_error(pipe, flow)
                reads += 1
                total_error += error
                max_error = max(max_error, error)
                if error:
                    stale_reads += 1
    return MultiPipeResult(
        pipelines=pipelines,
        sync_period_cycles=sync_period_cycles,
        reads=reads,
        mean_read_error=total_error / reads if reads else 0.0,
        max_read_error=max_error,
        stale_read_fraction=stale_reads / reads if reads else 0.0,
        sync_entries_per_cycle=register.entries_synced / cycles,
    )
