"""Memory-port accounting.

The §4 design question: "an enqueue event wants to increment the size
of queue 0, a dequeue event wants to decrement the size of queue 1, and
an ingress packet event wants to read the size of queue 2 — is it
possible to support all of these memory operations simultaneously
without resorting to multi-ported memory?"

:class:`MemoryPortModel` wraps a register array with per-cycle port
accounting so experiments can count exactly how often a design would
have needed more ports than the hardware provides.  In *strict* mode an
over-subscription raises; in counting mode it is tallied (the ablation
for "what if we had just used one array for everything").
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.pisa.externs.register import Register
from repro.state.store import StateStore


class PortConflictError(RuntimeError):
    """More same-cycle accesses than the memory has ports."""


class MemoryPortModel:
    """Port-usage accounting wrapper around a :class:`Register`.

    Every access passes the current clock cycle; the model counts
    accesses per cycle and flags cycles that exceed ``ports``.
    """

    def __init__(self, register: Register, ports: int = 1, strict: bool = False) -> None:
        if ports <= 0:
            raise ValueError(f"port count must be positive, got {ports}")
        self.register = register
        self.ports = ports
        self.strict = strict
        self._current_cycle: Optional[int] = None
        self._accesses_this_cycle = 0
        self.total_accesses = 0
        self.conflict_cycles = 0
        self.conflict_accesses = 0
        self.busiest_cycle_accesses = 0

    def _account(self, cycle: int) -> None:
        if cycle != self._current_cycle:
            self._current_cycle = cycle
            self._accesses_this_cycle = 0
        self._accesses_this_cycle += 1
        self.total_accesses += 1
        self.busiest_cycle_accesses = max(
            self.busiest_cycle_accesses, self._accesses_this_cycle
        )
        if self._accesses_this_cycle > self.ports:
            if self._accesses_this_cycle == self.ports + 1:
                self.conflict_cycles += 1
            self.conflict_accesses += 1
            if self.strict:
                raise PortConflictError(
                    f"register {self.register.name!r}: "
                    f"{self._accesses_this_cycle} accesses in cycle {cycle} "
                    f"but only {self.ports} port(s)"
                )

    # ------------------------------------------------------------------
    # Ported operations
    # ------------------------------------------------------------------
    def read(self, cycle: int, index: int) -> int:
        """Read through one port at ``cycle``."""
        self._account(cycle)
        return self.register.read(index)

    def write(self, cycle: int, index: int, value: int) -> None:
        """Write through one port at ``cycle``."""
        self._account(cycle)
        self.register.write(index, value)

    def add(self, cycle: int, index: int, delta: int) -> int:
        """Read-modify-write through one port at ``cycle``."""
        self._account(cycle)
        return self.register.add(index, delta)

    def peek(self, index: int) -> int:
        """Read without consuming a port (models/reports only).

        Hardware has no free reads; this exists so staleness probes and
        the idle-cycle drain bookkeeping don't distort the port counts.
        """
        return self.register.peek(index)

    def stores(self) -> List[StateStore]:
        """The wrapped register's backing stores."""
        return self.register.stores()

    def report(self) -> Dict[str, int]:
        """Port-usage summary."""
        return {
            "ports": self.ports,
            "total_accesses": self.total_accesses,
            "conflict_cycles": self.conflict_cycles,
            "conflict_accesses": self.conflict_accesses,
            "busiest_cycle_accesses": self.busiest_cycle_accesses,
        }

    def __repr__(self) -> str:
        return (
            f"MemoryPortModel({self.register.name!r}, ports={self.ports}, "
            f"conflicts={self.conflict_cycles})"
        )
