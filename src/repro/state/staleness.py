"""Staleness measurement.

Paper §4: "whenever state is distributed across pipeline stages, the
algorithmic state will sometimes be stale ... staleness is bounded if
the pipeline runs slightly faster than the line rate."

:class:`StalenessTracker` samples (truth, observed) pairs over time and
summarizes the error — both in value terms (how wrong was the queue
size a packet event read) and lag terms (how many cycles behind the
main register ran).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class StalenessReport:
    """Summary statistics of observed staleness."""

    samples: int
    max_error: int
    mean_error: float
    stale_fraction: float
    max_lag_cycles: int
    mean_lag_cycles: float

    def row(self) -> str:
        """A printable report row."""
        return (
            f"samples={self.samples} max_err={self.max_error} "
            f"mean_err={self.mean_error:.2f} stale%={100 * self.stale_fraction:.1f} "
            f"max_lag={self.max_lag_cycles}cyc mean_lag={self.mean_lag_cycles:.1f}cyc"
        )


class StalenessTracker:
    """Accumulates staleness samples cheaply (no per-sample storage)."""

    def __init__(self) -> None:
        self.samples = 0
        self.stale_samples = 0
        self.max_error = 0
        self.total_error = 0
        self.max_lag_cycles = 0
        self.total_lag_cycles = 0
        self.lag_samples = 0

    def record_value(self, truth: int, observed: int) -> None:
        """Record one packet-event read of possibly stale state."""
        error = abs(truth - observed)
        self.samples += 1
        if error:
            self.stale_samples += 1
        self.max_error = max(self.max_error, error)
        self.total_error += error

    def record_lag(self, lag_cycles: int) -> None:
        """Record how long one aggregated op waited before draining."""
        if lag_cycles < 0:
            raise ValueError(f"lag must be non-negative, got {lag_cycles}")
        self.lag_samples += 1
        self.max_lag_cycles = max(self.max_lag_cycles, lag_cycles)
        self.total_lag_cycles += lag_cycles

    def report(self) -> StalenessReport:
        """Summarize everything recorded so far."""
        return StalenessReport(
            samples=self.samples,
            max_error=self.max_error,
            mean_error=self.total_error / self.samples if self.samples else 0.0,
            stale_fraction=self.stale_samples / self.samples if self.samples else 0.0,
            max_lag_cycles=self.max_lag_cycles,
            mean_lag_cycles=(
                self.total_lag_cycles / self.lag_samples if self.lag_samples else 0.0
            ),
        )
