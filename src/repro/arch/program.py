"""The event-driven programming model.

A data-plane program subclasses :class:`P4Program` and registers
per-event handlers with the :func:`handler` decorator, mirroring the
paper's per-event ``control`` blocks::

    class Microburst(P4Program):
        def __init__(self):
            super().__init__()
            self.buf_size = SharedRegister(NUM_REGS, name="flowBufSize_reg")

        @handler(EventType.INGRESS_PACKET)
        def ingress(self, ctx, pkt, meta):
            ...  # compute flowID, init enq/deq metadata, read bufSize

        @handler(EventType.ENQUEUE)
        def on_enqueue(self, ctx, event):
            ...  # bufSize_reg.add(event.meta["flowID"], pkt_len)

Packet-event handlers (ingress / egress / recirculated / generated)
receive ``(ctx, pkt, std_meta)``; all other handlers receive
``(ctx, event)``.  ``ctx`` is the :class:`ProgramContext` the
architecture provides — the program's window onto target services
(time, timers, packet generation, user events, the control-plane
channel).

Loading a program onto an architecture validates its handled events
against the target's :class:`~repro.arch.description.ArchitectureDescription`
(paper §2: the architecture description file declares the supported
events).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.arch.events import Event, EventType, PIPELINE_PACKET_EVENTS
from repro.packet.packet import Packet
from repro.pisa.externs.register import Register, SharedRegister
from repro.pisa.metadata import StandardMetadata

_HANDLER_ATTR = "_repro_handles_event"


def handler(kind: EventType) -> Callable:
    """Mark a method as the handler (control block) for ``kind``."""

    def decorate(fn: Callable) -> Callable:
        existing = getattr(fn, _HANDLER_ATTR, None)
        if existing is not None:
            raise TypeError(
                f"{fn.__qualname__} already handles {existing}; one handler "
                f"method handles exactly one event kind"
            )
        setattr(fn, _HANDLER_ATTR, kind)
        return fn

    return decorate


class ProgramContext:
    """Target services exposed to program handlers.

    Architectures subclass this and implement the capabilities their
    description advertises; the base class raises for everything, so a
    program that calls an unavailable service fails loudly.
    """

    @property
    def now_ps(self) -> int:
        """Current simulated time."""
        raise NotImplementedError

    def configure_timer(self, timer_id: int, period_ps: int) -> None:
        """Arm periodic timer ``timer_id``; fires TIMER events."""
        raise NotImplementedError(f"{type(self).__name__} has no timer unit")

    def cancel_timer(self, timer_id: int) -> None:
        """Disarm a periodic timer."""
        raise NotImplementedError(f"{type(self).__name__} has no timer unit")

    def generate_packet(self, pkt: Packet) -> None:
        """Inject a program-built packet into the ingress path."""
        raise NotImplementedError(f"{type(self).__name__} has no packet generator")

    def raise_user_event(self, meta: Dict[str, int], delay_ps: int = 0) -> None:
        """Fire a USER event (optionally after a delay)."""
        raise NotImplementedError(f"{type(self).__name__} has no user events")

    def notify_control_plane(self, message: Dict[str, int]) -> None:
        """Send a digest/notification to the control plane."""
        raise NotImplementedError(f"{type(self).__name__} has no CPU channel")

    def link_up(self, port: int) -> bool:
        """Current link status of ``port``."""
        raise NotImplementedError(f"{type(self).__name__} has no link monitor")

    def queue_depth_bytes(self, port: int, queue_id: int = 0) -> int:
        """Depth of one egress queue (architectural introspection)."""
        raise NotImplementedError(f"{type(self).__name__} has no queue depths")


PacketHandler = Callable[[ProgramContext, Packet, StandardMetadata], None]
EventHandler = Callable[[ProgramContext, Event], None]


class P4Program:
    """Base class for event-driven data-plane programs.

    Subclasses declare externs as attributes in ``__init__`` and
    register handlers with :func:`handler`.  The architecture calls
    :meth:`on_load` once after validation — the place to configure
    timers and install table defaults.
    """

    name: str = "program"

    def __init__(self) -> None:
        self._handlers: Dict[EventType, Callable] = {}
        self._shared_regs: Optional[List[SharedRegister]] = None
        for attr in dir(type(self)):
            fn = getattr(type(self), attr)
            kind = getattr(fn, _HANDLER_ATTR, None)
            if kind is None:
                continue
            if kind in self._handlers:
                raise TypeError(
                    f"{type(self).__name__} defines two handlers for {kind}"
                )
            self._handlers[kind] = getattr(self, attr)

    # ------------------------------------------------------------------
    # Introspection used by architectures
    # ------------------------------------------------------------------
    def handled_events(self) -> Set[EventType]:
        """The event kinds this program handles."""
        return set(self._handlers)

    def handler_for(self, kind: EventType) -> Optional[Callable]:
        """The bound handler for ``kind``, or None."""
        return self._handlers.get(kind)

    def externs(self) -> Iterator[Tuple[str, object]]:
        """Yield (attribute name, extern) for every declared extern."""
        from repro.pisa.externs.counter import Counter
        from repro.pisa.externs.meter import Meter
        from repro.pisa.externs.pifo import PifoQueue
        from repro.pisa.externs.sketch import BloomFilter, CountMinSketch
        from repro.pisa.externs.window import ShiftRegister, SlidingWindow

        extern_types = (
            Register,
            Counter,
            Meter,
            CountMinSketch,
            BloomFilter,
            PifoQueue,
            ShiftRegister,
            SlidingWindow,
        )
        for attr, value in sorted(vars(self).items()):
            if isinstance(value, extern_types):
                yield attr, value

    def shared_registers(self) -> List[SharedRegister]:
        """All declared :class:`SharedRegister` externs.

        Cached after the first call — architectures consult this around
        every handler dispatch, and externs are declared in ``__init__``,
        before any architecture can ask.
        """
        regs = self._shared_regs
        if regs is None:
            regs = [
                ext for _name, ext in self.externs() if isinstance(ext, SharedRegister)
            ]
            self._shared_regs = regs
        return regs

    def state_bits(self) -> int:
        """Total stateful footprint of all externs that report one.

        This is the quantity behind the paper's "reduce the stateful
        requirements at least four-fold" claim for the microburst
        example; the state-reduction bench compares it across programs.
        """
        total = 0
        for _name, ext in self.externs():
            bits = getattr(ext, "state_bits", None)
            if bits is not None:
                total += bits
        return total

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_load(self, ctx: ProgramContext) -> None:
        """Called once when the program is loaded onto an architecture."""

    # ------------------------------------------------------------------
    # Dispatch (called by architectures)
    # ------------------------------------------------------------------
    def dispatch_packet_event(
        self,
        kind: EventType,
        ctx: ProgramContext,
        pkt: Packet,
        meta: StandardMetadata,
    ) -> None:
        """Run the packet-event handler for ``kind`` if present."""
        if kind not in PIPELINE_PACKET_EVENTS:
            raise ValueError(f"{kind} is not a pipeline packet event")
        fn = self._handlers.get(kind)
        if fn is not None:
            fn(ctx, pkt, meta)

    def dispatch_event(self, ctx: ProgramContext, event: Event) -> None:
        """Run the non-packet event handler for ``event`` if present."""
        fn = self._handlers.get(event.kind)
        if fn is not None:
            fn(ctx, event)

    def __repr__(self) -> str:
        events = ", ".join(sorted(k.value for k in self._handlers))
        return f"{type(self).__name__}(handles: {events})"
