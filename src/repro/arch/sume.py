"""The SUME Event Switch (paper Figure 4, §5).

A single physical P4 pipeline processes *all* events: the Event Merger
gathers newly fired events (enqueue, dequeue, drop, timer, link status,
…) and places them in metadata that flows through the pipeline — riding
on an ingress packet when one is available, or on an injected empty
packet otherwise.  A configurable packet generator and a timer unit
provide packet-generation and periodic events; output queues fire the
buffer events.

Compared to the logical architecture of Figure 2, event handling here
is *asynchronous*: an event waits in the merger until a carrier takes
it through the pipeline, so shared state read by the ingress thread can
be momentarily stale — exactly the bounded-staleness behaviour §4
discusses.  The merger statistics and per-event delivery latencies make
that observable.
"""

from __future__ import annotations

from sys import getrefcount
from typing import Dict, List, Optional

from repro.arch.base import SwitchBase
from repro.arch.description import SUME_EVENT_SWITCH, ArchitectureDescription
from repro.arch.events import Event, EventType
from repro.arch.generator import GeneratorConfig, PacketGenerator
from repro.arch.merger import EventMerger
from repro.packet.headers import Ethernet, EtherType
from repro.packet.packet import Packet
from repro.pisa.metadata import StandardMetadata
from repro.pisa.pipeline import Pipeline
from repro.sim.kernel import Simulator


class SumeEventSwitch(SwitchBase):
    """Figure 4's SUME Event Switch on a single physical P4 pipeline."""

    MAX_RECIRCULATIONS = 16

    def __init__(
        self,
        sim: Simulator,
        description: ArchitectureDescription = SUME_EVENT_SWITCH,
        name: str = "sume",
        merger_slots_per_kind: int = 1,
        merger_queue_capacity: int = 64,
        merger_injection_enabled: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(sim, description, name=name, **kwargs)
        self.pipeline = Pipeline(
            f"{name}.p4",
            self._pipeline_control,
            stage_count=description.pipeline_stages,
            clock_mhz=description.clock_mhz,
        )
        self.merger = EventMerger(
            sim,
            clock_ps=self.pipeline.cycle_ps,
            slots_per_kind=merger_slots_per_kind,
            queue_capacity=merger_queue_capacity,
            injection_enabled=merger_injection_enabled,
        )
        self.merger.set_inject_fn(self._inject_empty_packet)
        self.merger.set_drop_fn(self.bus.drop)
        self.generator = PacketGenerator(sim, self.inject_generated)
        self.tm.set_egress_callback(self._after_tm)
        self.recirculations = 0
        self.empty_packets_injected = 0

    # ------------------------------------------------------------------
    # External interface
    # ------------------------------------------------------------------
    def receive(self, pkt: Packet, port: int) -> None:
        """Packet arrival: becomes an event carrier through the pipeline."""
        if not self._link_up[port]:
            return
        if self.stalled:
            self.stalled_rx_drops += 1
            return
        self.rx_packets += 1
        pkt.ingress_port = port
        self._enter_pipeline(pkt, EventType.INGRESS_PACKET)

    def inject_generated(self, pkt: Packet) -> None:
        """Generator/program-built packets enter as GENERATED_PACKET."""
        pkt.generated = True
        self._enter_pipeline(pkt, EventType.GENERATED_PACKET)

    def configure_generator(self, config: GeneratorConfig) -> None:
        """Install a packet-generator stream (control-plane operation)."""
        self.generator.configure(config)

    # ------------------------------------------------------------------
    # Pipeline entry and traversal
    # ------------------------------------------------------------------
    def _enter_pipeline(self, pkt: Packet, kind: Optional[EventType]) -> None:
        """Attach pending events and start the pipeline traversal.

        ``kind`` is the packet event this carrier represents, or None
        for an injected empty packet (which carries events only).
        """
        events = self.merger.take_for_carrier(piggyback=kind is not None)
        self.sim.call_after(
            self.pipeline.latency_ps, self._pipeline_exit, pkt, kind, events
        )

    #: Outer header of injected empty carriers; cloned per injection so
    #: the validating constructor runs once, not per empty packet.
    _CARRIER_ETH = Ethernet(src=0, dst=0, ethertype=int(EtherType.EVENT_METADATA))

    def _inject_empty_packet(self, events: List[Event]) -> None:
        carrier = Packet(
            headers=[self._CARRIER_ETH.copy()],
            payload_len=50,  # pad to a 64B minimum frame
            ts_created_ps=self.sim.now_ps,
        )
        carrier.meta["event_carrier"] = 1
        self.empty_packets_injected += 1
        self.sim.call_after(
            self.pipeline.latency_ps, self._pipeline_exit, carrier, None, events
        )

    def _pipeline_exit(
        self, pkt: Packet, kind: Optional[EventType], events: List[Event]
    ) -> None:
        self.pipeline.packets_processed += 1
        # Event handlers run first (their metadata words sit ahead of
        # the packet's own headers in the physical layout), then the
        # packet event's handler.  Dispatching through the bus records
        # each event's staleness — the merger wait plus the pipeline
        # traversal — for the observability layer.
        if events:
            dispatch = self.bus.dispatch
            for event in events:
                dispatch(event)
        if kind is None:
            # Empty carrier: handlers receive only the Event records and
            # have no way to set an egress spec, so the carrier always
            # dies silently after delivery — skip the metadata shell and
            # the steering walk entirely.
            return
        meta = self.meta_pool.acquire(
            ingress_port=pkt.ingress_port,
            packet_length=pkt.total_len,
            ingress_timestamp_ps=self.sim.now_ps,
        )
        if pkt.recirculated and kind is EventType.INGRESS_PACKET:
            kind = EventType.RECIRCULATED_PACKET
        self._dispatch_packet_event(kind, pkt, meta)
        self._steer(pkt, meta, carrier_only=False)
        if getrefcount(meta) == 2:
            # Only this frame still holds the shell (handlers kept no
            # reference), so it can be recycled.
            self.meta_pool.release(meta)

    def _pipeline_for_kind(self, kind: EventType):
        return self.pipeline

    def _pipeline_control(self, pkt: Packet, meta: StandardMetadata) -> None:
        # Dispatch happens in _pipeline_exit; the Pipeline object exists
        # for latency and resource accounting.
        return None

    # ------------------------------------------------------------------
    # Steering after the pipeline
    # ------------------------------------------------------------------
    def _steer(
        self, pkt: Packet, meta: StandardMetadata, carrier_only: bool
    ) -> None:
        if meta.egress_spec is None:
            if not carrier_only:
                self.dropped_by_program += 1
            return  # empty carriers die silently unless explicitly steered
        if meta.dropped:
            self.dropped_by_program += 1
            return
        if meta.to_cpu:
            self.notify_control_plane({"pkt_id": pkt.pkt_id, "reason": 0})
            return
        if meta.recirculate:
            count = pkt.meta.get("recirc_count", 0)
            if count >= self.MAX_RECIRCULATIONS:
                self.dropped_by_program += 1
                return
            self.recirculations += 1
            pkt.meta["recirc_count"] = count + 1
            pkt.recirculated = True
            self._enter_pipeline(pkt, EventType.INGRESS_PACKET)
            return
        pkt.egress_port = meta.egress_spec
        pkt.queue_id = meta.queue_id
        pkt.priority = meta.priority
        pkt.meta["enq_meta"] = meta.enq_meta
        pkt.meta["deq_meta"] = meta.deq_meta
        self.tm.enqueue(pkt)

    def _after_tm(self, pkt: Packet, port: int) -> None:
        """Serialized out of the output queues: transmit on the wire."""
        self._transmit(pkt, port)

    # ------------------------------------------------------------------
    # Event routing: everything goes through the Event Merger
    # ------------------------------------------------------------------
    def _route_event(self, event: Event) -> None:
        """Bus subscriber: admitted events wait in the merger for a carrier."""
        self.merger.offer(event)

    # ------------------------------------------------------------------
    # State introspection
    # ------------------------------------------------------------------
    def state_summary(self) -> List[Dict[str, object]]:
        """Store manifest plus the architecture's transient event state.

        The merger's pending queues and the generator's configured
        streams are switch state too — they travel inside checkpoints —
        so they get manifest rows alongside the StateStores.
        """
        rows = super().state_summary()
        rows.append(
            {
                "name": f"{self.name}.merger",
                "kind": "merger",
                "size": self.merger.queue_capacity,
                "default": 0,
                "populated": self.merger.pending_count,
                "pending_by_kind": self.merger.export_pending(),
            }
        )
        rows.append(
            {
                "name": f"{self.name}.generator",
                "kind": "generator",
                "size": len(self.generator.stream_ids),
                "default": 0,
                "populated": self.generator.generated_count,
                "streams": self.generator.stream_ids,
            }
        )
        return rows
