"""The baseline Portable Switch Architecture (paper Figure 1).

Two P4-programmable pipelines — ingress and egress — around a traffic
manager.  The programming model is synchronous packet-by-packet: the
only events a program may handle are ingress, egress, and recirculated
packet events.  The traffic manager's enqueue/dequeue/drop transitions
happen, of course, but the architecture gives the program *no way to
observe them* — this is the gap the paper's event-driven architectures
close.
"""

from __future__ import annotations

from sys import getrefcount
from typing import Dict, List

from repro.arch.base import SwitchBase
from repro.arch.description import BASELINE_PSA, ArchitectureDescription
from repro.arch.events import Event, EventType
from repro.packet.packet import Packet
from repro.pisa.metadata import StandardMetadata
from repro.pisa.pipeline import Pipeline
from repro.sim.kernel import Simulator


class BaselinePsaSwitch(SwitchBase):
    """Figure 1's PSA: ingress pipeline → traffic manager → egress pipeline."""

    #: Safety bound on recirculations per packet, as real targets impose.
    MAX_RECIRCULATIONS = 16

    def __init__(
        self,
        sim: Simulator,
        description: ArchitectureDescription = BASELINE_PSA,
        name: str = "psa",
        **kwargs,
    ) -> None:
        super().__init__(sim, description, name=name, **kwargs)
        self.ingress_pipeline = Pipeline(
            f"{name}.ingress",
            self._run_ingress,
            stage_count=description.pipeline_stages,
            clock_mhz=description.clock_mhz,
        )
        self.egress_pipeline = Pipeline(
            f"{name}.egress",
            self._run_egress,
            stage_count=description.pipeline_stages,
            clock_mhz=description.clock_mhz,
        )
        self.tm.set_egress_callback(self._after_tm)
        self.recirculations = 0

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def receive(self, pkt: Packet, port: int) -> None:
        """Packet arrival: parse, then enter the ingress pipeline."""
        if not self._link_up[port]:
            return  # arrivals on a dead link are lost at the MAC
        if self.stalled:
            self.stalled_rx_drops += 1
            return
        fastpath = self.flow_fastpath
        if (
            fastpath is not None
            and not pkt.recirculated
            and not pkt.generated
            and fastpath.handle(pkt, port)
        ):
            # The whole multi-hop delivery was fused into one event; all
            # per-hop bookkeeping (rx_packets included) lands at arrival.
            return
        self.rx_packets += 1
        pkt.ingress_port = port
        self.sim.call_after(
            self.ingress_pipeline.latency_ps, self._ingress_done, pkt, port
        )

    def inject_generated(self, pkt: Packet) -> None:
        """Baseline PSA has no data-plane generator; the description of a
        Tofino-like target may still expose GENERATED_PACKET via its
        control-plane-configured generator (paper §6)."""
        if not self.description.supports(EventType.GENERATED_PACKET):
            raise NotImplementedError(
                f"architecture {self.description.name!r} cannot generate packets"
            )
        pkt.generated = True
        self.sim.call_after(
            self.ingress_pipeline.latency_ps, self._ingress_done, pkt, pkt.ingress_port
        )

    def _ingress_done(self, pkt: Packet, port: int) -> None:
        meta = self.meta_pool.acquire(
            ingress_port=port,
            packet_length=pkt.total_len,
            ingress_timestamp_ps=self.sim.now_ps,
        )
        self.ingress_pipeline.process(pkt, meta)
        self._steer(pkt, meta)
        if getrefcount(meta) == 2:
            self.meta_pool.release(meta)

    def _pipeline_for_kind(self, kind: EventType):
        if kind is EventType.EGRESS_PACKET:
            return self.egress_pipeline
        return self.ingress_pipeline

    def _run_ingress(self, pkt: Packet, meta: StandardMetadata) -> None:
        if pkt.recirculated:
            kind = EventType.RECIRCULATED_PACKET
        elif pkt.generated:
            kind = EventType.GENERATED_PACKET
        else:
            kind = EventType.INGRESS_PACKET
        self._dispatch_packet_event(kind, pkt, meta)

    def _steer(self, pkt: Packet, meta: StandardMetadata) -> None:
        if meta.egress_spec is None or meta.dropped:
            self.dropped_by_program += 1
            return
        if meta.to_cpu:
            self.notify_control_plane({"pkt_id": pkt.pkt_id, "reason": 0})
            return
        if meta.recirculate:
            self._recirculate(pkt)
            return
        pkt.egress_port = meta.egress_spec
        pkt.queue_id = meta.queue_id
        pkt.priority = meta.priority
        pkt.meta["enq_meta"] = meta.enq_meta
        pkt.meta["deq_meta"] = meta.deq_meta
        self.tm.enqueue(pkt)

    def _recirculate(self, pkt: Packet) -> None:
        count = pkt.meta.get("recirc_count", 0)
        if count >= self.MAX_RECIRCULATIONS:
            self.dropped_by_program += 1
            return
        self.recirculations += 1
        pkt.meta["recirc_count"] = count + 1
        pkt.recirculated = True
        self.sim.call_after(
            self.ingress_pipeline.latency_ps, self._ingress_done, pkt, pkt.ingress_port
        )

    def _after_tm(self, pkt: Packet, port: int) -> None:
        """Dequeued and serialized: run the egress pipeline, then transmit."""
        meta = self.meta_pool.acquire(
            ingress_port=pkt.ingress_port,
            egress_port=port,
            packet_length=pkt.total_len,
            egress_timestamp_ps=self.sim.now_ps,
            deq_qdepth_bytes=self.tm.port_depth_bytes(port),
        )
        meta.egress_spec = port
        self.egress_pipeline.process(pkt, meta)
        try:
            if meta.dropped:
                self.dropped_by_program += 1
                return
            if meta.recirculate:
                self._recirculate(pkt)
                return
            self.sim.call_after(
                self.egress_pipeline.latency_ps, self._transmit, pkt, port
            )
        finally:
            if getrefcount(meta) == 2:
                self.meta_pool.release(meta)

    def _run_egress(self, pkt: Packet, meta: StandardMetadata) -> None:
        self._dispatch_packet_event(EventType.EGRESS_PACKET, pkt, meta)

    # ------------------------------------------------------------------
    # State introspection
    # ------------------------------------------------------------------
    def state_summary(self) -> List[Dict[str, object]]:
        """Store manifest plus per-pipeline throughput rows."""
        rows = super().state_summary()
        for pipeline in (self.ingress_pipeline, self.egress_pipeline):
            rows.append(
                {
                    "name": pipeline.name,
                    "kind": "pipeline",
                    "size": pipeline.stage_count,
                    "default": 0,
                    "populated": pipeline.packets_processed,
                }
            )
        return rows

    # ------------------------------------------------------------------
    # Event routing: baseline PSA has no non-packet event path
    # ------------------------------------------------------------------
    def _route_event(self, event: Event) -> None:
        """Bus subscriber that must never run: the description admits only
        packet events, and those are published unrouted from the
        pipeline dispatch path, so the bus suppresses everything that
        would land here."""
        raise AssertionError(
            f"baseline PSA should never route non-packet event {event.kind}"
        )
