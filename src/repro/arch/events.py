"""Data-plane events (paper Table 1).

A *data-plane event* is an architectural state change that triggers
processing in the programming model.  Table 1 of the paper lists the
thirteen events an event-driven architecture should support; this module
defines them as :class:`EventType` plus the :class:`Event` record the
architectures deliver to program handlers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Optional

from repro.packet.packet import Packet


class EventType(Enum):
    """The data-plane events of paper Table 1."""

    INGRESS_PACKET = "ingress_packet"
    EGRESS_PACKET = "egress_packet"
    RECIRCULATED_PACKET = "recirculated_packet"
    GENERATED_PACKET = "generated_packet"
    PACKET_TRANSMITTED = "packet_transmitted"
    ENQUEUE = "buffer_enqueue"
    DEQUEUE = "buffer_dequeue"
    BUFFER_OVERFLOW = "buffer_overflow"
    BUFFER_UNDERFLOW = "buffer_underflow"
    TIMER = "timer_expiration"
    CONTROL_PLANE = "control_plane_triggered"
    LINK_STATUS = "link_status_change"
    USER = "user_event"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    # Members are singletons and Enum equality is identity, so the
    # identity-based C-level hash is consistent — and much cheaper than
    # Enum's Python-level name hash on the counter dicts every dispatch
    # touches (hundreds of thousands of lookups per benchmark round).
    __hash__ = object.__hash__


#: Events carried by a packet traversing the device.  Baseline PISA
#: architectures expose (a subset of) these and nothing else.
PACKET_EVENTS: FrozenSet[EventType] = frozenset(
    {
        EventType.INGRESS_PACKET,
        EventType.EGRESS_PACKET,
        EventType.RECIRCULATED_PACKET,
        EventType.GENERATED_PACKET,
        EventType.PACKET_TRANSMITTED,
    }
)

#: Events that fire independently of (or orthogonally to) any single
#: packet's traversal — the ones baseline architectures cannot express.
NON_PACKET_EVENTS: FrozenSet[EventType] = frozenset(EventType) - PACKET_EVENTS

#: Packet events whose handler runs *as the packet traverses a
#: pipeline*, with mutable standard metadata.  PACKET_TRANSMITTED is a
#: packet event but fires after the packet has left, so its handler
#: receives an :class:`Event` like the non-packet kinds.
PIPELINE_PACKET_EVENTS: FrozenSet[EventType] = frozenset(
    {
        EventType.INGRESS_PACKET,
        EventType.EGRESS_PACKET,
        EventType.RECIRCULATED_PACKET,
        EventType.GENERATED_PACKET,
    }
)

_event_ids = itertools.count()


@dataclass(slots=True)
class Event:
    """One fired data-plane event, as delivered to a program handler.

    ``pkt`` is present for packet-derived events (enqueue/dequeue carry
    a reference to the packet whose transition fired them); timer, link
    status, control-plane and user events carry None.  ``meta`` holds
    the event's metadata: for enqueue/dequeue this is the user metadata
    the ingress control initialized (the paper's ``enq_meta`` /
    ``deq_meta``), merged with the architecture-provided fields such as
    queue depth; for link events it holds ``port`` and ``up``; for timer
    events ``timer_id``.
    """

    kind: EventType
    time_ps: int
    pkt: Optional[Packet] = None
    meta: Dict[str, int] = field(default_factory=dict)
    event_id: int = field(default_factory=lambda: next(_event_ids))

    def require_pkt(self) -> Packet:
        """The event's packet; raises if this event kind carries none."""
        if self.pkt is None:
            raise ValueError(f"{self.kind} event #{self.event_id} carries no packet")
        return self.pkt

    def age_ps(self, now_ps: int) -> int:
        """Staleness of this event at ``now_ps`` (time since it fired)."""
        return now_ps - self.time_ps

    def to_record(self) -> Dict[str, object]:
        """A JSON-serializable view (the obs trace sink's record body)."""
        return {
            "kind": self.kind.value,
            "t_ps": self.time_ps,
            "pkt": self.pkt.pkt_id if self.pkt is not None else None,
            "meta": dict(self.meta),
        }

    def __repr__(self) -> str:
        pkt = f", pkt=#{self.pkt.pkt_id}" if self.pkt is not None else ""
        return f"Event({self.kind.value}, t={self.time_ps}ps{pkt}, meta={self.meta})"
