"""The central event bus: one instrumented path for every data-plane event.

Every event source in the reproduction — traffic-manager transitions
(enqueue / dequeue / overflow / underflow / transmit), the timer unit,
link-status changes, control-plane triggers, user events, generated
packets, and the pipeline packet events themselves — *publishes* typed
:class:`~repro.arch.events.Event` objects to an :class:`EventBus`.  The
switch architectures are *subscribers*: the bus routes admitted events
to the architecture's routing hook (synchronous logical pipelines, the
SUME Event Merger, Tofino-style emulation, …), and the architecture
reports back through :meth:`EventBus.dispatch` / :meth:`EventBus.delivered`
when a program handler actually runs.

That single choke point is what makes the event path *observable*:

* the bus keeps the canonical per-kind ``fired`` / ``suppressed`` /
  ``handled`` counters (the switch attributes of the same names alias
  these dictionaries),
* any number of :class:`BusObserver` instances can watch publishes,
  dispatches, and merger drops — see :mod:`repro.obs` for counters,
  dispatch-latency histograms, and the JSONL trace sink,
* observers registered globally (``EventBus.register_global_observer``)
  attach to every bus created afterwards, so whole experiments can be
  instrumented without threading an object through their factories.

Admission is the architecture-description gate of paper §2: a published
event the target does not expose is *suppressed* — the state transition
happened, observers see it, but no subscriber (and hence no program
handler) ever does.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.arch.events import Event, EventType
from repro.sim.kernel import Simulator

#: Decides whether a published event is visible to the programming model.
AdmissionFn = Callable[[Event], bool]

#: Receives admitted events for architecture-specific routing.
Subscriber = Callable[[Event], None]

#: Runs the program handler for an event; True when a handler ran.
DispatcherFn = Callable[[Event], bool]


class BusObserver:
    """Base class for pluggable bus observers; every hook is a no-op.

    Subclasses override any of the three hooks.  Observers must not
    mutate the events they see — many observers can watch one bus.
    """

    def on_publish(self, bus: "EventBus", event: Event, admitted: bool) -> None:
        """An event was published (``admitted=False`` means suppressed)."""

    def on_dispatch(
        self, bus: "EventBus", event: Event, latency_ps: int, handled: bool
    ) -> None:
        """An admitted event reached its dispatch point.

        ``latency_ps`` is ``sim.now_ps - event.time_ps`` — the event's
        staleness at handler-run time (zero for synchronous dispatch,
        the merger/emulation wait otherwise).  ``handled`` is False when
        the loaded program has no handler for the kind.
        """

    def on_drop(self, bus: "EventBus", event: Event) -> None:
        """An admitted event was lost before dispatch (merger overflow …)."""


class EventBus:
    """Publish/subscribe hub for one switch's data-plane events.

    The owning switch installs an *admission* predicate (its
    architecture description), a *subscriber* (its routing hook), and a
    *dispatcher* (its handler runner).  Event sources only ever call
    :meth:`publish`; the dispatch side calls :meth:`dispatch` (bus runs
    the handler) or :meth:`delivered` (handler already ran inline, as in
    the pipeline packet path).
    """

    #: Observers attached to every subsequently created bus.
    _global_observers: List[BusObserver] = []

    def __init__(self, sim: Simulator, name: str = "bus") -> None:
        self.sim = sim
        self.name = name
        self.fired: Dict[EventType, int] = {kind: 0 for kind in EventType}
        self.suppressed: Dict[EventType, int] = {kind: 0 for kind in EventType}
        self.handled: Dict[EventType, int] = {kind: 0 for kind in EventType}
        self.dropped: Dict[EventType, int] = {kind: 0 for kind in EventType}
        self._admission: Optional[AdmissionFn] = None
        self._subscribers: Dict[EventType, List[Subscriber]] = {}
        self._wildcard: List[Subscriber] = []
        self._dispatcher: Optional[DispatcherFn] = None
        self._observers: List[BusObserver] = list(EventBus._global_observers)
        #: Bumped on every observer attach/detach; the flow fastpath
        #: folds it into its path generation vectors so observer churn
        #: invalidates fused entries (observers need per-hop visibility).
        self.observer_epoch = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_admission(self, fn: Optional[AdmissionFn]) -> None:
        """Install the visibility gate (None admits everything)."""
        self._admission = fn

    def set_dispatcher(self, fn: Optional[DispatcherFn]) -> None:
        """Install the handler runner :meth:`dispatch` delegates to."""
        self._dispatcher = fn

    def subscribe(
        self, fn: Subscriber, kinds: Optional[List[EventType]] = None
    ) -> None:
        """Route admitted events to ``fn`` (all kinds when ``kinds`` is None)."""
        if kinds is None:
            self._wildcard.append(fn)
            return
        for kind in kinds:
            self._subscribers.setdefault(kind, []).append(fn)

    def add_observer(self, observer: BusObserver) -> None:
        """Attach an observer to this bus only."""
        self._observers.append(observer)
        self.observer_epoch += 1

    def remove_observer(self, observer: BusObserver) -> None:
        """Detach a per-bus observer."""
        self._observers.remove(observer)
        self.observer_epoch += 1

    @classmethod
    def register_global_observer(cls, observer: BusObserver) -> None:
        """Attach ``observer`` to every bus created from now on."""
        cls._global_observers.append(observer)

    @classmethod
    def unregister_global_observer(cls, observer: BusObserver) -> None:
        """Stop attaching ``observer`` to new buses."""
        cls._global_observers.remove(observer)

    # ------------------------------------------------------------------
    # Publish side
    # ------------------------------------------------------------------
    def publish(self, event: Event, route: bool = True, gated: bool = True) -> bool:
        """Publish one event; returns True when it was admitted.

        ``route=False`` records and observes the event without invoking
        subscribers — the pipeline packet path uses this because its
        delivery *is* the pipeline traversal.  ``gated=False`` bypasses
        the admission predicate (pipeline packet events are gated
        upstream, at program-load validation).
        """
        admitted = (
            not gated or self._admission is None or self._admission(event)
        )
        if self._observers:
            for observer in self._observers:
                observer.on_publish(self, event, admitted)
        if not admitted:
            self.suppressed[event.kind] += 1
            return False
        self.fired[event.kind] += 1
        if route:
            for fn in self._subscribers.get(event.kind, ()):
                fn(event)
            for fn in self._wildcard:
                fn(event)
        return True

    # ------------------------------------------------------------------
    # Dispatch side
    # ------------------------------------------------------------------
    def dispatch(self, event: Event) -> bool:
        """Run the program handler for ``event`` via the dispatcher.

        Called by architectures at the moment an event reaches its
        handler (immediately for synchronous targets, after the merger
        or recirculation wait otherwise).  Returns True when a handler
        ran.
        """
        handled = self._dispatcher(event) if self._dispatcher is not None else False
        self.delivered(event, handled)
        return handled

    def delivered(self, event: Event, handled: bool) -> None:
        """Account a dispatch whose handler (if any) already ran inline."""
        if handled:
            self.handled[event.kind] += 1
        if self._observers:
            latency_ps = self.sim.now_ps - event.time_ps
            for observer in self._observers:
                observer.on_dispatch(self, event, latency_ps, handled)

    def drop(self, event: Event) -> None:
        """Record an admitted event lost before dispatch (merger overflow)."""
        self.dropped[event.kind] += 1
        for observer in self._observers:
            observer.on_drop(self, event)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def published_total(self) -> int:
        """Events published so far, admitted or not."""
        return sum(self.fired.values()) + sum(self.suppressed.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventBus({self.name!r}, fired={sum(self.fired.values())}, "
            f"suppressed={sum(self.suppressed.values())}, "
            f"handled={sum(self.handled.values())})"
        )
