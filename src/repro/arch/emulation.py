"""Emulating events on a modern fixed-function PISA device (paper §6).

"Tofino contains a configurable packet generator which the control
plane can configure to generate periodic packets and hence emulate
timer events.  Tofino also supports packet recirculation, which can
emulate dequeue events that trigger the ingress pipeline.  However,
supporting all of the events listed in Table 1 requires changes to
existing hardware."

:class:`EmulatedEventSwitch` implements exactly that story on the
baseline PSA datapath:

* **Timer emulation** — an armed timer becomes a packet-generator
  stream; each firing injects a marker packet that occupies an ingress
  pipeline slot and, a pipeline traversal later, runs the TIMER handler.
* **Dequeue emulation** — each TM dequeue spawns a 64-byte marker that
  must cross the *recirculation port*, a fixed-rate internal port, and
  then traverse the ingress pipeline before the DEQUEUE handler runs.
  Recirculation bandwidth is finite: markers queue behind each other,
  and when the queue overflows the event is lost.

Both costs are counted, so the emulation-ablation bench can report the
bandwidth stolen from forwarding and the added handler latency, and
where the emulation starts dropping events that the native SUME Event
Switch delivers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.arch.baseline import BaselinePsaSwitch
from repro.arch.description import TOFINO_LIKE, ArchitectureDescription
from repro.arch.events import Event, EventType
from repro.sim.kernel import Simulator
from repro.sim.units import bytes_to_time_ps

#: Wire size of an emulation marker packet (minimum frame + overhead).
MARKER_WIRE_BYTES = 84


class EmulatedEventSwitch(BaselinePsaSwitch):
    """A Tofino-like device emulating timer and dequeue events."""

    def __init__(
        self,
        sim: Simulator,
        description: ArchitectureDescription = TOFINO_LIKE,
        name: str = "tofino",
        recirc_rate_gbps: float = 100.0,
        recirc_queue_capacity: int = 128,
        **kwargs,
    ) -> None:
        super().__init__(sim, description, name=name, **kwargs)
        if recirc_rate_gbps <= 0:
            raise ValueError(f"recirc rate must be positive, got {recirc_rate_gbps}")
        self.recirc_rate_gbps = recirc_rate_gbps
        self.recirc_queue_capacity = recirc_queue_capacity
        self._recirc_queue: Deque[Event] = deque()
        self._recirc_busy = False
        # Emulation accounting (read by the ablation bench).
        self.emu_timer_markers = 0
        self.emu_dequeue_markers = 0
        self.emu_events_lost = 0
        self.emu_pipeline_slots_used = 0
        self.emu_recirc_bytes = 0

    # ------------------------------------------------------------------
    # Event routing: only emulated kinds ever reach here
    # ------------------------------------------------------------------
    def _route_event(self, event: Event) -> None:
        if event.kind == EventType.TIMER:
            self._emulate_timer(event)
        elif event.kind == EventType.DEQUEUE:
            self._emulate_dequeue(event)
        else:  # pragma: no cover - fire_event suppresses everything else
            raise AssertionError(
                f"{self.description.name} cannot deliver {event.kind}"
            )

    # ------------------------------------------------------------------
    # Timer emulation: packet-generator marker through the pipeline
    # ------------------------------------------------------------------
    def _emulate_timer(self, event: Event) -> None:
        self.emu_timer_markers += 1
        self.emu_pipeline_slots_used += 1
        self.sim.call_after(
            self.ingress_pipeline.latency_ps, self.bus.dispatch, event
        )

    # ------------------------------------------------------------------
    # Dequeue emulation: recirculation port, then the pipeline
    # ------------------------------------------------------------------
    def _emulate_dequeue(self, event: Event) -> None:
        if len(self._recirc_queue) >= self.recirc_queue_capacity:
            self.emu_events_lost += 1
            self.bus.drop(event)
            return
        self._recirc_queue.append(event)
        self._serve_recirc()

    def _serve_recirc(self) -> None:
        if self._recirc_busy or not self._recirc_queue:
            return
        self._recirc_busy = True
        event = self._recirc_queue.popleft()
        tx_ps = bytes_to_time_ps(MARKER_WIRE_BYTES, self.recirc_rate_gbps)
        self.emu_recirc_bytes += MARKER_WIRE_BYTES
        self.emu_dequeue_markers += 1
        self.emu_pipeline_slots_used += 1
        self.sim.call_after(tx_ps, self._recirc_done, event)

    def _recirc_done(self, event: Event) -> None:
        self._recirc_busy = False
        # The marker now traverses the ingress pipeline like any packet;
        # the bus dispatch at the far end records the full emulation
        # latency (recirc wait + pipeline) as the event's staleness.
        self.sim.call_after(
            self.ingress_pipeline.latency_ps, self.bus.dispatch, event
        )
        self._serve_recirc()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def emulation_overhead_report(self, duration_ps: int) -> dict:
        """Bandwidth and slot overheads of emulation over ``duration_ps``."""
        if duration_ps <= 0:
            raise ValueError(f"duration must be positive, got {duration_ps}")
        recirc_bps = self.emu_recirc_bytes * 8 * 1e12 / duration_ps
        slot_rate = self.emu_pipeline_slots_used * 1e12 / duration_ps
        pipeline_slot_capacity = self.description.clock_mhz * 1e6
        return {
            "timer_markers": self.emu_timer_markers,
            "dequeue_markers": self.emu_dequeue_markers,
            "events_lost": self.emu_events_lost,
            "recirc_gbps": recirc_bps / 1e9,
            "recirc_utilization": recirc_bps / (self.recirc_rate_gbps * 1e9),
            "pipeline_slot_fraction": slot_rate / pipeline_slot_capacity,
        }
