"""Architecture descriptions.

"A particular target device exposes the precise set of events that it
supports via the P4 architecture description file" (paper §2).  An
:class:`ArchitectureDescription` is that file's semantic content: the
set of natively supported events, the set of events available only
through emulation (paper §6), and hardware parameters the resource
model reads.  Loading a program onto an architecture validates the
program's handlers against this description.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List

from repro.arch.events import EventType


class UnsupportedEventError(TypeError):
    """A program handles an event its target architecture cannot fire."""


@dataclass(frozen=True)
class ArchitectureDescription:
    """The event capabilities and parameters of one target architecture."""

    name: str
    native_events: FrozenSet[EventType]
    emulated_events: FrozenSet[EventType] = frozenset()
    pipeline_stages: int = 8
    clock_mhz: float = 200.0
    port_count: int = 4
    port_rate_gbps: float = 10.0
    supports_shared_state: bool = False

    @property
    def all_events(self) -> FrozenSet[EventType]:
        """Natively supported plus emulated events."""
        return self.native_events | self.emulated_events

    def supports(self, kind: EventType) -> bool:
        """True when programs may handle ``kind`` on this target."""
        return kind in self.all_events

    def validate_events(self, handled: Iterable[EventType]) -> None:
        """Raise :class:`UnsupportedEventError` for unsupported handlers."""
        unsupported = sorted(
            (kind for kind in handled if not self.supports(kind)),
            key=lambda k: k.value,
        )
        if unsupported:
            names = ", ".join(k.value for k in unsupported)
            raise UnsupportedEventError(
                f"architecture {self.name!r} does not support events: {names}"
            )

    def support_row(self) -> Dict[str, str]:
        """One row of the Table 1 support matrix (for the bench report)."""
        row: Dict[str, str] = {"architecture": self.name}
        for kind in EventType:
            if kind in self.native_events:
                row[kind.value] = "native"
            elif kind in self.emulated_events:
                row[kind.value] = "emulated"
            else:
                row[kind.value] = "—"
        return row


#: Figure 1's baseline PSA: ingress + egress packet events only.
BASELINE_PSA = ArchitectureDescription(
    name="baseline-psa",
    native_events=frozenset(
        {EventType.INGRESS_PACKET, EventType.EGRESS_PACKET,
         EventType.RECIRCULATED_PACKET}
    ),
)

#: Figure 2's logical event-driven architecture (the §2 running example
#: supports ingress packet, enqueue and dequeue; we expose the full
#: logical set since each event simply gets its own logical pipeline).
LOGICAL_EVENT_DRIVEN = ArchitectureDescription(
    name="logical-event-driven",
    native_events=frozenset(EventType),
    supports_shared_state=True,
)

#: Figure 4's SUME Event Switch: "regular P4 packet events, plus
#: enqueue, dequeue, and drop events, timer events, link status change
#: events, and a configurable packet generator" (paper §5).  The
#: P4→NetFPGA pipeline is a single physical pipeline before the output
#: queues, so there is no egress packet event.
SUME_EVENT_SWITCH = ArchitectureDescription(
    name="sume-event-switch",
    native_events=frozenset(
        {
            EventType.INGRESS_PACKET,
            EventType.RECIRCULATED_PACKET,
            EventType.GENERATED_PACKET,
            EventType.PACKET_TRANSMITTED,
            EventType.ENQUEUE,
            EventType.DEQUEUE,
            EventType.BUFFER_OVERFLOW,
            EventType.TIMER,
            EventType.LINK_STATUS,
        }
    ),
    pipeline_stages=8,
    clock_mhz=200.0,
    port_count=4,
    port_rate_gbps=10.0,
    supports_shared_state=True,
)

#: Our extension of the SUME Event Switch with the full Table 1 set
#: (adds egress events via an egress pipeline tap, buffer underflow,
#: control-plane triggered and user events).  Used by applications that
#: exercise the complete event catalog on the single-pipeline design.
FULL_EVENT_SWITCH = ArchitectureDescription(
    name="full-event-switch",
    native_events=frozenset(EventType) - frozenset({EventType.EGRESS_PACKET}),
    pipeline_stages=8,
    clock_mhz=200.0,
    port_count=4,
    port_rate_gbps=10.0,
    supports_shared_state=True,
)

#: Section 6's Tofino-like modern PISA device: packet events natively;
#: timer events emulated by the control-plane-configured packet
#: generator, dequeue events emulated by recirculation.
TOFINO_LIKE = ArchitectureDescription(
    name="tofino-like",
    native_events=frozenset(
        {
            EventType.INGRESS_PACKET,
            EventType.EGRESS_PACKET,
            EventType.RECIRCULATED_PACKET,
            EventType.GENERATED_PACKET,
        }
    ),
    emulated_events=frozenset({EventType.TIMER, EventType.DEQUEUE}),
    pipeline_stages=12,
    clock_mhz=1000.0,
    port_count=8,
    port_rate_gbps=100.0,
    # Emulation serializes every handler through the single ingress
    # thread (recirculated/generated packets), so "shared" state is
    # safe: there is only ever one writer thread in reality.
    supports_shared_state=True,
)

#: All the stock descriptions, for the Table 1 bench.
STOCK_DESCRIPTIONS: List[ArchitectureDescription] = [
    BASELINE_PSA,
    LOGICAL_EVENT_DRIVEN,
    SUME_EVENT_SWITCH,
    TOFINO_LIKE,
]
