"""The Event Merger (paper Figure 4).

"The Event Merger is responsible for gathering all new events and
placing them into metadata that flows through the pipeline.  If there
are no ingress packets for the metadata to piggyback onto, the Event
Merger generates an empty packet, attaches the event metadata and
injects it into the P4 pipeline."

The model here mirrors the hardware contract:

* every fired event is *offered* to the merger and waits in a per-kind
  FIFO (the hardware has one metadata slot per event kind, so a carrier
  takes at most ``slots_per_kind`` events of each kind),
* every packet entering the pipeline (ingress, recirculated, or
  generated) calls :meth:`take_for_carrier` and carries away what fits,
* events still pending ``wait_cycles`` clock cycles after being offered
  cause an *empty packet injection*, modeling the merger using an idle
  cycle.

Statistics distinguish piggybacked from injected deliveries — the
quantity the Figure 4 bench reports — and count events lost to a full
merger queue when injection is disabled (the ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.arch.events import Event, EventType
from repro.sim.kernel import Simulator


@dataclass
class MergerStats:
    """Delivery accounting for the Event Merger."""

    offered: int = 0
    piggybacked: int = 0
    injected_events: int = 0
    injected_packets: int = 0
    dropped: int = 0
    #: Sum of (delivery time - fire time) over delivered events.
    total_wait_ps: int = 0
    delivered: int = 0

    @property
    def mean_wait_ps(self) -> float:
        """Mean event delivery latency in picoseconds."""
        return self.total_wait_ps / self.delivered if self.delivered else 0.0


InjectFn = Callable[[List[Event]], None]
DropFn = Callable[[Event], None]

#: Enum declaration order, for sorting the live-kind set at take time.
_KIND_ORDER = {kind: index for index, kind in enumerate(EventType)}


class EventMerger:
    """Gathers events and attaches them to pipeline carriers."""

    def __init__(
        self,
        sim: Simulator,
        clock_ps: int,
        slots_per_kind: int = 1,
        queue_capacity: int = 64,
        wait_cycles: int = 1,
        injection_enabled: bool = True,
    ) -> None:
        if clock_ps <= 0:
            raise ValueError(f"clock period must be positive, got {clock_ps}")
        if slots_per_kind <= 0:
            raise ValueError(f"slots per kind must be positive, got {slots_per_kind}")
        if queue_capacity <= 0:
            raise ValueError(f"queue capacity must be positive, got {queue_capacity}")
        if wait_cycles < 0:
            raise ValueError(f"wait cycles must be non-negative, got {wait_cycles}")
        self.sim = sim
        self.clock_ps = clock_ps
        self.slots_per_kind = slots_per_kind
        self.queue_capacity = queue_capacity
        self.wait_cycles = wait_cycles
        self.injection_enabled = injection_enabled
        self.stats = MergerStats()
        self._pending: Dict[EventType, List[Event]] = {kind: [] for kind in EventType}
        # Kinds with a non-empty queue: take_for_carrier walks only
        # these (sorted back into declaration order) instead of all 13
        # kinds — the carrier path runs once per pipeline entry.
        self._live: set = set()
        self._pending_total = 0
        self._inject_fn: Optional[InjectFn] = None
        self._drop_fn: Optional[DropFn] = None
        self._check_scheduled = False

    def set_inject_fn(self, fn: InjectFn) -> None:
        """Register the architecture's empty-packet injection path."""
        self._inject_fn = fn

    def set_drop_fn(self, fn: DropFn) -> None:
        """Register where overflow-dropped events are reported (the bus)."""
        self._drop_fn = fn

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------
    def offer(self, event: Event) -> None:
        """Queue a fired event for delivery."""
        self.stats.offered += 1
        queue = self._pending[event.kind]
        if len(queue) >= self.queue_capacity:
            # The merger's per-kind queue is full; hardware would drop
            # the oldest metadata word.  Count it, tell the bus, move on.
            lost = queue.pop(0)
            self._pending_total -= 1
            self.stats.dropped += 1
            if self._drop_fn is not None:
                self._drop_fn(lost)
        if not queue:
            self._live.add(event.kind)
        queue.append(event)
        self._pending_total += 1
        if self.injection_enabled and not self._check_scheduled:
            self._check_scheduled = True
            delay = max(1, self.wait_cycles * self.clock_ps)
            self.sim.call_after(delay, self._injection_check)

    @property
    def pending_count(self) -> int:
        """Events waiting for a carrier (maintained O(1))."""
        return self._pending_total

    # ------------------------------------------------------------------
    # Carrier interface
    # ------------------------------------------------------------------
    def take_for_carrier(self, piggyback: bool = True) -> List[Event]:
        """Pop up to ``slots_per_kind`` events of each kind for a carrier.

        Called by the architecture as a packet enters the P4 pipeline.
        Events are returned oldest-first within each kind, kinds in
        enum declaration order (a fixed metadata layout, as in
        hardware).
        """
        if self._pending_total == 0:
            # Nothing waiting — the common case for packet-heavy runs;
            # skip the walk over every event kind.
            return []
        taken: List[Event] = []
        live = self._live
        slots = self.slots_per_kind
        for kind in sorted(live, key=_KIND_ORDER.__getitem__):
            queue = self._pending[kind]
            take_n = min(slots, len(queue))
            taken += queue[:take_n]
            del queue[:take_n]
            if not queue:
                live.discard(kind)
        count = len(taken)
        self._pending_total -= count
        now = self.sim.now_ps
        stats = self.stats
        stats.delivered += count
        wait_ps = 0
        for event in taken:
            wait_ps += now - event.time_ps
        stats.total_wait_ps += wait_ps
        if piggyback:
            stats.piggybacked += count
        else:
            stats.injected_events += count
        return taken

    # ------------------------------------------------------------------
    # Empty-packet injection
    # ------------------------------------------------------------------
    def _injection_check(self) -> None:
        self._check_scheduled = False
        if not self.injection_enabled or self._inject_fn is None:
            return
        if self.pending_count == 0:
            return
        events = self.take_for_carrier(piggyback=False)
        if events:
            self.stats.injected_packets += 1
            self._inject_fn(events)
        if self.pending_count > 0:
            # More events than one carrier's slots: keep injecting on
            # subsequent idle cycles.
            self._check_scheduled = True
            self.sim.call_after(max(1, self.clock_ps), self._injection_check)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def export_pending(self) -> Dict[str, int]:
        """Per-kind pending counts (non-empty kinds only).

        Feeds :meth:`SumeEventSwitch.state_summary` and checkpoint
        inspection: events waiting in the merger ride along in a
        checkpoint payload and resume exactly where they queued.
        """
        return {
            kind.value: len(queue)
            for kind, queue in self._pending.items()
            if queue
        }

    def __repr__(self) -> str:
        return (
            f"EventMerger(pending={self.pending_count}, "
            f"piggybacked={self.stats.piggybacked}, "
            f"injected={self.stats.injected_events})"
        )
