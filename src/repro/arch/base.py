"""Common machinery shared by all switch architectures.

:class:`SwitchBase` owns the pieces every architecture has — a parser,
a traffic manager, a loaded program, the context object handed to
handlers, link state, and event accounting — and defines the external
interface the network substrate drives:

* :meth:`receive` — a packet arrives on an input port,
* :meth:`set_tx_callback` — transmitted packets leave the device,
* :meth:`set_link_status` — the physical layer reports a link change,
* :meth:`control_event` — the control plane triggers an event.

Every event, from every source, flows through the switch's
:class:`~repro.arch.bus.EventBus`: sources publish, the architecture's
routing hook is the bus's subscriber, and program handlers run via the
bus's dispatcher — so counters, latency histograms, and trace sinks
(:mod:`repro.obs`) observe the complete event path in one place.

Subclasses decide *how admitted events reach program handlers*:
synchronously in dedicated logical pipelines
(:class:`~repro.arch.event_driven.LogicalEventSwitch`), through the
Event Merger of a single physical pipeline
(:class:`~repro.arch.sume.SumeEventSwitch`), or not at all
(:class:`~repro.arch.baseline.BaselinePsaSwitch`).
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List, Optional

from repro.arch.bus import EventBus
from repro.arch.description import ArchitectureDescription, UnsupportedEventError
from repro.arch.events import Event, EventType
from repro.arch.program import P4Program, ProgramContext
from repro.packet.packet import Packet
from repro.packet.parser import Parser, standard_parser
from repro.pisa.compile import compile_switch
from repro.pisa.compile import env_enabled as compile_env_enabled
from repro.pisa.fastpath import FlowFastpath
from repro.pisa.fastpath import env_enabled as fastpath_env_enabled
from repro.pisa.flowcache import UNCACHEABLE, FlowCache, env_enabled
from repro.pisa.metadata import MetadataPool, StandardMetadata
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicProcess
from repro.state.store import StateStore, make_store
from repro.tm.traffic_manager import TrafficManager

TxCallback = Callable[[Packet, int], None]


class _TmEventHook:
    """Picklable traffic-manager hook firing ``kind`` data-plane events.

    A named callable instead of a closure so whole-switch object graphs
    survive checkpoint pickling (closures don't pickle).
    """

    __slots__ = ("switch", "kind", "_unsupported")

    def __init__(self, switch: "SwitchBase", kind: EventType) -> None:
        self.switch = switch
        self.kind = kind
        # Descriptions are immutable, so support is decided once here
        # instead of per TM transition.
        self._unsupported = not switch.description.supports(kind)

    def __getstate__(self):
        return (self.switch, self.kind)

    def __setstate__(self, state) -> None:
        self.switch, self.kind = state
        # The switch is mid-unpickle here (the hook sits inside its
        # object graph), so support is re-resolved lazily on first use.
        self._unsupported = None

    def suppresses_cheaply(self) -> bool:
        """TM precheck: consume the event before it is even built.

        True when the architecture suppresses ``kind`` and nobody is
        observing — the only externally visible effect is the
        suppressed counter, recorded here, so the TM can skip the
        TmEvent construction and the user-meta copy entirely.
        """
        unsupported = self._unsupported
        if unsupported is None:
            unsupported = self._unsupported = not self.switch.description.supports(
                self.kind
            )
        if unsupported:
            bus = self.switch.bus
            if not bus._observers:
                bus.suppressed[self.kind] += 1
                return True
        return False

    def __call__(self, tm_event) -> None:
        switch = self.switch
        kind = self.kind
        bus = switch.bus
        unsupported = self._unsupported
        if unsupported is None:
            unsupported = self._unsupported = not switch.description.supports(kind)
        if unsupported and not bus._observers:
            # Suppressed with nobody watching: only the counter is
            # observable, so skip building the Event and its meta.
            bus.suppressed[kind] += 1
            return
        meta = dict(tm_event.user_meta)
        meta.setdefault("pkt_len", tm_event.pkt.total_len)
        meta["port"] = tm_event.port
        meta["queue_id"] = tm_event.queue_id
        meta["qdepth_bytes"] = tm_event.queue_depth_bytes
        meta["buffer_bytes"] = tm_event.buffer_occupancy_bytes
        switch.fire_event(
            Event(kind=kind, time_ps=tm_event.time_ps, pkt=tm_event.pkt, meta=meta)
        )


class SwitchContext(ProgramContext):
    """The :class:`ProgramContext` implementation for real switches."""

    def __init__(self, switch: "SwitchBase") -> None:
        self._switch = switch

    @property
    def now_ps(self) -> int:
        return self._switch.sim.now_ps

    def configure_timer(self, timer_id: int, period_ps: int) -> None:
        self._switch.configure_timer(timer_id, period_ps)

    def cancel_timer(self, timer_id: int) -> None:
        self._switch.cancel_timer(timer_id)

    def generate_packet(self, pkt: Packet) -> None:
        self._switch.inject_generated(pkt)

    def raise_user_event(self, meta: Dict[str, int], delay_ps: int = 0) -> None:
        self._switch.raise_user_event(meta, delay_ps)

    def notify_control_plane(self, message: Dict[str, int]) -> None:
        self._switch.notify_control_plane(message)

    def link_up(self, port: int) -> bool:
        return self._switch.link_up(port)

    def queue_depth_bytes(self, port: int, queue_id: int = 0) -> int:
        return self._switch.tm.queue_depth_bytes(port, queue_id)


class SwitchBase:
    """Base switch: ports, parser, traffic manager, program, accounting."""

    #: Dispatches interpreted before the pipeline specializer kicks in;
    #: roughly the packet count where the compiled walk's savings repay
    #: the exec() cost of generating it.
    COMPILE_WARMUP = 16

    def __init__(
        self,
        sim: Simulator,
        description: ArchitectureDescription,
        name: str = "switch",
        parser: Optional[Parser] = None,
        queues_per_port: int = 1,
        queue_capacity_bytes: int = 64 * 1024,
        buffer_capacity_bytes: Optional[int] = None,
        scheduler_factory=None,
        bus: Optional[EventBus] = None,
        flow_cache: Optional[bool] = None,
        compile: Optional[bool] = None,
        fastpath: Optional[bool] = None,
    ) -> None:
        self.sim = sim
        self.description = description
        self.name = name
        self.parser = parser or standard_parser()
        # The central event path: sources publish here, the architecture
        # subscribes its routing hook, and the program handler runs via
        # the bus's dispatcher.  Passing a shared bus merges accounting
        # across switches; the default is one bus per switch.
        self.bus = bus or EventBus(sim, name=f"{name}.bus")
        self.bus.set_admission(self._admits)
        self.bus.set_dispatcher(self._run_handler)
        self.bus.subscribe(self._route_event)
        self.tm = TrafficManager(
            sim,
            port_count=description.port_count,
            queues_per_port=queues_per_port,
            queue_capacity_bytes=queue_capacity_bytes,
            buffer_capacity_bytes=buffer_capacity_bytes,
            port_rate_gbps=description.port_rate_gbps,
            scheduler_factory=scheduler_factory,
            name=f"{name}.tm",
        )
        self.tm.hooks.on_enqueue = self._tm_hook(EventType.ENQUEUE)
        self.tm.hooks.on_dequeue = self._tm_hook(EventType.DEQUEUE)
        self.tm.hooks.on_overflow = self._tm_hook(EventType.BUFFER_OVERFLOW)
        self.tm.hooks.on_underflow = self._tm_hook(EventType.BUFFER_UNDERFLOW)
        self.tm.hooks.on_transmit = self._tm_hook(EventType.PACKET_TRANSMITTED)
        self.tm.fastpath_disrupt = self.fastpath_disrupt
        self.program: Optional[P4Program] = None
        self._shared_regs: tuple = ()
        self._event_handlers: Dict[EventType, Callable] = {}
        self.ctx = SwitchContext(self)
        self.meta_pool = MetadataPool()
        self._tx_callback: Optional[TxCallback] = None
        # Link state as 0/1 ints in a StateStore (per-port state is
        # switch state like any extern's and rides along in checkpoints).
        self._link_up = make_store(description.port_count, 1, name=f"{name}.links")
        self._timers: Dict[int, PeriodicProcess] = {}
        # Aliases of the bus's canonical counters (same dict objects):
        # every reader of switch.events_* observes the bus directly.
        self.events_fired: Dict[EventType, int] = self.bus.fired
        self.events_handled: Dict[EventType, int] = self.bus.handled
        self.events_suppressed: Dict[EventType, int] = self.bus.suppressed
        self.cpu_notifications: List[Dict[str, int]] = []
        self._cpu_callback: Optional[Callable[[Dict[str, int]], None]] = None
        self.rx_packets = 0
        self.dropped_by_program = 0
        # Fault-injection state (repro.faults): a stalled switch stops
        # ingress processing and timer delivery; already-queued packets
        # still drain (the TM keeps serializing).
        self.stalled = False
        self.stalled_rx_drops = 0
        self.stalled_timer_misses = 0
        # The flow-decision cache (repro.pisa.flowcache): memoizes the
        # per-packet pipeline walk behind generation vectors and purity
        # detection.  ``flow_cache=`` overrides the REPRO_FLOW_CACHE
        # environment default (on).
        if flow_cache is None:
            flow_cache = env_enabled()
        self.flow_cache: Optional[FlowCache] = (
            FlowCache(sim, name=name) if flow_cache else None
        )
        # Compiled pipeline specialization (repro.pisa.compile): the
        # packet-event dispatch is exec-generated against the loaded
        # program on the first dispatch after a load.  ``compile=``
        # overrides the REPRO_PIPELINE_COMPILE environment default (on).
        # ``_compiled`` is the per-kind dispatch table, None while a
        # (re)compile is pending, or False when compilation is off.
        if compile is None:
            compile = compile_env_enabled()
        self.pipeline_compile = bool(compile)
        self._compiled = None if self.pipeline_compile else False
        # The end-to-end flow fastpath (repro.pisa.fastpath): fuses a
        # fully cached multi-hop delivery into one kernel event.
        # ``fastpath=`` overrides the REPRO_FLOW_FASTPATH environment
        # default (on); only the baseline PSA datapath ever fuses, but
        # the registry lives here so interior hops carry their own
        # stats and fused-window watermark.
        if fastpath is None:
            fastpath = fastpath_env_enabled()
        self.flow_fastpath: Optional[FlowFastpath] = (
            FlowFastpath(sim, self, name=name) if fastpath else None
        )
        # Generating the specialized code costs a couple of exec()s per
        # switch (~0.5 ms), which only pays for itself on switches that
        # actually process packets: interpret the first COMPILE_WARMUP
        # dispatches, then compile.  Keeps fleet-scale topologies (a
        # sharded fat tree compiles dozens of switches) from paying
        # compile cost on nearly-idle nodes.
        self._compile_countdown = self.COMPILE_WARMUP

    # ------------------------------------------------------------------
    # Program lifecycle
    # ------------------------------------------------------------------
    def load_program(self, program: P4Program) -> None:
        """Validate and load ``program`` onto this architecture.

        Checks the program's handled events against the architecture
        description (paper §2) and rejects shared state on targets whose
        programming model is single-threaded (paper §7's observation
        about Domino/FlowBlaze-style models).
        """
        self.description.validate_events(program.handled_events())
        if program.shared_registers() and not self.description.supports_shared_state:
            names = ", ".join(reg.name for reg in program.shared_registers())
            raise UnsupportedEventError(
                f"architecture {self.description.name!r} has a single-threaded "
                f"programming model and cannot host shared_register(s): {names}"
            )
        self.program = program
        # shared_registers() rebuilds its list per call; _set_thread runs
        # twice per handled event, so snapshot the (load-time-fixed) set.
        # The handler map is likewise fixed at load: _run_handler reads
        # it directly instead of calling handler_for per event.
        self._shared_regs = tuple(program.shared_registers())
        self._event_handlers = program._handlers
        # A (re)load voids any compiled dispatch; warm-up restarts and
        # the dispatch regenerates against the new program.
        if self.pipeline_compile:
            self._compiled = None
            self._compile_countdown = self.COMPILE_WARMUP
        if self.flow_cache is not None:
            # (Re)binding a program starts the memo cold and rediscovers
            # the generation-vector dependencies (tables, versioned
            # route dicts) and the externs to shim during recording.
            self.flow_cache.attach(program)
        if self.flow_fastpath is not None:
            # Fused paths memoize this switch's cached decisions; a new
            # program voids them (interior hops are caught by the
            # attach-epoch in the path generation vector).
            self.flow_fastpath.clear()
        program.on_load(self.ctx)

    def require_program(self) -> P4Program:
        """The loaded program; raises if none is loaded."""
        if self.program is None:
            raise RuntimeError(f"switch {self.name!r} has no program loaded")
        return self.program

    # ------------------------------------------------------------------
    # External interface (driven by the network substrate)
    # ------------------------------------------------------------------
    def receive(self, pkt: Packet, port: int) -> None:
        """A packet arrives on input ``port``."""
        raise NotImplementedError

    def set_tx_callback(self, callback: TxCallback) -> None:
        """Register where transmitted packets go."""
        self._tx_callback = callback

    def set_link_status(self, port: int, up: bool) -> None:
        """The physical layer reports a link transition on ``port``."""
        if not 0 <= port < len(self._link_up):
            raise IndexError(f"port {port} out of range")
        if bool(self._link_up[port]) == up:
            return
        self.fastpath_disrupt()
        self._link_up[port] = int(up)
        self.tm.set_port_enabled(port, up)
        if self.description.supports(EventType.LINK_STATUS):
            self.fire_event(
                Event(
                    kind=EventType.LINK_STATUS,
                    time_ps=self.sim.now_ps,
                    meta={"port": port, "up": int(up)},
                )
            )

    def link_up(self, port: int) -> bool:
        """Current link status of ``port``."""
        return bool(self._link_up[port])

    # ------------------------------------------------------------------
    # Fault injection (repro.faults)
    # ------------------------------------------------------------------
    def stall(self) -> None:
        """Freeze the switch: ingress packets are dropped at the door and
        periodic timers stop delivering until :meth:`unstall`.

        Packets already accepted into the traffic manager keep draining —
        a stalled ASIC's serializers do not un-send what they queued.
        """
        self.fastpath_disrupt()
        self.stalled = True

    def unstall(self) -> None:
        """Resume ingress processing and timer delivery."""
        self.fastpath_disrupt()
        self.stalled = False

    def fastpath_disrupt(self) -> None:
        """Materialize in-flight fused deliveries crossing this switch.

        Every disruption entry point (link transition, stall/unstall,
        TM port pause, impairment attach, fault-injector checkpoint)
        calls this before mutating state, so a fused window never
        straddles a change it could not have seen; the packets finish
        their journeys on the ordinary per-hop code paths."""
        fastpath = self.flow_fastpath
        if fastpath is not None and fastpath._active:
            fastpath.disrupt()

    def control_event(self, meta: Dict[str, int]) -> None:
        """The control plane triggers a CONTROL_PLANE event."""
        if not self.description.supports(EventType.CONTROL_PLANE):
            raise UnsupportedEventError(
                f"architecture {self.description.name!r} has no "
                f"control-plane-triggered events"
            )
        self.fire_event(
            Event(kind=EventType.CONTROL_PLANE, time_ps=self.sim.now_ps, meta=dict(meta))
        )

    # ------------------------------------------------------------------
    # Services used by SwitchContext
    # ------------------------------------------------------------------
    def configure_timer(self, timer_id: int, period_ps: int) -> None:
        """Arm (or re-arm) periodic timer ``timer_id``."""
        if not self.description.supports(EventType.TIMER):
            raise UnsupportedEventError(
                f"architecture {self.description.name!r} has no timer events"
            )
        existing = self._timers.get(timer_id)
        if existing is not None:
            existing.stop()
        process = PeriodicProcess(
            self.sim,
            period_ps,
            partial(self._timer_fired, timer_id),
            name=f"{self.name}.timer{timer_id}",
        )
        self._timers[timer_id] = process
        process.start()

    def cancel_timer(self, timer_id: int) -> None:
        """Disarm periodic timer ``timer_id`` (no-op if not armed)."""
        process = self._timers.pop(timer_id, None)
        if process is not None:
            process.stop()

    def _timer_fired(self, timer_id: int) -> None:
        if self.stalled:
            self.stalled_timer_misses += 1
            return
        self.fire_event(
            Event(
                kind=EventType.TIMER,
                time_ps=self.sim.now_ps,
                meta={"timer_id": timer_id},
            )
        )

    def inject_generated(self, pkt: Packet) -> None:
        """Inject a program/generator-built packet into the ingress path."""
        raise NotImplementedError

    def raise_user_event(self, meta: Dict[str, int], delay_ps: int = 0) -> None:
        """Fire a USER event, optionally after ``delay_ps``."""
        if not self.description.supports(EventType.USER):
            raise UnsupportedEventError(
                f"architecture {self.description.name!r} has no user events"
            )
        if delay_ps:
            self.sim.call_after(delay_ps, self._fire_user_event, dict(meta))
        else:
            self._fire_user_event(meta)

    def _fire_user_event(self, meta: Dict[str, int]) -> None:
        self.fire_event(
            Event(kind=EventType.USER, time_ps=self.sim.now_ps, meta=dict(meta))
        )

    def notify_control_plane(self, message: Dict[str, int]) -> None:
        """Record (and deliver) a digest to the control plane."""
        self.cpu_notifications.append(dict(message))
        if self._cpu_callback is not None:
            self._cpu_callback(dict(message))

    def set_cpu_callback(self, callback: Callable[[Dict[str, int]], None]) -> None:
        """Register the control plane's digest receiver."""
        self._cpu_callback = callback

    # ------------------------------------------------------------------
    # Event plumbing (all of it runs through the EventBus)
    # ------------------------------------------------------------------
    def _admits(self, event: Event) -> bool:
        """The bus's admission gate: the architecture description."""
        return self.description.supports(event.kind)

    def fire_event(self, event: Event) -> None:
        """Publish a fired event to the bus.

        The bus suppresses events the architecture description does not
        expose: the underlying state transition happened (the TM still
        dropped the packet), but the programming model never sees it —
        the precise gap the paper describes for baseline targets.
        Admitted events reach :meth:`_route_event` via the bus's
        subscription.
        """
        self.bus.publish(event)

    def _route_event(self, event: Event) -> None:
        """How an admitted event reaches the program; subclasses override."""
        raise NotImplementedError

    def _run_handler(self, event: Event) -> bool:
        """The bus's dispatcher: run the handler for a non-pipeline event."""
        fn = self._event_handlers.get(event.kind)
        if fn is None:
            return False
        regs = self._shared_regs
        if not regs:
            fn(self.ctx, event)
            return True
        value = event.kind.value
        for reg in regs:
            reg.set_thread(value)
        try:
            fn(self.ctx, event)
        finally:
            for reg in regs:
                reg.set_thread(None)
        return True

    def _dispatch_packet_event(
        self, kind: EventType, pkt: Packet, meta: StandardMetadata
    ) -> None:
        """Publish and run a pipeline packet event.

        Delivery for these events *is* the pipeline traversal, so the
        bus records the publish without routing (``route=False``) and
        the handler runs inline with mutable standard metadata; the
        description gate does not apply (handler sets were validated at
        program load).
        """
        program = self.program
        if program is None:
            return
        bus = self.bus
        if not bus._observers:
            # Pipeline handlers receive (ctx, pkt, meta), never the
            # Event record itself, so with nobody watching the bus only
            # the counters matter — skip building the Event.
            compiled = self._compiled
            if compiled is None:
                self._compile_countdown -= 1
                if self._compile_countdown < 0:
                    compiled = self._maybe_compile()
            if compiled:
                compiled[kind](pkt, meta)
                return
            bus.fired[kind] += 1
            fn = program.handler_for(kind)
            if fn is None:
                return
            cache = self.flow_cache
            if cache is not None:
                key = cache.flow_key(kind, pkt, meta)
                entry = cache.lookup(key)
                if entry is not None:
                    if entry is UNCACHEABLE:
                        # Known-impure flow: the walk runs in full.
                        self._set_thread(kind.value)
                        try:
                            fn(self.ctx, pkt, meta)
                        finally:
                            self._set_thread(None)
                    else:
                        cache.replay(entry, pkt, meta)
                        pipeline = self._pipeline_for_kind(kind)
                        if pipeline is not None:
                            pipeline.walks_elided += 1
                    bus.handled[kind] += 1
                    return
                # First traversal of this flow: run it under the
                # recording harness and memoize the decision.
                rec, rctx, rmeta = cache.begin(self.ctx, pkt, meta)
                self._set_thread(kind.value)
                try:
                    fn(rctx, pkt, rmeta)
                except BaseException:
                    cache.abort(rec)
                    raise
                finally:
                    self._set_thread(None)
                cache.commit(rec, key, pkt, meta)
                bus.handled[kind] += 1
                return
            self._set_thread(kind.value)
            try:
                fn(self.ctx, pkt, meta)
            finally:
                self._set_thread(None)
            bus.handled[kind] += 1
            return
        event = Event(kind=kind, time_ps=self.sim.now_ps, pkt=pkt)
        bus.publish(event, route=False, gated=False)
        fn = program.handler_for(kind)
        if fn is None:
            bus.delivered(event, handled=False)
            return
        cache = self.flow_cache
        if cache is not None:
            # Observers still see every publish/delivery; only the
            # behavioral walk is answered from the memo.
            self._cached_run(cache, fn, kind, pkt, meta)
            bus.delivered(event, handled=True)
            return
        self._set_thread(kind.value)
        try:
            fn(self.ctx, pkt, meta)
        finally:
            self._set_thread(None)
        bus.delivered(event, handled=True)

    def _cached_run(
        self, cache, fn, kind: EventType, pkt: Packet, meta: StandardMetadata
    ) -> None:
        """Run one packet-event handler through the flow-decision cache."""
        key = cache.flow_key(kind, pkt, meta)
        entry = cache.lookup(key)
        if entry is not None:
            if entry is UNCACHEABLE:
                self._set_thread(kind.value)
                try:
                    fn(self.ctx, pkt, meta)
                finally:
                    self._set_thread(None)
            else:
                cache.replay(entry, pkt, meta)
                pipeline = self._pipeline_for_kind(kind)
                if pipeline is not None:
                    pipeline.walks_elided += 1
            return
        rec, rctx, rmeta = cache.begin(self.ctx, pkt, meta)
        self._set_thread(kind.value)
        try:
            fn(rctx, pkt, rmeta)
        except BaseException:
            cache.abort(rec)
            raise
        finally:
            self._set_thread(None)
        cache.commit(rec, key, pkt, meta)

    def _maybe_compile(self):
        """Resolve a pending compile: specialize the dispatch for the
        loaded program, or mark compilation off.  Runs on the first
        dispatch after construction, a program load, or an unpickle
        (exec-generated closures don't survive checkpoints)."""
        if self.pipeline_compile and self.program is not None:
            compiled = compile_switch(self)
            self._compiled = compiled if compiled else False
        else:
            self._compiled = False
        return self._compiled

    def _pipeline_for_kind(self, kind: EventType):
        """The :class:`~repro.pisa.pipeline.Pipeline` a packet event of
        ``kind`` traverses, for walk-elision accounting; None when the
        architecture keeps no such pipeline."""
        return None

    def _tm_hook(self, kind: EventType) -> "_TmEventHook":
        """A traffic-manager hook that fires ``kind`` data-plane events.

        Every architecture's TM transitions fire events; whether the
        programming model sees them is decided by :meth:`fire_event`
        against the architecture description (baseline PSA suppresses
        all of them — the paper's motivating gap).
        """
        return _TmEventHook(self, kind)

    def _set_thread(self, thread: Optional[str]) -> None:
        for reg in self._shared_regs:
            reg.set_thread(thread)

    # ------------------------------------------------------------------
    # State introspection (checkpoint manifests and reports)
    # ------------------------------------------------------------------
    def state_stores(self) -> List[StateStore]:
        """Every :class:`StateStore` this switch owns.

        Covers the per-port link store plus the backing stores of every
        stateful extern the loaded program declares (via each extern's
        ``stores()`` method).  Subclasses extend this with
        architecture-specific state.
        """
        stores: List[StateStore] = [self._link_up]
        if self.program is not None:
            for _attr, extern in self.program.externs():
                stores_fn = getattr(extern, "stores", None)
                if stores_fn is not None:
                    stores.extend(stores_fn())
        return stores

    def state_summary(self) -> List[Dict[str, object]]:
        """Manifest rows (:meth:`StateStore.describe`) for this switch."""
        return [store.describe() for store in self.state_stores()]

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    def events_fired_of(self, kind) -> int:
        """Fired count for an event kind (EventType or its value string)."""
        if isinstance(kind, str):
            kind = EventType(kind)
        return self.events_fired[kind]

    def events_handled_of(self, kind) -> int:
        """Handled count for an event kind (EventType or its value string)."""
        if isinstance(kind, str):
            kind = EventType(kind)
        return self.events_handled[kind]

    # ------------------------------------------------------------------
    # Pickling (checkpoints pickle whole-switch object graphs)
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        # Exec-generated dispatch closures don't pickle; a restored
        # switch recompiles lazily on its first dispatch.
        if state.get("_compiled"):
            state["_compiled"] = None
        return state

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _transmit(self, pkt: Packet, port: int) -> None:
        if self._tx_callback is not None:
            self._tx_callback(pkt, port)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, arch={self.description.name})"
