"""The paper's contribution: event-driven PISA architectures.

This subpackage holds the event model (paper Table 1), the event-driven
programming model (``P4Program`` with per-event handlers and the
``shared_register`` extern), the architecture description mechanism
(which events a target exposes), and three architectures:

* :class:`repro.arch.baseline.BaselinePsaSwitch` — the Portable Switch
  Architecture of Figure 1: ingress and egress pipelines around a
  traffic manager; only packet events are exposed.
* :class:`repro.arch.event_driven.LogicalEventSwitch` — the logical
  event-driven architecture of Figure 2: one logical pipeline per event
  kind with shared state.
* :class:`repro.arch.sume.SumeEventSwitch` — the SUME Event Switch of
  Figure 4: a single physical P4 pipeline fed by an Event Merger that
  piggybacks event metadata on packets or injects empty packets, plus a
  timer unit, packet generator, and link status monitor.

:mod:`repro.arch.emulation` adds the Section 6 story: emulating timer
and dequeue events on a baseline (Tofino-like) device via its packet
generator and recirculation, with the bandwidth cost made measurable.
"""

from repro.arch.events import Event, EventType, PACKET_EVENTS, NON_PACKET_EVENTS
from repro.arch.bus import BusObserver, EventBus
from repro.arch.description import ArchitectureDescription, UnsupportedEventError
from repro.arch.program import P4Program, handler
from repro.arch.baseline import BaselinePsaSwitch
from repro.arch.event_driven import LogicalEventSwitch
from repro.arch.sume import SumeEventSwitch
from repro.arch.merger import EventMerger, MergerStats
from repro.arch.generator import PacketGenerator, GeneratorConfig
from repro.arch.emulation import EmulatedEventSwitch

__all__ = [
    "Event",
    "EventType",
    "PACKET_EVENTS",
    "NON_PACKET_EVENTS",
    "BusObserver",
    "EventBus",
    "ArchitectureDescription",
    "UnsupportedEventError",
    "P4Program",
    "handler",
    "BaselinePsaSwitch",
    "LogicalEventSwitch",
    "SumeEventSwitch",
    "EventMerger",
    "MergerStats",
    "PacketGenerator",
    "GeneratorConfig",
    "EmulatedEventSwitch",
]
