"""The logical event-driven architecture (paper Figure 2).

Each data-plane event kind triggers processing in its own *logical
pipeline*, and all pipelines share global state (the ``shared_register``
externs).  This is the model the paper says lower-line-rate devices can
implement directly with multi-ported memory: every event thread has a
dedicated read/write port, so handlers run synchronously at the moment
their event fires, with no staleness.

The class extends the baseline PSA datapath (packets still flow ingress
pipeline → traffic manager → egress pipeline) and adds:

* traffic-manager hooks that fire ENQUEUE / DEQUEUE / BUFFER_OVERFLOW /
  BUFFER_UNDERFLOW / PACKET_TRANSMITTED events,
* a timer unit (TIMER events),
* a data-plane packet generator (GENERATED_PACKET events),
* link-status (LINK_STATUS), control-plane (CONTROL_PLANE) and USER
  events,

all dispatched immediately to the program's handlers.
"""

from __future__ import annotations

from typing import Dict

from repro.arch.baseline import BaselinePsaSwitch
from repro.arch.description import LOGICAL_EVENT_DRIVEN, ArchitectureDescription
from repro.arch.events import Event, EventType
from repro.arch.program import P4Program
from repro.packet.packet import Packet
from repro.pisa.pipeline import Pipeline
from repro.sim.kernel import Simulator


def _noop_control(pkt, meta) -> None:
    """Placeholder control for accounting-only event pipelines.

    A module-level function (not a lambda) so loaded switches stay
    picklable for whole-simulator checkpoints.
    """


class LogicalEventSwitch(BaselinePsaSwitch):
    """Figure 2's logical architecture: one pipeline per event kind."""

    def __init__(
        self,
        sim: Simulator,
        description: ArchitectureDescription = LOGICAL_EVENT_DRIVEN,
        name: str = "evsw",
        **kwargs,
    ) -> None:
        super().__init__(sim, description, name=name, **kwargs)
        self.event_pipelines: Dict[EventType, Pipeline] = {}

    # ------------------------------------------------------------------
    # Program lifecycle
    # ------------------------------------------------------------------
    def load_program(self, program: P4Program) -> None:
        super().load_program(program)
        # One logical pipeline per handled non-pipeline event, mirroring
        # Figure 2's separate enqueue/dequeue pipelines.  These exist for
        # accounting (the resource model counts them); dispatch itself is
        # synchronous.
        self.event_pipelines = {
            kind: Pipeline(
                f"{self.name}.{kind.value}",
                _noop_control,
                stage_count=max(2, self.description.pipeline_stages // 2),
                clock_mhz=self.description.clock_mhz,
            )
            for kind in sorted(program.handled_events(), key=lambda k: k.value)
            if kind
            not in (
                EventType.INGRESS_PACKET,
                EventType.EGRESS_PACKET,
                EventType.RECIRCULATED_PACKET,
                EventType.GENERATED_PACKET,
            )
        }

    # ------------------------------------------------------------------
    # Generated packets
    # ------------------------------------------------------------------
    def inject_generated(self, pkt: Packet) -> None:
        """Program-generated packets enter the ingress pipeline directly."""
        pkt.generated = True
        self.sim.call_after(
            self.ingress_pipeline.latency_ps, self._ingress_done, pkt, pkt.ingress_port
        )

    # ------------------------------------------------------------------
    # Event routing: synchronous, multi-ported memory (no staleness)
    # ------------------------------------------------------------------
    def _route_event(self, event: Event) -> None:
        """Bus subscriber: account the logical pipeline, dispatch now.

        Dispatch happens at the instant the event was published, so the
        bus's dispatch-latency observers record zero staleness — the
        multi-ported-memory ideal of Figure 2.
        """
        pipeline = self.event_pipelines.get(event.kind)
        if pipeline is not None:
            pipeline.packets_processed += 1
        self.bus.dispatch(event)
