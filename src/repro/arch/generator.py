"""The configurable packet generator (paper Figure 4).

The SUME Event Switch contains a packet generator configured with a
timer period; each firing builds a packet (via a program- or operator-
supplied template function) and injects it into the P4 pipeline as a
GENERATED_PACKET event.  This is also the building block for the
Tofino-style timer emulation of Section 6: a control-plane-configured
generator stream stands in for native timer events.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List

from repro.packet.packet import Packet
from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicProcess

#: Builds a fresh packet each firing; receives the firing time.
PacketTemplate = Callable[[int], Packet]


@dataclass
class GeneratorConfig:
    """One generator stream: a period and a packet template."""

    stream_id: int
    period_ps: int
    template: PacketTemplate

    def __post_init__(self) -> None:
        if self.period_ps <= 0:
            raise ValueError(f"generator period must be positive, got {self.period_ps}")


class PacketGenerator:
    """Periodic packet generation into an injection callback."""

    def __init__(self, sim: Simulator, inject: Callable[[Packet], None]) -> None:
        self.sim = sim
        self.inject = inject
        self._streams: Dict[int, PeriodicProcess] = {}
        self.generated_count = 0

    def configure(self, config: GeneratorConfig) -> None:
        """Install (or replace) a generator stream."""
        self.remove(config.stream_id)
        process = PeriodicProcess(
            self.sim,
            config.period_ps,
            partial(self._fire, config),
            name=f"pktgen.{config.stream_id}",
        )
        self._streams[config.stream_id] = process
        process.start()

    def remove(self, stream_id: int) -> None:
        """Stop and remove a stream (no-op when absent)."""
        process = self._streams.pop(stream_id, None)
        if process is not None:
            process.stop()

    def set_period(self, stream_id: int, period_ps: int) -> None:
        """Retune a stream's period (takes effect next firing)."""
        self._streams[stream_id].set_period(period_ps)

    @property
    def stream_ids(self) -> List[int]:
        """Configured stream ids."""
        return sorted(self._streams)

    def _fire(self, config: GeneratorConfig) -> None:
        pkt = config.template(self.sim.now_ps)
        pkt.generated = True
        self.generated_count += 1
        self.inject(pkt)

    def __repr__(self) -> str:
        return f"PacketGenerator(streams={self.stream_ids}, generated={self.generated_count})"
