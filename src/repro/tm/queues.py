"""Packet queues with byte-accurate occupancy accounting.

Each output port owns one or more :class:`PacketQueue` instances.  The
queue tracks occupancy in both packets and bytes, plus the high-water
mark and cumulative statistics that the monitoring applications and the
benches read.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.packet.packet import Packet


@dataclass
class QueueStats:
    """Cumulative statistics for one queue."""

    enqueued_packets: int = 0
    enqueued_bytes: int = 0
    dequeued_packets: int = 0
    dequeued_bytes: int = 0
    dropped_packets: int = 0
    dropped_bytes: int = 0
    max_depth_bytes: int = 0
    max_depth_packets: int = 0


class PacketQueue:
    """A FIFO packet queue with a byte-capacity limit.

    ``capacity_bytes`` bounds this queue alone; the shared-buffer limit
    is enforced separately by :class:`repro.tm.buffer.SharedBuffer`.
    """

    def __init__(self, capacity_bytes: int, name: str = "queue") -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.name = name
        self._packets: Deque[Packet] = deque()
        self.depth_bytes = 0
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._packets)

    @property
    def empty(self) -> bool:
        """True when the queue holds no packets."""
        return not self._packets

    def fits(self, pkt: Packet) -> bool:
        """Would ``pkt`` fit within this queue's own capacity?"""
        return self.depth_bytes + pkt.total_len <= self.capacity_bytes

    def push(self, pkt: Packet) -> None:
        """Enqueue at the tail; caller must have checked :meth:`fits`."""
        if not self.fits(pkt):
            raise OverflowError(
                f"queue {self.name!r} overflow: {self.depth_bytes}B + "
                f"{pkt.total_len}B > {self.capacity_bytes}B"
            )
        self._packets.append(pkt)
        self.depth_bytes += pkt.total_len
        self.stats.enqueued_packets += 1
        self.stats.enqueued_bytes += pkt.total_len
        self.stats.max_depth_bytes = max(self.stats.max_depth_bytes, self.depth_bytes)
        self.stats.max_depth_packets = max(
            self.stats.max_depth_packets, len(self._packets)
        )

    def pop(self) -> Packet:
        """Dequeue from the head; IndexError when empty."""
        if not self._packets:
            raise IndexError(f"pop from empty queue {self.name!r}")
        pkt = self._packets.popleft()
        self.depth_bytes -= pkt.total_len
        self.stats.dequeued_packets += 1
        self.stats.dequeued_bytes += pkt.total_len
        return pkt

    def peek(self) -> Optional[Packet]:
        """The head packet without removing it, or None when empty."""
        return self._packets[0] if self._packets else None

    def account_drop(self, pkt: Packet) -> None:
        """Record a drop that was charged against this queue."""
        self.stats.dropped_packets += 1
        self.stats.dropped_bytes += pkt.total_len

    def __repr__(self) -> str:
        return (
            f"PacketQueue({self.name!r}, {len(self)} pkts / "
            f"{self.depth_bytes}B of {self.capacity_bytes}B)"
        )
