"""The traffic manager: admission, queueing, scheduling, transmission.

Responsibilities (paper Figures 1, 2 and 4):

* **Admission**: a packet is admitted if its target queue and the shared
  buffer both have room; otherwise it is dropped and a *buffer overflow*
  event fires.
* **Enqueue**: on admission the TM "extracts some metadata from the
  packet and uses it to fire an enqueue event" — the hook receives the
  user's ``enq_meta`` plus queue-depth information.
* **Dequeue / transmit**: each output port serializes packets at its
  line rate; dequeue fires a *dequeue* event, and the end of
  serialization fires a *packet transmitted* event.
* **Underflow**: when a dequeue leaves a port with no buffered packets,
  a *buffer underflow* event fires (the link is about to go idle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.packet.packet import Packet
from repro.sim.kernel import Simulator
from repro.sim.units import bytes_to_time_ps
from repro.tm.buffer import SharedBuffer
from repro.tm.queues import PacketQueue
from repro.tm.scheduler import FifoScheduler, PifoScheduler, Scheduler


@dataclass(slots=True)
class TmEvent:
    """Context passed to traffic-manager event hooks."""

    pkt: Packet
    port: int
    queue_id: int
    queue_depth_bytes: int
    buffer_occupancy_bytes: int
    time_ps: int
    user_meta: Dict[str, int] = field(default_factory=dict)


Hook = Callable[[TmEvent], None]


@dataclass
class TmEventHooks:
    """Hook points the owning architecture wires to its event threads."""

    on_enqueue: Optional[Hook] = None
    on_dequeue: Optional[Hook] = None
    on_overflow: Optional[Hook] = None
    on_underflow: Optional[Hook] = None
    on_transmit: Optional[Hook] = None


class _Port:
    """One output port: queues, a scheduler, and transmit state."""

    def __init__(
        self,
        index: int,
        queues: List[PacketQueue],
        scheduler: Scheduler,
        rate_gbps: float,
    ) -> None:
        self.index = index
        self.queues = queues
        self.scheduler = scheduler
        self.rate_gbps = rate_gbps
        self.busy = False
        self.enabled = True
        self.tx_packets = 0
        self.tx_bytes = 0
        self.busy_time_ps = 0
        # The scheduler kind and queue fan-out are fixed at construction;
        # deciding them per packet (isinstance + a genexpr sum) showed up
        # in the TM's per-packet profile.
        self.is_pifo = isinstance(scheduler, PifoScheduler)
        self.last_queue = len(queues) - 1
        self._single_queue = queues[0] if len(queues) == 1 else None

    def depth_bytes(self) -> int:
        if self.is_pifo:
            return self.scheduler.depth_bytes
        single = self._single_queue
        if single is not None:
            return single.depth_bytes
        return sum(q.depth_bytes for q in self.queues)

    def has_packets(self) -> bool:
        return self.scheduler.has_packets()


SchedulerFactory = Callable[[List[PacketQueue]], Scheduler]


class TrafficManager:
    """Queueing and scheduling engine for one switch.

    Packets arrive via :meth:`enqueue` with ``pkt.egress_port`` and
    ``pkt.queue_id`` already chosen by the ingress pipeline; transmitted
    packets are handed to ``egress_callback(pkt, port)``.
    """

    def __init__(
        self,
        sim: Simulator,
        port_count: int,
        queues_per_port: int = 1,
        queue_capacity_bytes: int = 64 * 1024,
        buffer_capacity_bytes: Optional[int] = None,
        port_rate_gbps: float = 10.0,
        scheduler_factory: Optional[SchedulerFactory] = None,
        name: str = "tm",
    ) -> None:
        if port_count <= 0:
            raise ValueError(f"port count must be positive, got {port_count}")
        if queues_per_port <= 0:
            raise ValueError(f"queue count must be positive, got {queues_per_port}")
        self.sim = sim
        self.name = name
        self.queues_per_port = queues_per_port
        if buffer_capacity_bytes is None:
            buffer_capacity_bytes = port_count * queues_per_port * queue_capacity_bytes
        self.buffer = SharedBuffer(buffer_capacity_bytes)
        factory = scheduler_factory or (lambda queues: FifoScheduler(queues))
        self.ports: List[_Port] = []
        for port_index in range(port_count):
            queues = [
                PacketQueue(
                    queue_capacity_bytes, name=f"{name}.p{port_index}q{queue_index}"
                )
                for queue_index in range(queues_per_port)
            ]
            self.ports.append(
                _Port(port_index, queues, factory(queues), port_rate_gbps)
            )
        self.hooks = TmEventHooks()
        self.egress_callback: Optional[Callable[[Packet, int], None]] = None
        #: Wired by the owning switch: pausing a port is a disruption
        #: the flow fastpath must materialize in-flight fusions for.
        self.fastpath_disrupt: Optional[Callable[[], None]] = None
        self.drops_overflow = 0
        self.total_enqueued = 0
        self.total_dequeued = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def set_egress_callback(self, callback: Callable[[Packet, int], None]) -> None:
        """Where transmitted packets go (the architecture's egress path)."""
        self.egress_callback = callback

    def set_port_rate(self, port: int, rate_gbps: float) -> None:
        """Change a port's line rate."""
        if rate_gbps <= 0:
            raise ValueError(f"rate must be positive, got {rate_gbps}")
        self._port(port).rate_gbps = rate_gbps

    def set_port_enabled(self, port: int, enabled: bool) -> None:
        """Administratively enable or disable a port (link failure)."""
        port_obj = self._port(port)
        disrupt = self.fastpath_disrupt
        if disrupt is not None:
            disrupt()
        port_obj.enabled = enabled
        if enabled:
            self._kick(port_obj)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def queue_depth_bytes(self, port: int, queue_id: int = 0) -> int:
        """Current depth of one queue in bytes."""
        return self._port(port).queues[queue_id].depth_bytes

    def port_depth_bytes(self, port: int) -> int:
        """Total buffered bytes destined to ``port``."""
        return self._port(port).depth_bytes()

    def occupancy_bytes(self) -> int:
        """Total shared-buffer occupancy in bytes."""
        return self.buffer.occupancy_bytes

    @property
    def port_count(self) -> int:
        """Number of output ports."""
        return len(self.ports)

    def port_stats(self, port: int) -> Dict[str, int]:
        """Transmit statistics for one port."""
        port_obj = self._port(port)
        return {
            "tx_packets": port_obj.tx_packets,
            "tx_bytes": port_obj.tx_bytes,
            "busy_time_ps": port_obj.busy_time_ps,
        }

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def enqueue(self, pkt: Packet) -> bool:
        """Admit ``pkt`` to its egress port's queue.

        Returns True on admission; on overflow the packet is dropped,
        the overflow hook fires, and False is returned.
        """
        if pkt.egress_port is None:
            raise ValueError(f"packet {pkt.pkt_id} has no egress port set")
        port_obj = self._port(pkt.egress_port)
        queue_id = pkt.queue_id
        if queue_id > port_obj.last_queue:
            queue_id = port_obj.last_queue
        queue = port_obj.queues[queue_id]

        if port_obj.is_pifo:
            return self._enqueue_pifo(pkt, port_obj, queue)

        if not queue.fits(pkt) or not self.buffer.fits(pkt):
            self._drop_overflow(pkt, port_obj, queue_id, queue)
            return False
        self.buffer.admit(pkt)
        queue.push(pkt)
        pkt.ts_enqueued_ps = self.sim.now_ps
        self.total_enqueued += 1
        self._fire(
            self.hooks.on_enqueue,
            pkt,
            port_obj.index,
            queue_id,
            queue.depth_bytes,
            pkt.meta.get("enq_meta"),
        )
        self._kick(port_obj)
        return True

    def _enqueue_pifo(self, pkt: Packet, port_obj: _Port, queue: PacketQueue) -> bool:
        if not self.buffer.fits(pkt):
            self._drop_overflow(pkt, port_obj, pkt.queue_id, queue)
            return False
        scheduler = port_obj.scheduler
        assert isinstance(scheduler, PifoScheduler)
        self.buffer.admit(pkt)
        displaced = scheduler.on_enqueue(pkt)
        if displaced is pkt:
            # Rejected: rank no better than the PIFO tail.
            self.buffer.release(pkt)
            self._drop_overflow(pkt, port_obj, pkt.queue_id, queue, admitted=False)
            return False
        pkt.ts_enqueued_ps = self.sim.now_ps
        self.total_enqueued += 1
        self._fire(
            self.hooks.on_enqueue,
            pkt,
            port_obj.index,
            pkt.queue_id,
            scheduler.depth_bytes,
            pkt.meta.get("enq_meta"),
        )
        if displaced is not None:
            # Pushed out of the tail: a late overflow drop.
            self.buffer.release(displaced)
            self._drop_overflow(displaced, port_obj, displaced.queue_id, queue, admitted=False)
        self._kick(port_obj)
        return True

    def _drop_overflow(
        self,
        pkt: Packet,
        port_obj: _Port,
        queue_id: int,
        queue: PacketQueue,
        admitted: bool = False,
    ) -> None:
        self.drops_overflow += 1
        self.buffer.reject()
        queue.account_drop(pkt)
        self._fire(
            self.hooks.on_overflow,
            pkt,
            port_obj.index,
            queue_id,
            queue.depth_bytes,
            pkt.meta.get("enq_meta"),
        )

    def _kick(self, port_obj: _Port) -> None:
        """Start transmitting if the port is idle and has work."""
        if port_obj.busy or not port_obj.enabled:
            return
        pkt = port_obj.scheduler.dequeue()
        if pkt is None:
            return
        self.buffer.release(pkt)
        pkt.ts_dequeued_ps = self.sim.now_ps
        self.total_dequeued += 1
        queue_id = pkt.queue_id
        if queue_id > port_obj.last_queue:
            queue_id = port_obj.last_queue
        self._fire(
            self.hooks.on_dequeue,
            pkt,
            port_obj.index,
            queue_id,
            port_obj.depth_bytes(),
            pkt.meta.get("deq_meta"),
        )
        if not port_obj.has_packets():
            self._fire(
                self.hooks.on_underflow,
                pkt,
                port_obj.index,
                queue_id,
                0,
                {},
            )
        port_obj.busy = True
        tx_time = bytes_to_time_ps(pkt.wire_len, port_obj.rate_gbps)
        port_obj.busy_time_ps += tx_time
        self.sim.call_after(tx_time, self._finish_tx, port_obj, pkt)

    def _finish_tx(self, port_obj: _Port, pkt: Packet) -> None:
        port_obj.busy = False
        port_obj.tx_packets += 1
        port_obj.tx_bytes += pkt.total_len
        queue_id = pkt.queue_id
        if queue_id > port_obj.last_queue:
            queue_id = port_obj.last_queue
        self._fire(
            self.hooks.on_transmit,
            pkt,
            port_obj.index,
            queue_id,
            port_obj.depth_bytes(),
            {},
        )
        if self.egress_callback is not None:
            self.egress_callback(pkt, port_obj.index)
        self._kick(port_obj)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _port(self, port: int) -> _Port:
        if not 0 <= port < len(self.ports):
            raise IndexError(
                f"TM {self.name!r} port {port} out of range [0, {len(self.ports)})"
            )
        return self.ports[port]

    def _fire(
        self,
        hook: Optional[Hook],
        pkt: Packet,
        port: int,
        queue_id: int,
        depth: int,
        user_meta: Optional[Dict[str, int]] = None,
    ) -> None:
        if hook is None:
            return
        # Hooks that can tell the event will be suppressed without
        # anyone watching (architecture hooks precompute description
        # support) answer here, before the TmEvent and the user-meta
        # copy are built — the TM fires several of these per packet.
        precheck = getattr(hook, "suppresses_cheaply", None)
        if precheck is not None and precheck():
            return
        hook(
            TmEvent(
                pkt=pkt,
                port=port,
                queue_id=queue_id,
                queue_depth_bytes=depth,
                buffer_occupancy_bytes=self.buffer.occupancy_bytes,
                time_ps=self.sim.now_ps,
                user_meta=dict(user_meta) if user_meta else {},
            )
        )

    def __repr__(self) -> str:
        return (
            f"TrafficManager({self.name!r}, ports={len(self.ports)}, "
            f"occupancy={self.buffer.occupancy_bytes}B)"
        )
