"""Shared packet buffer accounting.

Switch ASICs share one packet buffer across all ports; a packet is
admitted only if both its queue's limit and the shared-buffer limit
allow it.  :class:`SharedBuffer` tracks the global occupancy and the
high-water mark — the "total buffer occupancy" congestion signal of the
paper's AQM application.
"""

from __future__ import annotations

from repro.packet.packet import Packet


class SharedBuffer:
    """Global byte budget shared by every queue of a switch."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"buffer capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.occupancy_bytes = 0
        self.max_occupancy_bytes = 0
        self.admitted_packets = 0
        self.rejected_packets = 0

    def fits(self, pkt: Packet) -> bool:
        """Would ``pkt`` fit in the remaining shared budget?"""
        return self.occupancy_bytes + pkt.total_len <= self.capacity_bytes

    def admit(self, pkt: Packet) -> None:
        """Charge ``pkt`` against the shared budget."""
        if not self.fits(pkt):
            raise OverflowError(
                f"shared buffer overflow: {self.occupancy_bytes}B + "
                f"{pkt.total_len}B > {self.capacity_bytes}B"
            )
        self.occupancy_bytes += pkt.total_len
        self.admitted_packets += 1
        self.max_occupancy_bytes = max(self.max_occupancy_bytes, self.occupancy_bytes)

    def release(self, pkt: Packet) -> None:
        """Return ``pkt``'s bytes to the shared budget."""
        if self.occupancy_bytes < pkt.total_len:
            raise ValueError(
                f"releasing {pkt.total_len}B but only {self.occupancy_bytes}B held"
            )
        self.occupancy_bytes -= pkt.total_len

    def reject(self) -> None:
        """Record an admission failure (buffer overflow drop)."""
        self.rejected_packets += 1

    @property
    def empty(self) -> bool:
        """True when no packet bytes are buffered anywhere."""
        return self.occupancy_bytes == 0

    def __repr__(self) -> str:
        return (
            f"SharedBuffer({self.occupancy_bytes}/{self.capacity_bytes}B, "
            f"peak={self.max_occupancy_bytes}B)"
        )
