"""Traffic manager: shared buffer, queues, schedulers, and event hooks.

The traffic manager sits between the ingress and egress pipelines
(paper Figure 1).  In the event-driven architectures it is also the
*source of truth for buffer events*: every enqueue, dequeue, drop
(overflow) and buffer-empty (underflow) transition fires a hook that
the architecture turns into a data-plane event.
"""

from repro.tm.queues import PacketQueue, QueueStats
from repro.tm.buffer import SharedBuffer
from repro.tm.scheduler import (
    DeficitRoundRobinScheduler,
    FifoScheduler,
    PifoScheduler,
    Scheduler,
    StrictPriorityScheduler,
)
from repro.tm.traffic_manager import TmEvent, TmEventHooks, TrafficManager

__all__ = [
    "TmEvent",
    "PacketQueue",
    "QueueStats",
    "SharedBuffer",
    "Scheduler",
    "FifoScheduler",
    "StrictPriorityScheduler",
    "DeficitRoundRobinScheduler",
    "PifoScheduler",
    "TrafficManager",
    "TmEventHooks",
]
