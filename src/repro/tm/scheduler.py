"""Egress schedulers.

A scheduler picks which of a port's queues to serve next.  The paper
(§3, traffic management) notes that packet scheduling is not currently
P4-programmable; combining the event-driven model with a PIFO yields a
programmable scheduler — :class:`PifoScheduler` is that combination,
while FIFO, strict-priority, and deficit-round-robin are the
fixed-function baselines.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.packet.packet import Packet
from repro.pisa.externs.pifo import PifoQueue
from repro.tm.queues import PacketQueue


class Scheduler:
    """Base scheduler interface over a port's queues."""

    def __init__(self, queues: Sequence[PacketQueue]) -> None:
        if not queues:
            raise ValueError("scheduler needs at least one queue")
        self.queues = list(queues)

    def select(self) -> Optional[int]:
        """Index of the queue to serve next, or None if all are empty."""
        raise NotImplementedError

    def has_packets(self) -> bool:
        """True when any queue is non-empty."""
        return any(not q.empty for q in self.queues)

    def dequeue(self) -> Optional[Packet]:
        """Pop the next packet according to the policy, or None."""
        index = self.select()
        if index is None:
            return None
        return self.queues[index].pop()


class FifoScheduler(Scheduler):
    """Single-queue FIFO (ignores all but queue 0 when selecting)."""

    def select(self) -> Optional[int]:
        for index, queue in enumerate(self.queues):
            if not queue.empty:
                return index
        return None


class StrictPriorityScheduler(Scheduler):
    """Lowest queue index is highest priority and always served first."""

    def select(self) -> Optional[int]:
        for index, queue in enumerate(self.queues):
            if not queue.empty:
                return index
        return None


class DeficitRoundRobinScheduler(Scheduler):
    """Deficit round robin with per-queue quanta (byte-fair service)."""

    def __init__(self, queues: Sequence[PacketQueue], quantum_bytes: int = 1500) -> None:
        super().__init__(queues)
        if quantum_bytes <= 0:
            raise ValueError(f"quantum must be positive, got {quantum_bytes}")
        self.quantum_bytes = quantum_bytes
        self._deficit: List[int] = [0] * len(self.queues)
        # Whether the current visit to each queue has received its
        # quantum yet (classic DRR grants the quantum once per visit).
        self._granted: List[bool] = [False] * len(self.queues)
        self._next = 0

    def _advance(self) -> None:
        self._next = (self._next + 1) % len(self.queues)
        self._granted[self._next] = False

    def select(self) -> Optional[int]:
        if not self.has_packets():
            return None
        # A queue's deficit persists across rounds while it stays
        # backlogged, so heads larger than one quantum are eventually
        # served; the loop bound covers enough rounds for that.
        max_head = max(
            (q.peek().total_len for q in self.queues if not q.empty), default=0
        )
        rounds = 2 + max_head // self.quantum_bytes
        for _ in range(rounds * len(self.queues) + 4):
            index = self._next
            queue = self.queues[index]
            if queue.empty:
                self._deficit[index] = 0
                self._advance()
                continue
            if not self._granted[index]:
                self._deficit[index] += self.quantum_bytes
                self._granted[index] = True
            head = queue.peek()
            assert head is not None
            if self._deficit[index] >= head.total_len:
                self._deficit[index] -= head.total_len
                return index
            # Visit exhausted; keep the remaining deficit for next round.
            self._advance()
        return None  # pragma: no cover - unreachable with sane quanta


RankFn = Callable[[Packet], int]


class PifoScheduler(Scheduler):
    """Programmable scheduler: a PIFO ordered by a user rank function.

    Packets enter through :meth:`on_enqueue` (called by the traffic
    manager), which computes the rank — e.g. flow virtual finish time
    for WFQ, or slack for EDF — and pushes into the PIFO.  ``dequeue``
    pops in rank order.  The backing :class:`PacketQueue` list is kept
    for occupancy accounting only.
    """

    def __init__(
        self,
        queues: Sequence[PacketQueue],
        rank_fn: RankFn,
        capacity: int = 4096,
    ) -> None:
        super().__init__(queues)
        self.rank_fn = rank_fn
        self.pifo: PifoQueue[Packet] = PifoQueue(capacity, name="sched_pifo")
        self.depth_bytes = 0

    def on_enqueue(self, pkt: Packet) -> Optional[Packet]:
        """Rank and insert ``pkt``; returns a displaced/rejected packet.

        The traffic manager must treat a returned packet as dropped and
        release its buffer bytes.
        """
        displaced = self.pifo.push(self.rank_fn(pkt), pkt)
        if displaced is not pkt:
            self.depth_bytes += pkt.total_len
        if displaced is not None and displaced is not pkt:
            self.depth_bytes -= displaced.total_len
        return displaced

    def has_packets(self) -> bool:
        return len(self.pifo) > 0

    def select(self) -> Optional[int]:
        return 0 if self.has_packets() else None

    def dequeue(self) -> Optional[Packet]:
        if not self.has_packets():
            return None
        pkt = self.pifo.pop()
        self.depth_bytes -= pkt.total_len
        return pkt
