"""Self-similar (long-range-dependent) traffic.

Real packet traffic is famously self-similar: aggregating many ON/OFF
sources whose period lengths are Pareto-distributed (infinite variance)
produces burstiness at every time scale, unlike Poisson traffic which
smooths out.  Monitoring and AQM results can look very different under
the two, so the reproduction offers this generator alongside Poisson.
"""

from __future__ import annotations

from typing import List

from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRng
from repro.workloads.base import FlowSpec, SendFn, TrafficGenerator


class ParetoOnOffSource:
    """One ON/OFF source with Pareto-distributed period lengths."""

    def __init__(self, rng: SeededRng, shape: float, mean_on_ps: int, mean_off_ps: int) -> None:
        if not 1.0 < shape <= 2.0:
            raise ValueError(
                f"shape must be in (1, 2] for self-similarity, got {shape}"
            )
        self.rng = rng
        self.shape = shape
        # Pareto mean = shape * xm / (shape - 1) → solve for xm.
        self.on_scale = mean_on_ps * (shape - 1) / shape
        self.off_scale = mean_off_ps * (shape - 1) / shape
        self.on_until_ps = 0
        self.off_until_ps = 0

    def _pareto(self, scale: float) -> int:
        # Inverse CDF: xm / U^(1/shape).
        u = max(self.rng.random(), 1e-12)
        return max(1, int(scale / (u ** (1.0 / self.shape))))

    def is_on(self, now_ps: int) -> bool:
        """Advance the ON/OFF state machine to ``now_ps``; True if ON."""
        while now_ps >= self.off_until_ps:
            self.on_until_ps = self.off_until_ps + self._pareto(self.on_scale)
            self.off_until_ps = self.on_until_ps + self._pareto(self.off_scale)
        return now_ps < self.on_until_ps


class SelfSimilarTraffic(TrafficGenerator):
    """Aggregated Pareto ON/OFF sources → long-range-dependent load.

    ``sources`` independent ON/OFF processes each emit at
    ``per_source_pps`` while ON.  The generator polls on a fixed tick
    and emits one packet per currently-ON source slot, rotating flow
    identities so downstream per-flow structures see realistic churn.
    """

    def __init__(
        self,
        sim: Simulator,
        send: SendFn,
        sources: int = 16,
        per_source_pps: float = 50_000.0,
        shape: float = 1.5,
        mean_on_ps: int = 500_000_000,  # 0.5 ms
        mean_off_ps: int = 1_500_000_000,  # 1.5 ms
        payload_len: int = 700,
        dst_ip: int = 0x0A00_0002,
        seed: int = 1,
        name: str = "selfsimilar",
    ) -> None:
        super().__init__(sim, send, name)
        if sources <= 0:
            raise ValueError(f"need at least one source, got {sources}")
        if per_source_pps <= 0:
            raise ValueError(f"rate must be positive, got {per_source_pps}")
        self.payload_len = payload_len
        rng = SeededRng(seed, f"selfsimilar/{name}")
        self._emit_rng = rng.child("emit")
        self.sources: List[ParetoOnOffSource] = [
            ParetoOnOffSource(rng.child(f"src{i}"), shape, mean_on_ps, mean_off_ps)
            for i in range(sources)
        ]
        self.flows: List[FlowSpec] = [
            FlowSpec(
                src_ip=0x0A00_0001, dst_ip=dst_ip, sport=15_000 + i, dport=4_242
            )
            for i in range(sources)
        ]
        self.tick_ps = max(1, int(1e12 / per_source_pps))
        self.on_samples = 0
        self.state_samples = 0

    def _tick(self) -> None:
        now = self.sim.now_ps
        for source, flow in zip(self.sources, self.flows):
            self.state_samples += 1
            if source.is_on(now):
                self.on_samples += 1
                self._emit(flow.build_packet(self.payload_len, ts_ps=now))
        self._schedule_next(self.tick_ps)

    def duty_cycle(self) -> float:
        """Observed fraction of source-slots that were ON."""
        return self.on_samples / self.state_samples if self.state_samples else 0.0
