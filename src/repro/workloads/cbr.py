"""Constant-bit-rate traffic."""

from __future__ import annotations

from typing import Optional

from repro.sim.kernel import Simulator
from repro.workloads.base import FlowSpec, SendFn, TrafficGenerator


class ConstantBitRate(TrafficGenerator):
    """Fixed-size packets at a fixed rate for one flow.

    ``rate_gbps`` sets the goodput target; the inter-packet gap is
    derived from the packet's on-wire size so the offered load matches
    the requested rate.
    """

    def __init__(
        self,
        sim: Simulator,
        send: SendFn,
        flow: FlowSpec,
        rate_gbps: float,
        payload_len: int = 1400,
        name: str = "cbr",
        max_packets: Optional[int] = None,
    ) -> None:
        super().__init__(sim, send, name)
        if rate_gbps <= 0:
            raise ValueError(f"rate must be positive, got {rate_gbps}")
        self.flow = flow
        self.rate_gbps = rate_gbps
        self.payload_len = payload_len
        self.max_packets = max_packets
        sample = flow.build_packet(payload_len)
        bits = sample.wire_len * 8
        self.gap_ps = max(1, int(bits * 1_000 / rate_gbps))

    def _tick(self) -> None:
        if self.max_packets is not None and self.packets_sent >= self.max_packets:
            self.stop()
            return
        self._emit(self.flow.build_packet(self.payload_len, ts_ps=self.sim.now_ps))
        self._schedule_next(self.gap_ps)
