"""Measurement sinks.

Receive-side observers that the benches attach to hosts or switch
transmit callbacks: per-flow packet/byte counts and one-way latency
statistics (packets carry their creation timestamp).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.packet.packet import Packet


class PacketSink:
    """Counts packets and bytes, total and per flow five-tuple."""

    def __init__(self, name: str = "sink") -> None:
        self.name = name
        self.packets = 0
        self.bytes = 0
        self.per_flow: Dict[Tuple, int] = {}

    def __call__(self, pkt: Packet) -> None:
        self.packets += 1
        self.bytes += pkt.total_len
        ftuple = pkt.five_tuple()
        if ftuple is not None:
            key = (ftuple.src_ip, ftuple.dst_ip, ftuple.proto, ftuple.sport, ftuple.dport)
            self.per_flow[key] = self.per_flow.get(key, 0) + 1

    def flow_count(self) -> int:
        """Distinct flows observed."""
        return len(self.per_flow)

    def __repr__(self) -> str:
        return f"PacketSink({self.name!r}, packets={self.packets})"


class LatencySink:
    """One-way latency statistics from packet creation timestamps."""

    def __init__(self, sim, name: str = "latency") -> None:
        self.sim = sim
        self.name = name
        self.samples: List[int] = []

    def __call__(self, pkt: Packet) -> None:
        self.samples.append(self.sim.now_ps - pkt.ts_created_ps)

    @property
    def count(self) -> int:
        """Number of samples."""
        return len(self.samples)

    def mean_ps(self) -> float:
        """Mean latency."""
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def max_ps(self) -> int:
        """Worst-case latency."""
        return max(self.samples) if self.samples else 0

    def percentile_ps(self, pct: float) -> int:
        """The ``pct`` percentile latency (nearest-rank)."""
        if not self.samples:
            return 0
        if not 0 < pct <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {pct}")
        ordered = sorted(self.samples)
        rank = max(1, int(round(pct / 100.0 * len(ordered))))
        return ordered[rank - 1]

    def __repr__(self) -> str:
        return f"LatencySink({self.name!r}, n={self.count})"
