"""ON/OFF microburst traffic.

The microburst-detection experiments need flows that are quiet most of
the time and then slam the buffer for a short burst — the behaviour
Snappy (Chen et al. 2018) and the paper's §2 example target.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRng
from repro.workloads.base import FlowSpec, SendFn, TrafficGenerator


class OnOffBurst(TrafficGenerator):
    """Bursts of back-to-back packets separated by silent gaps.

    During an ON period the generator emits ``burst_packets`` packets
    spaced ``intra_gap_ps`` apart (near line rate); it then sleeps for
    an exponentially distributed OFF period with mean ``mean_off_ps``.
    """

    def __init__(
        self,
        sim: Simulator,
        send: SendFn,
        flow: FlowSpec,
        burst_packets: int = 32,
        intra_gap_ps: int = 70_000,  # ≈ 64B @ 10 Gb/s back-to-back
        mean_off_ps: int = 200_000_000,  # 200 µs quiet
        payload_len: int = 1400,
        seed: int = 1,
        name: str = "burst",
        max_bursts: Optional[int] = None,
    ) -> None:
        super().__init__(sim, send, name)
        if burst_packets <= 0:
            raise ValueError(f"burst size must be positive, got {burst_packets}")
        if mean_off_ps <= 0:
            raise ValueError(f"mean off period must be positive, got {mean_off_ps}")
        self.flow = flow
        self.burst_packets = burst_packets
        self.intra_gap_ps = intra_gap_ps
        self.mean_off_ps = mean_off_ps
        self.payload_len = payload_len
        self.max_bursts = max_bursts
        self.bursts_sent = 0
        self.burst_start_times: list = []
        self._in_burst_remaining = 0
        self._rng = SeededRng(seed, f"burst/{name}")

    def _tick(self) -> None:
        if self._in_burst_remaining == 0:
            if self.max_bursts is not None and self.bursts_sent >= self.max_bursts:
                self.stop()
                return
            self.bursts_sent += 1
            self.burst_start_times.append(self.sim.now_ps)
            self._in_burst_remaining = self.burst_packets
        self._emit(self.flow.build_packet(self.payload_len, ts_ps=self.sim.now_ps))
        self._in_burst_remaining -= 1
        if self._in_burst_remaining > 0:
            self._schedule_next(self.intra_gap_ps)
        else:
            off = int(self._rng.expovariate(1.0 / self.mean_off_ps))
            self._schedule_next(max(self.intra_gap_ps, off))
