"""Incast fan-in waves.

Many senders transmitting simultaneously to one receiver — the workload
that produces buffer overflow events and motivates NDP-style trimming
and AQM.  A wave schedules a synchronized burst from each sender.
"""

from __future__ import annotations

from typing import List

from repro.sim.kernel import Simulator
from repro.workloads.base import FlowSpec, SendFn


class IncastWave:
    """Synchronized bursts from ``senders`` flows into one sink.

    Each wave, every sender emits ``packets_per_sender`` back-to-back
    packets starting at the same instant.  ``sends`` is one callable per
    sender (e.g. each host's ``send``).
    """

    def __init__(
        self,
        sim: Simulator,
        sends: List[SendFn],
        flows: List[FlowSpec],
        packets_per_sender: int = 16,
        payload_len: int = 1400,
        intra_gap_ps: int = 1_200_000,  # ≈ 1500B @ 10 Gb/s
        name: str = "incast",
    ) -> None:
        if len(sends) != len(flows):
            raise ValueError("need one send function per flow")
        if not sends:
            raise ValueError("need at least one sender")
        self.sim = sim
        self.sends = sends
        self.flows = flows
        self.packets_per_sender = packets_per_sender
        self.payload_len = payload_len
        self.intra_gap_ps = intra_gap_ps
        self.name = name
        self.waves_fired = 0
        self.packets_sent = 0

    def fire_at(self, time_ps: int) -> None:
        """Schedule one synchronized wave."""
        self.sim.call_at(time_ps, self._fire)

    def _fire(self) -> None:
        self.waves_fired += 1
        for send, flow in zip(self.sends, self.flows):
            for i in range(self.packets_per_sender):
                self.sim.call_after(
                    i * self.intra_gap_ps, self._emit_one, send, flow
                )

    def _emit_one(self, send: SendFn, flow: FlowSpec) -> None:
        self.packets_sent += 1
        send(flow.build_packet(self.payload_len, ts_ps=self.sim.now_ps))
