"""Workload generator base machinery.

A generator schedules packet transmissions on the simulator and hands
each built packet to a caller-supplied ``send`` callable — typically
``host.send`` or a closure around ``switch.receive`` for single-switch
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.packet.builder import make_udp_packet
from repro.packet.packet import Packet
from repro.sim.kernel import ScheduledEvent, Simulator

SendFn = Callable[[Packet], object]


@dataclass(frozen=True)
class FlowSpec:
    """Identity of one synthetic flow."""

    src_ip: int
    dst_ip: int
    sport: int = 10_000
    dport: int = 2000

    def build_packet(self, payload_len: int, ts_ps: int = 0) -> Packet:
        """A UDP packet belonging to this flow."""
        return make_udp_packet(
            self.src_ip,
            self.dst_ip,
            sport=self.sport,
            dport=self.dport,
            payload_len=payload_len,
            ts_ps=ts_ps,
        )


class TrafficGenerator:
    """Base class: start/stop lifecycle plus send accounting."""

    def __init__(self, sim: Simulator, send: SendFn, name: str = "gen") -> None:
        self.sim = sim
        self.send = send
        self.name = name
        self.packets_sent = 0
        self.bytes_sent = 0
        self._stopped = True
        self._pending: Optional[ScheduledEvent] = None

    def start(self, at_ps: Optional[int] = None) -> None:
        """Begin generating (immediately or at an absolute time)."""
        self._stopped = False
        when = self.sim.now_ps if at_ps is None else at_ps
        self._pending = self.sim.call_at(when, self._tick)

    def stop(self) -> None:
        """Stop generating; safe to call repeatedly."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _emit(self, pkt: Packet) -> None:
        self.packets_sent += 1
        self.bytes_sent += pkt.total_len
        self.send(pkt)

    def _tick(self) -> None:
        """Generate one step and reschedule; subclasses implement."""
        raise NotImplementedError

    def _schedule_next(self, delay_ps: int) -> None:
        if self._stopped:
            return
        self._pending = self.sim.call_after(max(1, delay_ps), self._tick)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, sent={self.packets_sent})"
