"""Synthetic workload generators.

The paper's evaluation workloads (testbed/student traffic) are not
available, so the benches drive the switches with synthetic equivalents
that exercise the same code paths: constant-bit-rate and Poisson
background traffic, ON/OFF microbursts, Zipf-popularity heavy-hitter
flow mixes, and incast fan-in.  All generators are seeded and
deterministic.
"""

from repro.workloads.base import FlowSpec, TrafficGenerator
from repro.workloads.cbr import ConstantBitRate
from repro.workloads.poisson import PoissonTraffic
from repro.workloads.bursts import OnOffBurst
from repro.workloads.zipf import ZipfFlowMix
from repro.workloads.incast import IncastWave
from repro.workloads.selfsimilar import ParetoOnOffSource, SelfSimilarTraffic
from repro.workloads.sink import LatencySink, PacketSink

__all__ = [
    "FlowSpec",
    "TrafficGenerator",
    "ConstantBitRate",
    "PoissonTraffic",
    "OnOffBurst",
    "ZipfFlowMix",
    "IncastWave",
    "SelfSimilarTraffic",
    "ParetoOnOffSource",
    "PacketSink",
    "LatencySink",
]
