"""Poisson-arrival traffic."""

from __future__ import annotations

from typing import Optional

from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRng
from repro.sim.units import SECONDS
from repro.workloads.base import FlowSpec, SendFn, TrafficGenerator


class PoissonTraffic(TrafficGenerator):
    """Exponentially spaced packets of one flow at ``mean_pps``."""

    def __init__(
        self,
        sim: Simulator,
        send: SendFn,
        flow: FlowSpec,
        mean_pps: float,
        payload_len: int = 400,
        seed: int = 1,
        name: str = "poisson",
        max_packets: Optional[int] = None,
    ) -> None:
        super().__init__(sim, send, name)
        if mean_pps <= 0:
            raise ValueError(f"mean rate must be positive, got {mean_pps}")
        self.flow = flow
        self.mean_pps = mean_pps
        self.payload_len = payload_len
        self.max_packets = max_packets
        self._rng = SeededRng(seed, f"poisson/{name}")

    def _gap_ps(self) -> int:
        return max(1, int(self._rng.expovariate(self.mean_pps) * SECONDS))

    def _tick(self) -> None:
        if self.max_packets is not None and self.packets_sent >= self.max_packets:
            self.stop()
            return
        self._emit(self.flow.build_packet(self.payload_len, ts_ps=self.sim.now_ps))
        self._schedule_next(self._gap_ps())
