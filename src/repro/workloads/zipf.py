"""Zipf-popularity flow mixes (heavy hitters).

The monitoring experiments (count-min sketch, heavy-hitter detection)
use a flow population whose packet counts follow a Zipf distribution —
a few elephant flows and a long tail of mice, the standard model of
datacenter and WAN traffic skew.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRng
from repro.sim.units import SECONDS
from repro.workloads.base import FlowSpec, SendFn, TrafficGenerator


class ZipfFlowMix(TrafficGenerator):
    """Poisson arrivals whose flow identity is Zipf-distributed.

    Flow ``i`` has popularity ∝ 1/(i+1)^skew.  The generator tracks the
    true per-flow packet counts so experiments can compare sketch
    estimates against ground truth.
    """

    def __init__(
        self,
        sim: Simulator,
        send: SendFn,
        flow_count: int = 1000,
        skew: float = 1.1,
        mean_pps: float = 100_000.0,
        payload_len: int = 200,
        seed: int = 1,
        name: str = "zipf",
        max_packets: Optional[int] = None,
        dst_ip: int = 0x0C00_0001,
    ) -> None:
        super().__init__(sim, send, name)
        if flow_count <= 0:
            raise ValueError(f"flow count must be positive, got {flow_count}")
        if mean_pps <= 0:
            raise ValueError(f"mean rate must be positive, got {mean_pps}")
        self.flow_count = flow_count
        self.skew = skew
        self.mean_pps = mean_pps
        self.payload_len = payload_len
        self.max_packets = max_packets
        self.flows: List[FlowSpec] = [
            FlowSpec(
                src_ip=0x0B00_0000 + i,
                dst_ip=dst_ip,
                sport=20_000 + (i % 40_000),
                dport=443,
            )
            for i in range(flow_count)
        ]
        self.true_counts: Dict[int, int] = {}
        self._rng = SeededRng(seed, f"zipf/{name}")

    def _tick(self) -> None:
        if self.max_packets is not None and self.packets_sent >= self.max_packets:
            self.stop()
            return
        flow_index = self._rng.zipf_index(self.flow_count, self.skew)
        self.true_counts[flow_index] = self.true_counts.get(flow_index, 0) + 1
        flow = self.flows[flow_index]
        self._emit(flow.build_packet(self.payload_len, ts_ps=self.sim.now_ps))
        gap = max(1, int(self._rng.expovariate(self.mean_pps) * SECONDS))
        self._schedule_next(gap)

    def top_flows(self, k: int) -> List[int]:
        """Indices of the ``k`` truly most popular flows so far."""
        ranked = sorted(self.true_counts.items(), key=lambda kv: -kv[1])
        return [index for index, _count in ranked[:k]]
