"""A dependency-free fallback linter mirroring the repo's ruff config.

CI runs ``ruff check`` (see ``[tool.ruff]`` in pyproject.toml); this
tool approximates the same rule families with only the standard
library, so contributors without ruff installed can still catch the
violations the CI lint job would flag:

* E401  multiple imports on one line
* E711/E712  comparison to None/True/False with ``==``/``!=``
* E722  bare ``except:``
* E9    syntax errors (via ``compile``)
* F401  unused imports (module scope; ``__init__.py`` re-exports and
  ``__all__``-listed names are exempt, matching the per-file ignores)
* F811  redefinition of an imported name by another import
* F841  local variable assigned but never used (simple, single
  assignment targets only; ``_``-prefixed names are exempt)

Usage::

    python tools/minilint.py src tests tools benchmarks examples
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

Violation = Tuple[Path, int, str, str]


def iter_py_files(roots: List[str]) -> Iterator[Path]:
    for root in roots:
        path = Path(root)
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))


def _names_used(tree: ast.AST) -> set:
    used = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            inner = node
            while isinstance(inner, ast.Attribute):
                inner = inner.value
            if isinstance(inner, ast.Name):
                used.add(inner.id)
    return used


def _dunder_all(tree: ast.Module) -> set:
    exported = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        for element in node.value.elts:
                            if isinstance(element, ast.Constant):
                                exported.add(element.value)
    return exported


def check_file(path: Path) -> List[Violation]:
    violations: List[Violation] = []
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, "E9", f"syntax error: {exc.msg}")]

    is_init = path.name == "__init__.py"
    used = _names_used(tree)
    exported = _dunder_all(tree)
    # String-typed references ("docstring-level" exports, __getattr__
    # tables) are common in tools; count docstring mentions as uses only
    # for re-export modules.
    imported: dict = {}

    # Import accounting is module-top-level only: function-local imports
    # have their own scope, and tracking them naively yields spurious
    # F401/F811 reports real pyflakes would not emit.
    for node in tree.body:
        if isinstance(node, ast.Import):
            if len(node.names) > 1:
                violations.append(
                    (path, node.lineno, "E401", "multiple imports on one line")
                )
            for alias in node.names:
                binding = alias.asname or alias.name.split(".")[0]
                if binding in imported:
                    violations.append(
                        (path, node.lineno, "F811", f"redefinition of {binding!r}")
                    )
                imported[binding] = node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                binding = alias.asname or alias.name
                if binding in imported:
                    violations.append(
                        (path, node.lineno, "F811", f"redefinition of {binding!r}")
                    )
                imported[binding] = node.lineno

    for node in ast.walk(tree):
        if isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if isinstance(comparator, ast.Constant):
                    if comparator.value is None:
                        violations.append(
                            (path, node.lineno, "E711", "comparison to None with ==/!=")
                        )
                    elif comparator.value is True or comparator.value is False:
                        violations.append(
                            (path, node.lineno, "E712", "comparison to True/False")
                        )
        elif isinstance(node, ast.ExceptHandler):
            if node.type is None:
                violations.append((path, node.lineno, "E722", "bare except"))

    for binding, lineno in sorted(imported.items(), key=lambda item: item[1]):
        if binding in used or binding in exported or binding == "_":
            continue
        if is_init:
            continue  # __init__ re-exports, matching per-file-ignores
        violations.append((path, lineno, "F401", f"{binding!r} imported but unused"))

    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        scope_nodes = list(_walk_scope(node))
        # Reads come from the whole subtree: nested closures legally
        # read enclosing locals, so only the assignment side is scoped.
        reads = {
            inner.id
            for inner in ast.walk(node)
            if isinstance(inner, ast.Name) and isinstance(inner.ctx, ast.Load)
        }
        # nonlocal/global assignments mutate an enclosing scope: always
        # "used" regardless of local reads.
        for stmt in scope_nodes:
            if isinstance(stmt, (ast.Nonlocal, ast.Global)):
                reads.update(stmt.names)
        for stmt in scope_nodes:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and not target.id.startswith("_")
                    and target.id not in reads
                ):
                    violations.append(
                        (
                            path,
                            stmt.lineno,
                            "F841",
                            f"local {target.id!r} assigned but never used",
                        )
                    )
    return violations


def _walk_scope(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes."""
    todo = list(ast.iter_child_nodes(func))
    while todo:
        node = todo.pop()
        yield node
        nested_scope = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        if isinstance(node, nested_scope):
            continue
        todo.extend(ast.iter_child_nodes(node))


def main(argv: List[str]) -> int:
    roots = argv or ["src", "tests", "tools", "benchmarks"]
    all_violations: List[Violation] = []
    files = 0
    for path in iter_py_files(roots):
        files += 1
        all_violations.extend(check_file(path))
    for path, lineno, code, message in all_violations:
        print(f"{path}:{lineno}: {code} {message}")
    print(f"minilint: {files} files, {len(all_violations)} violation(s)")
    return 1 if all_violations else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
