"""cProfile the packet hot path and emit a sorted-cumtime artifact.

Runs one bench round (default: the uncached ``switch`` round — the
interpreted/compiled pipeline walk under load, see
``repro.experiments.bench``) under :mod:`cProfile` and writes the
profile two ways:

* a text report of the top functions sorted by cumulative time (the
  artifact CI uploads; reviewers read this to see where wall time
  actually goes before/after a hot-path change), and
* optionally the raw ``pstats`` dump for interactive digging
  (``python -m pstats profile.pstats``).

Usage::

    PYTHONPATH=src python tools/profile_hotpath.py
    PYTHONPATH=src python tools/profile_hotpath.py --round switch_cached \
        --out profile_cached.txt --pstats profile_cached.pstats
    REPRO_PIPELINE_COMPILE=0 PYTHONPATH=src python tools/profile_hotpath.py

Environment toggles apply as everywhere else: set
``REPRO_PIPELINE_COMPILE=0`` / ``REPRO_FLOW_CACHE=0`` to profile the
interpreted or uncached variants of the same round.
"""

from __future__ import annotations

import argparse
import cProfile
import gc
import io
import pstats
import sys


def profile_round(round_name: str, repeats: int) -> cProfile.Profile:
    """Profile ``repeats`` runs of one bench round; returns the profiler."""
    from repro.experiments.bench import BENCH_ROUNDS

    try:
        round_fn = BENCH_ROUNDS[round_name]
    except KeyError:
        choices = ", ".join(sorted(BENCH_ROUNDS))
        raise SystemExit(f"unknown round {round_name!r}; pick from: {choices}")

    round_fn()  # warm up imports, header layouts, compiled walks
    profiler = cProfile.Profile()
    gc.disable()
    try:
        profiler.enable()
        for _ in range(repeats):
            round_fn()
        profiler.disable()
    finally:
        gc.enable()
    return profiler


def report(profiler: cProfile.Profile, round_name: str, top: int) -> str:
    """The sorted-cumtime text report for the profile."""
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(pstats.SortKey.CUMULATIVE)
    buffer.write(f"hot path profile: bench round {round_name!r}\n")
    buffer.write(f"(sorted by cumulative time, top {top} functions)\n\n")
    stats.print_stats(top)
    return buffer.getvalue()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--round",
        default="switch",
        help="bench round to profile (see repro.experiments.bench.BENCH_ROUNDS)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="profiled runs of the round after one unprofiled warm-up",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=40,
        metavar="N",
        help="number of functions in the text report",
    )
    parser.add_argument(
        "--out",
        default="profile_hotpath.txt",
        metavar="PATH",
        help="text report path ('-' = stdout only)",
    )
    parser.add_argument(
        "--pstats",
        default="",
        metavar="PATH",
        help="also dump the raw pstats file for interactive analysis",
    )
    args = parser.parse_args(argv)

    profiler = profile_round(args.round, args.repeats)
    text = report(profiler, args.round, args.top)
    sys.stdout.write(text)
    if args.out and args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    if args.pstats:
        profiler.dump_stats(args.pstats)
        print(f"wrote {args.pstats}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
