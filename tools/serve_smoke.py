"""CI smoke test for the scenario job service (``repro serve``).

Boots the service on a unix socket, submits three registered scenarios
through the wire protocol — a phased experiment, a single-shot
experiment, and the fork-amortized chaos grid — and gates on:

* every job completing in state ``done`` (no violations, no crashes),
* telemetry well-formedness: monotone ``now_ps``, ``progress`` ending
  at 1.0, non-negative event counts, the declared window count,
* the forked grid's per-cell fingerprints being **identical** to
  standalone ``run_cell`` runs of the same ten (plan, app, seed) cells
  — the acceptance check that ``Simulator.fork`` changes cost, never
  behavior.

Run from the repository root::

    python tools/serve_smoke.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.serve.client import ServiceClient  # noqa: E402

#: The three submissions (one forked chaos variant, per the CI contract).
SUBMISSIONS = (
    ("microburst/event-driven", {"duration_ps": 6_000_000_000}),
    ("table2/rows", {}),
    ("chaos/forked-grid", {}),
)

WINDOWS = 4


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_telemetry(name: str, windows, phased: bool) -> None:
    if not windows:
        fail(f"{name}: no telemetry received")
    for snapshot in windows:
        for key in ("published", "handled", "dropped"):
            if int(snapshot[key]) < 0:
                fail(f"{name}: negative counter {key} in {snapshot}")
    if phased:
        if len(windows) != WINDOWS:
            fail(f"{name}: expected {WINDOWS} windows, got {len(windows)}")
        times = [snapshot["now_ps"] for snapshot in windows]
        if times != sorted(times):
            fail(f"{name}: non-monotone now_ps {times}")
        progress = [snapshot["progress"] for snapshot in windows]
        if any(not 0.0 <= p <= 1.0 for p in progress):
            fail(f"{name}: progress outside [0, 1]: {progress}")
        if progress[-1] != 1.0:
            fail(f"{name}: final progress {progress[-1]} != 1.0")
    print(f"ok: {name} telemetry well-formed ({len(windows)} window(s))")


def main() -> int:
    socket_path = os.path.join(
        tempfile.mkdtemp(prefix="repro-serve-"), "serve.sock"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--socket",
            socket_path,
            "--workers",
            "2",
            "--windows",
            str(WINDOWS),
        ],
        env=env,
        cwd=ROOT,
    )
    try:
        deadline = time.time() + 120
        while not os.path.exists(socket_path):
            if proc.poll() is not None:
                fail(f"service exited early (code {proc.returncode})")
            if time.time() > deadline:
                fail("service socket never appeared")
            time.sleep(0.2)

        with ServiceClient(socket_path, timeout=1800) as client:
            hello = client.expect("hello")
            print(
                f"service up: protocol {hello['protocol']}, "
                f"{hello['scenarios']} scenarios, {hello['workers']} workers"
            )
            jobs = {}
            for name, params in SUBMISSIONS:
                reply = client.expect("submit", scenario=name, params=params)
                jobs[reply["job"]] = name
                print(f"submitted {name} as {reply['job']}")
            results = {}
            for job_id, name in jobs.items():
                state = client.wait(job_id)
                if state != "done":
                    status = client.expect("status", job=job_id)
                    fail(f"{name} finished in state {state}: {status['job']}")
                results[name] = client.expect("result", job=job_id)["result"]
                phased = name == "microburst/event-driven"
                check_telemetry(name, client.telemetry(job_id), phased)
                print(f"ok: {name} done")
            client.expect("shutdown")
        proc.wait(timeout=60)

        grid = results["chaos/forked-grid"].get("value")
        if not isinstance(grid, dict) or "fingerprints" not in grid:
            fail("forked grid returned no structured fingerprints")
        if grid["violations"] != 0:
            fail(f"forked grid reported violations: {grid['summary']}")
        forked = grid["fingerprints"]
        if len(forked) != 10:
            fail(f"expected the 10-variant grid, got {sorted(forked)}")

        # The acceptance check: the same ten cells run standalone, from
        # scratch, must produce identical fingerprints.
        from repro.faults.chaos import run_cell

        for cell, fingerprint in sorted(forked.items()):
            plan, app, seed = cell.split("/")
            record = run_cell(plan, app, int(seed))
            if record["fingerprint"] != fingerprint:
                fail(
                    f"fingerprint mismatch for {cell}: forked={fingerprint} "
                    f"standalone={record['fingerprint']}"
                )
            print(f"ok: {cell} fingerprint {fingerprint} matches standalone")

        print("\nserve smoke: all checks passed")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
