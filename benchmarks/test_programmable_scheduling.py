"""§3 — programmable packet scheduling: PIFO + dequeue events.

Weighted fair queueing (STFQ) built from a PIFO and an event-driven
virtual clock: the dequeue-event handler advances virtual time as the
buffer releases packets.  FIFO is the fixed-function baseline.
"""

from _util import report

from repro.experiments.scheduling_exp import run_scheduling


def test_wfq_enforces_weights(once):
    """Delivered service tracks 3:1 weights under WFQ, 1:1 under FIFO."""
    wfq = once(run_scheduling, "wfq")
    fifo = run_scheduling("fifo")
    report(
        "programmable_scheduling",
        "§3: PIFO + dequeue-event WFQ vs FIFO (weights 3:1)",
        [fifo.summary_row(), wfq.summary_row()],
    )
    # FIFO shares by arrivals: ~1:1.
    assert 0.8 < fifo.measured_ratio < 1.25
    # WFQ shares by weight: ~3:1.
    assert 2.5 < wfq.measured_ratio < 3.5
    # Both served the same bottleneck (same total within 10%).
    fifo_total = fifo.heavy_packets + fifo.light_packets
    wfq_total = wfq.heavy_packets + wfq.light_packets
    assert abs(fifo_total - wfq_total) < 0.1 * fifo_total
