"""§3 — INT telemetry volume reduction with event-driven aggregation."""

from _util import report

from repro.experiments.int_exp import run_int


def test_aggregation_reduces_report_volume(once):
    """Orders of magnitude fewer reports, no congestion episode missed."""
    aggregate = once(run_int, "aggregate")
    all_windows = run_int("all-windows")
    postcards = run_int("postcards")
    report(
        "int_volume",
        "§3: telemetry volume — aggregation + filtering vs postcards",
        [
            postcards.summary_row(),
            all_windows.summary_row(),
            aggregate.summary_row(),
        ],
    )
    # Postcards: one report per packet.
    assert postcards.reports_received == postcards.data_packets
    # Windowed aggregation alone: >100x reduction.
    assert all_windows.reduction_factor > 100
    # Anomaly filtering: a further large cut...
    assert aggregate.reports_received < all_windows.reports_received
    assert aggregate.reduction_factor > 500
    # ...while still reporting every anomalous window.
    assert aggregate.anomalous_windows > 0
    assert aggregate.windows_reported == aggregate.anomalous_windows
