"""§4 — state sharing across independent pipelines.

"Things get more complicated when a device has multiple independent
pipelines (e.g. Tofino has four independent pipelines)."  Replicated
registers with periodic delta exchange: the sync period trades
cross-pipeline read accuracy against interconnect bandwidth.
"""

from _util import report

from repro.state.replication import run_multipipe


def test_sync_period_trades_accuracy_for_bandwidth(once):
    """Shorter sync periods → fresher replicas, more entries exchanged."""
    periods = [8, 64, 512, None]
    results = once(lambda: [run_multipipe(sync_period_cycles=p) for p in periods])
    report(
        "multipipe_state",
        "§4: cross-pipeline state sync (4 pipelines, delta exchange)",
        [result.summary_row() for result in results],
    )
    errors = [result.mean_read_error for result in results]
    costs = [result.sync_entries_per_cycle for result in results]
    # Error grows monotonically as syncs get rarer; cost shrinks.
    assert errors == sorted(errors)
    assert costs == sorted(costs, reverse=True)
    # Never syncing is catastrophic versus a tight sync.
    assert errors[-1] > 20 * errors[0]
    assert costs[-1] == 0.0


def test_more_pipelines_more_staleness(once):
    """Each extra pipeline hides more concurrent deltas from a reader."""
    two = run_multipipe(pipelines=2, sync_period_cycles=128)
    eight = once(run_multipipe, 8, 128)
    assert eight.mean_read_error > two.mean_read_error
