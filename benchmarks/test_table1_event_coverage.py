"""Table 1 — the data-plane event catalog.

Regenerates (a) the per-architecture support matrix from the
architecture description files and (b) a live demonstration in which a
program with a handler for every event kind sees each one fire.
"""

from _util import report

from repro.arch.events import EventType
from repro.experiments.events_exp import run_catalog_demo, support_matrix


def test_event_support_matrix(once):
    """Which Table 1 events each stock architecture exposes."""
    rows = once(support_matrix)
    lines = []
    header = f"{'event':<26}" + "".join(
        f"{row['architecture']:>22}" for row in rows
    )
    lines.append(header)
    for kind in EventType:
        cells = "".join(f"{row[kind.value]:>22}" for row in rows)
        lines.append(f"{kind.value:<26}{cells}")
    report("table1_matrix", "Table 1: event support by architecture", lines)

    by_name = {row["architecture"]: row for row in rows}
    # Baseline PSA exposes only packet events.
    baseline = by_name["baseline-psa"]
    assert baseline[EventType.ENQUEUE.value] == "—"
    assert baseline[EventType.TIMER.value] == "—"
    assert baseline[EventType.INGRESS_PACKET.value] == "native"
    # The logical event-driven architecture exposes everything.
    logical = by_name["logical-event-driven"]
    assert all(logical[kind.value] == "native" for kind in EventType)
    # The SUME Event Switch natively supports the paper's §5 list.
    sume = by_name["sume-event-switch"]
    for kind in (
        EventType.ENQUEUE,
        EventType.DEQUEUE,
        EventType.BUFFER_OVERFLOW,
        EventType.TIMER,
        EventType.LINK_STATUS,
    ):
        assert sume[kind.value] == "native"
    # Tofino-like devices only emulate timers and dequeues (paper §6).
    tofino = by_name["tofino-like"]
    assert tofino[EventType.TIMER.value] == "emulated"
    assert tofino[EventType.DEQUEUE.value] == "emulated"
    assert tofino[EventType.LINK_STATUS.value] == "—"


def test_event_catalog_live_demo(once):
    """Every Table 1 event kind fires and is handled on the full switch."""
    result = once(run_catalog_demo)
    report(
        "table1_live",
        "Table 1: live event demonstration (full event switch)",
        result.summary_rows(),
    )
    assert result.all_fired()
    # Spot-check the interesting non-packet events.
    assert result.seen[EventType.ENQUEUE] > 0
    assert result.seen[EventType.DEQUEUE] > 0
    assert result.seen[EventType.BUFFER_OVERFLOW] > 0
    assert result.seen[EventType.BUFFER_UNDERFLOW] > 0
    assert result.seen[EventType.TIMER] > 0
    assert result.seen[EventType.LINK_STATUS] == 2  # down + up
    assert result.seen[EventType.CONTROL_PLANE] == 1
    assert result.seen[EventType.USER] == 1
    assert result.seen[EventType.RECIRCULATED_PACKET] == 1
    assert result.seen[EventType.GENERATED_PACKET] == 1
