"""Figure 4 — the SUME Event Switch and its Event Merger.

Sweeps offered load through the single physical P4 pipeline and reports
how event metadata reached it: piggybacked on ingress packets vs.
carried by injected empty packets, with delivery waits.  The ablation
disables empty-packet injection and shows events waiting (and
stranding) without it.
"""

from _util import report

from repro.experiments.merger_exp import run_merger_load, sweep_offered_load


def test_merger_delivers_all_events_across_loads(once):
    """No event loss at any offered load; waits stay in nanoseconds."""
    results = once(sweep_offered_load, [0.1, 0.3, 0.5, 0.7, 0.9])
    report(
        "fig4_merger_sweep",
        "Figure 4: Event Merger across offered loads",
        [result.summary_row() for result in results],
    )
    for result in results:
        assert result.events_dropped == 0
        assert result.stranded_at_end <= 3  # at most the final in-flight events
        assert result.mean_wait_ns < 100.0
        # Event conservation: everything offered was delivered or is in
        # the final in-flight window.
        delivered = result.piggybacked + result.injected_events
        assert delivered + result.stranded_at_end == result.events_offered


def test_metadata_slot_width_ablation(once):
    """More metadata slots per event kind drain event bursts faster.

    The hardware trade: each extra slot widens the pipeline metadata
    bus (the Table 3 BRAM/FF cost), but lets one carrier haul more
    queued events of the same kind.
    """
    from repro.arch.events import Event, EventType
    from repro.arch.merger import EventMerger
    from repro.sim.kernel import Simulator

    def drain_burst(slots: int) -> int:
        sim = Simulator()
        merger = EventMerger(
            sim, clock_ps=5_000, slots_per_kind=slots, queue_capacity=64
        )
        carriers = []
        merger.set_inject_fn(lambda events: carriers.append(len(events)))
        for i in range(16):
            merger.offer(Event(EventType.ENQUEUE, time_ps=0))
        sim.run()
        return len(carriers)

    narrow = once(drain_burst, 1)
    wide = drain_burst(4)
    report(
        "fig4_slot_ablation",
        "Figure 4 ablation: metadata slots per event kind (16-event burst)",
        [
            f"slots=1: {narrow} injected carriers",
            f"slots=4: {wide} injected carriers",
        ],
    )
    assert narrow == 16  # one event per carrier
    assert wide == 4  # four per carrier


def test_injection_ablation(once):
    """Without empty-packet injection events wait much longer."""
    with_injection = run_merger_load(0.9, injection_enabled=True)
    without = once(run_merger_load, 0.9, False)
    report(
        "fig4_injection_ablation",
        "Figure 4 ablation: empty-packet injection disabled",
        [with_injection.summary_row(), without.summary_row()],
    )
    # Same event population, radically different delivery latency.
    assert without.mean_wait_ns > 5 * with_injection.mean_wait_ns
    # Without injection every delivered event had to piggyback.
    assert without.piggyback_fraction == 1.0
    assert with_injection.piggyback_fraction < 1.0
