"""Extension table — per-application cost on the event switch.

Table 3 prices the event *infrastructure*; this bench prices each §3
application's program (externs + handler logic) on top of it, from the
same structural cost model.
"""

from _util import report

from repro.resources.programs import application_cost_rows


def test_application_costs_are_small(once):
    """Every §3 program fits in a small slice of the Virtex-7."""
    rows = once(application_cost_rows)
    lines = [f"{'application':<30}{'state bits':>12}{'LUT %':>8}{'BRAM %':>8}"]
    for row in rows:
        lines.append(
            f"{row['application']:<30}{row['state_bits']:>12}"
            f"{row['luts_percent']:>8.3f}{row['bram_percent']:>8.3f}"
        )
    report(
        "app_resources",
        "Extension: per-application cost on the event switch",
        lines,
    )
    by_name = {row["application"]: row for row in rows}
    # Every application fits comfortably (far under the device).
    for row in rows:
        assert row["luts_percent"] < 2.0
        assert row["bram_percent"] < 5.0
    # The §2 state claim shows up here too: Snappy needs ≥4x the bits.
    event_driven = by_name["microburst (event-driven)"]
    snappy = by_name["microburst (Snappy baseline)"]
    assert snappy["state_bits"] >= 4 * event_driven["state_bits"]
    # The PIFO-based scheduler is the logic-heaviest design (priority
    # insertion hardware scales with PIFO capacity), as the scheduling
    # literature predicts.
    wfq = by_name["WFQ scheduler"]
    assert wfq["luts_percent"] == max(row["luts_percent"] for row in rows)
