"""§3 — multi-bit ECN from buffer events."""

from _util import report

from repro.experiments.ecn_exp import run_ecn


def test_multibit_signal_beats_single_bit(once):
    """Six DSCP bits decode the bottleneck occupancy ~an order of
    magnitude more accurately than one ECN bit."""
    multi = once(run_ecn, "multi-bit")
    single = run_ecn("single-bit")
    report(
        "ecn_signal",
        "§3: congestion-signal quality — multi-bit vs single-bit ECN",
        [single.summary_row(), multi.summary_row()],
    )
    assert multi.samples == single.samples
    assert multi.mean_abs_error_bytes < single.mean_abs_error_bytes / 10
    # The queue actually exercised a wide range (the signal mattered).
    assert multi.max_true_occupancy > 30_000
