"""Table 3 — the FPGA cost of adding event support.

Regenerates the paper's resource table from the structural cost model:
the event logic (Event Merger, timer unit, packet generator, link
monitor, queue event tap, metadata bus widening) as a percentage of a
Virtex-7 XC7V690T.  Paper: +0.5% LUTs, +0.4% FFs, +2.0% BRAM.
"""

from _util import report

from repro.resources import table3_rows
from repro.resources.report import (
    event_logic_build,
    event_switch_build,
    reference_switch_build,
    utilization_report,
)


def test_table3_resource_increase(once):
    """Event support stays within the paper's ≤2% envelope."""
    rows = once(table3_rows)
    lines = [f"{'FPGA Resource':<16}{'paper %':>10}{'model %':>10}"]
    for row in rows:
        lines.append(
            f"{row['resource']:<16}{row['paper_percent_increase']:>10.1f}"
            f"{row['measured_percent_increase']:>10.2f}"
        )
    util = utilization_report()
    lines.append("")
    lines.append(
        "context: reference switch uses "
        f"{util['reference_switch']['luts']:.1f}% LUTs / "
        f"{util['reference_switch']['bram']:.1f}% BRAM; "
        "event switch "
        f"{util['event_switch']['luts']:.1f}% / "
        f"{util['event_switch']['bram']:.1f}%"
    )
    report("table3_resources", "Table 3: cost of event support (Virtex-7)", lines)

    by_resource = {row["resource"]: row for row in rows}
    # The paper's claim: at most 2% additional resources, with BRAM the
    # dominant term and logic well under 1%.
    assert by_resource["Lookup Tables"]["measured_percent_increase"] < 1.0
    assert by_resource["Flip Flops"]["measured_percent_increase"] < 1.0
    assert by_resource["Block RAM"]["measured_percent_increase"] <= 2.5
    assert (
        by_resource["Block RAM"]["measured_percent_increase"]
        > by_resource["Lookup Tables"]["measured_percent_increase"]
    )
    # Within 0.5 percentage points of the published row everywhere.
    for row in rows:
        assert abs(
            row["measured_percent_increase"] - row["paper_percent_increase"]
        ) <= 0.5


def test_event_logic_is_small_versus_reference(once):
    """The event blocks are a small fraction of the reference switch."""
    def build_both():
        return reference_switch_build().total(), event_logic_build().total()

    reference, events = once(build_both)
    assert events.luts < 0.1 * reference.luts
    assert events.flip_flops < 0.1 * reference.flip_flops
    assert events.bram_36kb < 0.2 * reference.bram_36kb
    # And the composite build is exactly reference + events.
    combined = event_switch_build().total()
    assert abs(combined.luts - (reference.luts + events.luts)) < 1e-6
