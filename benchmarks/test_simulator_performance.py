"""Simulator micro-benchmarks.

Not a paper result — these time the reproduction itself (kernel event
throughput and full-switch packet throughput) so regressions in the
substrate are visible in CI like any other number.
"""

from repro.apps.microburst import MicroburstDetector
from repro.experiments.factories import make_sume_switch
from repro.net.topology import build_linear
from repro.packet.builder import make_udp_packet
from repro.sim.kernel import Simulator

H0_IP = 0x0A00_0001
H1_IP = 0x0A00_0002


def test_kernel_event_throughput(benchmark):
    """Dispatch rate of bare kernel callbacks."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 20_000:
                sim.call_after(1, tick)

        sim.call_at(0, tick)
        sim.run()
        return count[0]

    executed = benchmark(run)
    assert executed == 20_000


def test_switch_packet_throughput(benchmark):
    """End-to-end packets through a SUME switch with a real program."""

    def run():
        network = build_linear(make_sume_switch(), switch_count=1)
        program = MicroburstDetector(num_regs=256, flow_thresh_bytes=1 << 30)
        program.install_routes({H1_IP: 1, H0_IP: 0})
        network.switches["s0"].load_program(program)
        received = []
        network.hosts["h1"].add_sink(received.append)
        h0 = network.hosts["h0"]
        for i in range(500):
            network.sim.call_at(
                1_000 + i * 200_000,
                h0.send,
                make_udp_packet(H0_IP, H1_IP, payload_len=200),
            )
        network.run()
        return len(received)

    delivered = benchmark(run)
    assert delivered == 500
