"""§3 — NetChain-style coordination reacting to link failures."""

from _util import report

from repro.experiments.netchain_exp import run_netchain
from repro.sim.units import MILLISECONDS


def test_event_driven_chain_repair(once):
    """LINK_STATUS splices the chain in µs; the control plane loses
    thousands of writes."""
    event_driven = once(run_netchain, "event-driven")
    control = run_netchain("control-plane")
    report(
        "netchain",
        "§3: NetChain coordination — chain repair on link failure",
        [event_driven.summary_row(), control.summary_row()],
    )
    # Event-driven repair: essentially no write loss (≤ a write period
    # or two in flight).
    assert event_driven.writes_lost <= 3
    assert event_driven.outage_ps < 1 * MILLISECONDS
    # Control-plane repair: a ~110 ms blackhole of writes.
    assert control.writes_lost > 1_000
    assert control.outage_ps > 100 * MILLISECONDS
    # Chain consistency holds in both cases: the final read returns at
    # least the last acknowledged value (the tail saw every acked write).
    assert event_driven.read_matches_last_ack
    assert control.read_matches_last_ack
    # The tail really processed the writes (they weren't short-circuited).
    assert event_driven.tail_writes_applied >= event_driven.acks_received
