"""Table 2 — application classes that benefit from event-driven
programming.

Runs one representative application per class end-to-end and
regenerates the table with the events each program's handlers actually
use plus a live headline metric.
"""

from _util import report

from repro.experiments.table2_exp import build_table2


def test_table2_application_classes(once):
    """All five classes run, and each uses the events the paper lists."""
    rows = once(build_table2)
    report(
        "table2_applications",
        "Table 2: application classes (events from live handlers)",
        [row.summary_row() for row in rows],
    )
    assert len(rows) == 5
    by_class = {row.application_class: row for row in rows}

    hula = by_class["Congestion Aware Forwarding"]
    assert "timer_expiration" in hula.events_used
    assert "packet_transmitted" in hula.events_used

    frr = by_class["Network Management"]
    assert "link_status_change" in frr.events_used

    monitoring = by_class["Network Monitoring"]
    assert "buffer_enqueue" in monitoring.events_used
    assert "buffer_dequeue" in monitoring.events_used

    tm = by_class["Traffic Management"]
    assert "buffer_enqueue" in tm.events_used
    assert "timer_expiration" in tm.events_used

    computing = by_class["In-Network Computing"]
    assert "timer_expiration" in computing.events_used
