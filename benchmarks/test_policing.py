"""§3 — token-bucket policing from registers + timer events."""

from _util import report

from repro.experiments.policing_exp import run_policing


def test_timer_bucket_matches_fixed_function_meter(once):
    """The register+timer bucket clamps like the srTCM extern."""
    timer = once(run_policing, "timer")
    meter = run_policing("meter")
    borrowing = run_policing("timer-borrowing")
    report(
        "policing",
        "§3: policing — timer-built token bucket vs fixed-function meter",
        [timer.summary_row(), meter.summary_row(), borrowing.summary_row()],
    )
    for flow_stats in timer.flows:
        assert flow_stats.clamped_correctly
    for flow_stats in meter.flows:
        assert flow_stats.clamped_correctly
    # The over-rate flow is clamped to the committed rate by both.
    assert abs(timer.flows[-1].delivered_gbps - 1.0) < 0.15
    assert abs(meter.flows[-1].delivered_gbps - 1.0) < 0.15
    # And the customization a fixed-function meter cannot express:
    # borrowing lets the over-rate flow use the others' spare budget.
    assert borrowing.flows[-1].delivered_gbps > 1.5 * timer.flows[-1].delivered_gbps


def test_conformant_flows_untouched(once):
    """Flows under their committed rate lose (almost) nothing."""
    result = once(run_policing, "timer")
    under_rate = result.flows[0]  # offered 0.5G against a 1G limit
    assert under_rate.delivered_gbps > 0.9 * under_rate.offered_gbps
