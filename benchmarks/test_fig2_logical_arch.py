"""Figure 2 — the logical event-driven architecture.

The same traffic as the Figure 1 bench, but on the logical model:
every enqueue/dequeue event triggers its own logical pipeline which
shares state with the packet pipeline, synchronously (the multi-ported
ideal).  The SUME physical realization delivers the same events with a
small merger wait.
"""

from _util import report

from repro.arch.events import EventType
from repro.experiments.psa_fig_exp import run_architecture


def test_logical_architecture_delivers_all_events(once):
    """Every buffer event reaches a handler, with zero delivery lag."""
    trace = once(run_architecture, "logical")
    rows = [trace.summary_row()]
    report(
        "fig2_logical_arch",
        "Figure 2: logical event-driven architecture",
        rows,
    )
    assert trace.packets_forwarded == 200
    assert trace.events_handled[EventType.ENQUEUE] == 200
    assert trace.events_handled[EventType.DEQUEUE] == 200
    assert trace.buffer_events_suppressed() == 0
    assert trace.mean_event_wait_ps == 0.0  # synchronous dispatch


def test_sume_physical_realization_matches_logical(once):
    """The single-pipeline SUME switch sees the same events, slightly late."""
    trace = once(run_architecture, "sume")
    assert trace.packets_forwarded == 200
    assert trace.events_handled[EventType.ENQUEUE] == 200
    assert trace.events_handled[EventType.DEQUEUE] == 200
    # The merger adds a nonzero (but tiny) delivery wait.
    assert trace.mean_event_wait_ps > 0
    assert trace.mean_event_wait_ps < 100_000  # well under 100 ns
