"""§8 — what failover means to an application.

A reliable sliding-window transfer (the §8 "simple reliable delivery
protocol") crosses the diamond while its primary path fails.
"""

from _util import report

from repro.experiments.reliable_exp import run_reliable_transfer


def test_transfer_survives_frr_stalls_under_control_plane(once):
    """FRR: a handful of retransmissions; control plane: a long stall."""
    frr = once(run_reliable_transfer, "frr")
    control = run_reliable_transfer("control-plane")
    report(
        "reliable_transfer",
        "§8: reliable transfer across a failover",
        [frr.summary_row(), control.summary_row()],
    )
    assert frr.completed and control.completed
    # Both eventually deliver everything (reliability works)...
    assert frr.delivered == control.delivered == frr.total_packets
    # ...but FRR loses only the in-flight window; the control plane
    # stalls for its full repair latency.
    assert frr.retransmissions < 50
    assert control.retransmissions > 5 * frr.retransmissions
    assert control.completion_ms > frr.completion_ms + 80  # the ~110 ms hole
