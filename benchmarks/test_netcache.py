"""§3 — NetCache with timer-driven approximate LRU and stat clearing."""

from _util import report

from repro.experiments.netcache_exp import run_netcache


def test_timer_maintenance_adapts_to_workload_change(once):
    """Timer-driven decay restores the hit ratio after a hot-set shift."""
    with_timer = once(run_netcache, True)
    without = run_netcache(False)
    report(
        "netcache",
        "§3: NetCache — timer-driven maintenance vs none",
        [with_timer.summary_row(), without.summary_row()],
    )
    # Both caches absorb load before the shift, but the timer-maintained
    # cache re-learns the new hot set and keeps its hit ratio high.
    assert with_timer.post_shift_hit_ratio > 0.5
    assert without.post_shift_hit_ratio < 0.3
    assert with_timer.post_shift_hit_ratio > 2 * without.post_shift_hit_ratio
    # Server offload follows directly.
    assert with_timer.server_requests < 0.6 * without.server_requests
    # The adaptation came from real evictions, not a bigger cache.
    assert with_timer.evictions > 0
