"""§3/§5 — fast re-route vs. control-plane re-route.

A diamond topology loses its primary link mid-flow.  The LINK_STATUS
handler flips to the backup within the event-handling latency; the
control plane takes its detection timeout plus recompute plus install.
"""

from _util import report

from repro.experiments.frr_exp import run_failover
from repro.sim.units import MILLISECONDS


def test_frr_recovers_orders_of_magnitude_faster(once):
    """FRR outage is microseconds; control-plane outage is ~110 ms."""
    frr = once(run_failover, "frr")
    control = run_failover("control-plane")
    report(
        "frr_recovery",
        "§3: failover — data-plane FRR vs control plane",
        [frr.summary_row(), control.summary_row()],
    )
    # Loss: at most the packets in flight for FRR, thousands for the CP.
    assert frr.packets_lost <= 5
    assert control.packets_lost > 1_000
    assert control.packets_lost > 100 * max(1, frr.packets_lost)
    # Outage duration: ≥3 orders of magnitude apart.
    assert frr.outage_ps < 1 * MILLISECONDS
    assert control.outage_ps > 100 * MILLISECONDS
    # The data plane rerouted the instant the event fired.
    assert frr.reroute_delay_ps is not None
    assert frr.reroute_delay_ps < 10_000_000  # under 10 µs


def test_frr_reverts_on_recovery(once):
    """When the link comes back, FRR restores the primary path."""
    from repro.experiments.frr_exp import (
        FastRerouteProgram,
        H1_IP,
        _build_diamond,
        _install_transit_routes,
    )
    from repro.experiments.factories import make_sume_switch

    def run():
        network = _build_diamond(make_sume_switch())
        program = FastRerouteProgram()
        program.install_protected_route(H1_IP, primary=1, backup=2)
        program.install_route(0x0A00_0001, 0)
        _install_transit_routes(network, FastRerouteProgram)
        network.switches["s0"].load_program(program)
        link = network.link_between("s0", "s1")
        link.fail_at(10 * MILLISECONDS)
        link.recover_at(20 * MILLISECONDS)
        network.run(until_ps=30 * MILLISECONDS)
        return program

    program = once(run)
    assert len(program.failovers) == 1
    assert len(program.reverts) == 1
    assert program.routes[H1_IP] == 1  # back on the primary
