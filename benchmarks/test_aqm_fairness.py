"""§3/§5 — AQM from enqueue/dequeue events.

A 9 Gb/s blaster against three polite 2.5 Gb/s senders on a 10 Gb/s
bottleneck: drop-tail lets the blaster monopolize the buffer; the
event-driven FRED caps every flow near its fair share; RED sits
between.
"""

from _util import report

from repro.experiments.aqm_exp import run_aqm


def test_fred_restores_fairness(once):
    """Jain's index: drop-tail ≪ RED/PIE < FRED."""
    fred = once(run_aqm, "fred")
    red = run_aqm("red")
    pie = run_aqm("pie")
    tail = run_aqm("drop-tail")
    report(
        "aqm_fairness",
        "§3: AQM fairness under an unresponsive blaster",
        [tail.summary_row(), red.summary_row(), pie.summary_row(), fred.summary_row()],
    )
    # PIE's timer-driven controller converts tail losses into controlled
    # early drops (its whole point needs periodic timer events).
    assert pie.aqm_drops > 5 * pie.overflow_drops
    assert pie.fairness > tail.fairness
    assert tail.fairness < 0.6
    assert fred.fairness > 0.9
    assert fred.fairness > red.fairness > tail.fairness
    # The blaster's share: ~70% under drop-tail, near fair under FRED.
    assert tail.blaster_share > 0.6
    assert fred.blaster_share < 0.4
    # FRED's drops are deliberate AQM drops, not tail losses only.
    assert fred.aqm_drops > 0
    # The §5 monitor time series was produced by timer events.
    assert fred.occupancy_samples > 100
