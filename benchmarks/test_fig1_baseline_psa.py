"""Figure 1 — the baseline Portable Switch Architecture.

Packets traverse ingress pipeline → traffic manager → egress pipeline
and are forwarded correctly; but every buffer transition the TM
performs is suppressed before the programming model — the paper's
motivating gap, made countable.
"""

from _util import report

from repro.arch.events import EventType
from repro.experiments.psa_fig_exp import run_architecture


def test_baseline_psa_forwards_but_hides_buffer_events(once):
    """The PSA forwards at line rate yet exposes zero buffer events."""
    trace = once(run_architecture, "baseline")
    report(
        "fig1_baseline_psa",
        "Figure 1: baseline PSA — packet path works, events hidden",
        [trace.summary_row()],
    )
    assert trace.packets_forwarded == 200
    # Ingress and egress packet events reached the program...
    assert trace.events_handled[EventType.INGRESS_PACKET] == 200
    assert trace.events_handled[EventType.EGRESS_PACKET] == 200
    # ...but every enqueue/dequeue/transmit transition was suppressed.
    assert trace.buffer_events_visible() == 0
    assert trace.events_suppressed[EventType.ENQUEUE] == 200
    assert trace.events_suppressed[EventType.DEQUEUE] == 200
    assert trace.events_suppressed[EventType.PACKET_TRANSMITTED] == 200
