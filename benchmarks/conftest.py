"""Benchmark suite configuration.

The benches are one-shot system experiments, not microbenchmarks, so
every ``benchmark`` call uses a single round by default.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
