"""§1/§3 claim — periodic work belongs in the data plane.

The count-min-sketch reset comparison: timer events clear the sketch at
exact window boundaries for free; the control plane pays an RTT plus a
per-counter write for every clear, saturates, and lets windows blur —
precision collapses.
"""

from _util import report

from repro.experiments.cms_exp import run_cms_reset


def test_timer_reset_beats_control_plane(once):
    """Data-plane resets: exact windows, idle controller, high precision."""
    timer = once(run_cms_reset, "timer")
    control = run_cms_reset("control")
    none = run_cms_reset("none")
    report(
        "cms_reset",
        "§1: CMS periodic reset — timer events vs control plane",
        [timer.summary_row(), control.summary_row(), none.summary_row()],
    )
    # Precision ordering: timer >> control >= none.
    assert timer.precision > 2 * control.precision
    assert timer.precision >= 0.5
    assert control.precision <= 0.5
    # Everybody still finds the true heavy hitters (CMS overestimates).
    assert timer.recall == 1.0
    assert control.recall == 1.0
    # The control plane saturates trying to keep up...
    assert control.controller_busy_fraction > 0.9
    # ...and completes only a fraction of the intended resets.
    assert control.resets_completed < 0.5 * timer.resets_completed
    # Timer resets cost the controller nothing.
    assert timer.controller_busy_fraction == 0.0
