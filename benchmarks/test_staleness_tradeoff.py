"""§4 — staleness is bounded and trades against bandwidth.

Two sweeps: staleness vs. pipeline overspeed, and staleness vs.
disabled external ports.  The paper's claims: staleness is *bounded* if
the pipeline runs slightly faster than line rate, shrinks with
headroom, and can be bought down by giving up packet-processing
bandwidth.
"""

from _util import report

from repro.experiments.staleness_exp import sweep_overspeed, sweep_port_disable


def test_staleness_shrinks_with_overspeed(once):
    """More pipeline headroom → lower staleness, always bounded."""
    results = once(sweep_overspeed, [1.05, 1.25, 1.5, 2.0])
    report(
        "staleness_overspeed",
        "§4: staleness vs pipeline overspeed",
        [result.summary_row() for result in results],
    )
    lags = [result.staleness.mean_lag_cycles for result in results]
    errors = [result.staleness.mean_error for result in results]
    # Monotone improvement along the sweep.
    assert lags == sorted(lags, reverse=True)
    assert errors[0] > errors[-1]
    for result in results:
        # Bounded: pending work never exceeds the number of entries.
        assert result.max_pending_ops <= result.config.num_queues
        assert result.port_conflicts == 0


def test_disabling_ports_buys_accuracy(once):
    """§4's trade-off: fewer used ports → fresher state."""
    results = once(sweep_port_disable, [0.0, 0.25, 0.5, 0.75])
    report(
        "staleness_ports",
        "§4: staleness vs disabled external ports (bandwidth ↔ accuracy)",
        [
            f"disabled={result.config.port_disable_fraction:4.2f} "
            + result.summary_row()
            for result in results
        ],
    )
    errors = [result.staleness.mean_error for result in results]
    assert errors[0] > errors[-1]
    # At 75% disabled ports the state is nearly always fresh.
    assert results[-1].staleness.mean_error < 0.25 * results[0].staleness.mean_error
