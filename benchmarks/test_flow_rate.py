"""§5 — time-windowed flow-rate measurement with timer events."""

from _util import report

from repro.experiments.flow_rate_exp import run_flow_rate


def test_windowed_rates_are_accurate_and_decay(once):
    """Sliding windows measure active flows well and decay when idle."""
    window = once(run_flow_rate, "window")
    ewma = run_flow_rate("ewma")
    report(
        "flow_rate",
        "§5: flow-rate measurement — timer windows vs packet-only EWMA",
        [window.summary_row(), ewma.summary_row()],
    )
    # Both track an active CBR flow closely.
    assert window.active_error < 0.1
    assert ewma.active_error < 0.25
    # The stopped flow: the window decays to ~zero; the EWMA — which
    # can only update on packet arrivals — freezes at its last rate.
    assert window.stopped_flow_residual_gbps < 0.05
    assert ewma.stopped_flow_residual_gbps > 1.0
