"""§2 claim — event-driven microburst detection needs ≥4× less state.

Runs the paper's ``microburst.p4`` on the SUME Event Switch and the
Snappy approximation on a baseline PSA switch over the same bursty
workload, and compares stateful footprint, detection placement, and
accuracy.
"""

from _util import report

from repro.experiments.microburst_exp import (
    run_cms_variant,
    run_event_driven,
    run_snappy_baseline,
    state_reduction_factor,
)


def test_state_reduction_at_least_four_fold(once):
    """The paper's headline: ≥4× stateful-requirement reduction."""
    event = once(run_event_driven)
    snappy = run_snappy_baseline()
    cms = run_cms_variant()
    factor = state_reduction_factor(event, snappy)
    report(
        "microburst_state",
        "§2: microburst detection — event-driven vs Snappy",
        [
            event.summary_row(),
            snappy.summary_row(),
            cms.summary_row(),
            f"state reduction factor: {factor:.2f}x (paper: at least 4x)",
            f"CMS footnote variant: a further "
            f"{event.state_bits / cms.state_bits:.1f}x below the register "
            f"version",
        ],
    )
    # The §2 footnote: the CMS variant reduces state even further and
    # still catches the culprit.
    assert cms.culprit_detected
    assert cms.state_bits < event.state_bits / 2
    assert factor >= 4.0
    # Both catch the culprit; the event-driven version does it in the
    # ingress pipeline, before the packet is buffered.
    assert event.culprit_detected
    assert snappy.culprit_detected
    assert event.detection_stage == "ingress"
    assert snappy.detection_stage == "egress"
    # Exact occupancy tracking means no false positives for the
    # event-driven detector; the approximation may flag innocents.
    assert event.false_positive_flows == 0
    assert snappy.false_positive_flows >= event.false_positive_flows


def test_detection_latency_within_one_burst(once):
    """The culprit is flagged while its burst is still in progress."""
    event = once(run_event_driven)
    assert event.detection_latency_ps is not None
    # The 48-packet burst takes ~57 µs to send; detection lands inside it.
    assert event.detection_latency_ps < 60_000_000
