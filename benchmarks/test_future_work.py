"""§4/§7 future-work questions, made quantitative.

The paper leaves two questions open and promises future work; this
bench implements both so the design space is measurable:

* **§4**: "how memory accesses are scheduled, depending on which events
  are the most important and urgent" — the drain-priority ablation.
* **§7**: "Defining a consistency model for multi-threaded data-plane
  programs remains an area of future work" — the lost-update rate of
  non-atomic read-modify-writes across event threads, versus the atomic
  single-stage semantics the paper's shared_register provides.
"""

from _util import report

from repro.experiments.staleness_exp import sweep_drain_policy
from repro.state.consistency import run_contention


def test_drain_priority_policies(once):
    """Largest-pending-first minimizes value error; LIFO starves."""
    results = once(sweep_drain_policy, ["fifo", "largest", "lifo"])
    report(
        "drain_policies",
        "§4 future work: drain-priority policies",
        [
            f"{policy:<8} {result.staleness.row()}"
            for policy, result in zip(["fifo", "largest", "lifo"], results)
        ],
    )
    by_policy = dict(zip(["fifo", "largest", "lifo"], results))
    # Prioritizing the most-wrong entries beats FIFO on value error...
    assert (
        by_policy["largest"].staleness.mean_error
        < by_policy["fifo"].staleness.mean_error
    )
    # ...while LIFO is strictly worse than FIFO and starves old entries.
    assert (
        by_policy["lifo"].staleness.mean_error
        > by_policy["fifo"].staleness.mean_error
    )
    assert (
        by_policy["lifo"].staleness.max_lag_cycles
        > 5 * by_policy["fifo"].staleness.max_lag_cycles
    )


def test_consistency_lost_updates(once):
    """Atomic RMW loses nothing; multi-stage RMW loses updates fast."""
    latencies = [0, 1, 2, 4, 8]
    results = once(lambda: [run_contention(lat) for lat in latencies])
    report(
        "consistency",
        "§7 future work: lost updates vs RMW latency (3 threads, 4 counters)",
        [result.summary_row() for result in results],
    )
    by_latency = dict(zip(latencies, results))
    # The paper's shared_register / Domino-transaction case: exact.
    assert by_latency[0].lost_updates == 0
    # Loss grows monotonically with the read-to-write distance.
    losses = [result.loss_rate for result in results]
    assert losses == sorted(losses)
    assert by_latency[8].loss_rate > 0.3


def test_contention_scales_with_threads(once):
    """More threads on the same counters → more lost updates."""
    few = run_contention(4, thread_count=2, cycles=30_000)
    many = once(run_contention, 4, 6, 4, 30_000)
    assert many.loss_rate > few.loss_rate
