"""§6 — emulating events on a fixed-function device, and its cost.

The same dequeue-auditing program runs on the SUME Event Switch
(native) and on a Tofino-like device that emulates timer events with
its packet generator and dequeue events with recirculation.  Emulation
works at low rates, degrades in latency as the recirculation port
fills, and loses events outright once it saturates.
"""

from _util import report

from repro.experiments.emulation_exp import run_emulation_point, sweep_event_rate


def test_native_vs_emulated_event_delivery(once):
    """Native delivery is flat; emulation saturates and drops."""
    results = once(
        sweep_event_rate, [100_000.0, 1_000_000.0, 2_000_000.0], 3_000_000_000
    )
    rows = []
    for arch in ("sume", "tofino-emulated"):
        rows.extend(r.summary_row() for r in results[arch])
    report("emulation_ablation", "§6: native events vs Tofino-style emulation", rows)

    native = results["sume"]
    emulated = results["tofino-emulated"]
    # Native: no loss, constant tiny lag at every rate.
    for point in native:
        assert point.events_lost == 0
        assert point.max_lag_ns < 100
    # Emulated: lag at least an order of magnitude above native even
    # when keeping up...
    assert emulated[0].mean_lag_ns > 10 * native[0].mean_lag_ns
    # ...and collapse at the highest rate: saturated recirculation and
    # lost events.
    assert emulated[-1].recirc_utilization > 0.95
    assert emulated[-1].events_lost > 0
    assert native[-1].events_lost == 0


def test_emulation_steals_pipeline_bandwidth(once):
    """Every emulated event burns an ingress pipeline slot."""
    point = once(run_emulation_point, "tofino-emulated", 1_000_000.0)
    # One marker per dequeue plus the timer markers.
    assert point.pipeline_slot_fraction > 0
    assert point.dequeues_delivered > 0
