"""§3 — NDP-style trimming from buffer-overflow events."""

from _util import report

from repro.experiments.ndp_exp import run_incast


def test_trimming_makes_losses_visible(once):
    """Every loss produces a delivered trim under NDP; none under tail-drop."""
    ndp = once(run_incast, "ndp")
    tail = run_incast("tail-drop")
    report(
        "ndp_trimming",
        "§3: incast loss visibility — NDP trimming vs tail-drop",
        [tail.summary_row(), ndp.summary_row()],
    )
    assert tail.loss_visibility == 0.0
    assert ndp.loss_visibility >= 0.95
    assert ndp.trims_delivered > 0
    # Both schemes lost comparable amounts of data (same incast).
    assert tail.data_lost > 0
    assert abs(ndp.data_lost - tail.data_lost) < 0.25 * tail.data_lost
