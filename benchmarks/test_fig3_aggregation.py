"""Figure 3 — aggregation registers over single-ported memory.

The §4 mechanism: enqueue/dequeue read-modify-writes aggregate in side
register arrays and fold into the main algorithmic register on idle
cycles.  The bench shows (a) zero port conflicts with the aggregated
layout under simultaneous enqueue + dequeue + packet-read load, versus
constant over-subscription for the naive single-array layout, and
(b) bounded drain lag.
"""

from _util import report

from repro.experiments.staleness_exp import run_aggregated, run_naive_single_array


def test_aggregation_eliminates_port_conflicts(once):
    """Figure 3's layout needs no multi-ported memory; the naive one does."""
    aggregated = once(run_aggregated, 50_000, 1.25)
    naive = run_naive_single_array(cycles=50_000, overspeed=1.25)
    report(
        "fig3_aggregation",
        "Figure 3: aggregation registers vs naive single array",
        [
            f"aggregated layout: {aggregated.port_conflicts} conflict cycles, "
            f"{aggregated.summary_row()}",
            naive.summary_row(),
        ],
    )
    assert aggregated.port_conflicts == 0
    assert naive.conflict_cycles > 0.05 * naive.cycles  # constant conflicts
    # The drain keeps up: pending work stays bounded by the entry count.
    assert aggregated.max_pending_ops <= aggregated.config.num_queues
    assert aggregated.drained_ops > 0


def test_queue_size_state_converges_when_traffic_stops(once):
    """After events stop, drains make the main register exact."""
    from repro.state.aggregation import AggregationRegisterFile

    def converge():
        file = AggregationRegisterFile(size=8)
        cycle = 0
        # Interleave enqueues and dequeues across queues.
        for i in range(64):
            file.enqueue_update(cycle, i % 8, 100)
            cycle += 1
        for i in range(32):
            file.dequeue_update(cycle, i % 8, 100)
            cycle += 1
        # Idle period: drain everything.
        while file.pending_indices:
            file.drain(cycle, max_indices=1)
            cycle += 1
        return file

    file = once(converge)
    assert file.max_staleness() == 0
    for queue in range(8):
        expected = 8 * 100 - 4 * 100
        assert file.main.register.read(queue) == expected
        assert file.truth(queue) == expected
