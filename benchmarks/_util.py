"""Shared benchmark reporting.

Each bench regenerates one of the paper's tables or figures.  Besides
pytest-benchmark's timing table, the actual *content* rows (the numbers
the paper reports) are printed and persisted under
``benchmarks/reports/`` so EXPERIMENTS.md can be refreshed from a run.
"""

from __future__ import annotations

import os
from typing import Iterable

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


def report(name: str, title: str, rows: Iterable[str]) -> None:
    """Print and persist one table/figure reproduction."""
    os.makedirs(REPORT_DIR, exist_ok=True)
    lines = [title, "=" * len(title)]
    lines.extend(rows)
    text = "\n".join(lines)
    print("\n" + text)
    with open(os.path.join(REPORT_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
