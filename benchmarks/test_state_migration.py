"""§3 — swing-state: data-plane state migration on failover."""

from _util import report

from repro.experiments.migration_exp import BUDGET_BYTES, run_migration


def test_migration_preserves_budget_enforcement(once):
    """Migrated counters keep the per-flow budget exact across paths."""
    with_migration = once(run_migration, True)
    without = run_migration(False)
    report(
        "state_migration",
        "§3: swing-state migration — per-flow budget across a failover",
        [with_migration.summary_row(), without.summary_row()],
    )
    # With migration, enforcement is seamless: delivered ≈ budget.
    assert with_migration.delivered_bytes <= 1.05 * BUDGET_BYTES
    assert with_migration.over_admission_bytes <= 0.05 * BUDGET_BYTES
    # Without, the backup grants a fresh budget: ≈ 2× delivered.
    assert without.delivered_bytes >= 1.8 * BUDGET_BYTES
    # The transfer actually happened through generated packets.
    assert with_migration.transfers_sent >= 1
    assert with_migration.transfers_received >= 1
    assert without.transfers_sent == 0
