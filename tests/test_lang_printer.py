"""Round-trip tests for the language pretty-printer."""

from hypothesis import given, settings, strategies as st

from repro.lang.ast_nodes import ProgramAst
from repro.lang.parser import parse
from repro.lang.printer import pretty

MICROBURST = """
program microburst;
shared_register<32>(1024) bufSize_reg;
const FLOW_THRESH = 8000;
on ingress_packet {
    var flowID = hash(ip.src, ip.dst, 1024);
    set_enq_meta("flowID", flowID);
    var bufSize = bufSize_reg.read(flowID);
    if (bufSize > FLOW_THRESH) { mark(flowID); } else { log(bufSize); }
    forward_by_ip();
}
on buffer_enqueue { bufSize_reg.add(event.flowID, event.pkt_len); }
init { configure_timer(0, 1000); }
"""


def strip_positions(ast: ProgramAst):
    """A position-free structural fingerprint for comparison."""

    def fingerprint(node):
        if hasattr(node, "__dataclass_fields__"):
            fields = {}
            for name in node.__dataclass_fields__:
                if name == "pos":
                    continue
                fields[name] = fingerprint(getattr(node, name))
            return (type(node).__name__, tuple(sorted(fields.items())))
        if isinstance(node, tuple):
            return tuple(fingerprint(item) for item in node)
        return node

    return fingerprint(ast)


def test_roundtrip_microburst():
    ast = parse(MICROBURST)
    reparsed = parse(pretty(ast))
    assert strip_positions(ast) == strip_positions(reparsed)


def test_pretty_output_is_stable():
    """pretty is a fixed point: pretty(parse(pretty(x))) == pretty(x)."""
    once = pretty(parse(MICROBURST))
    twice = pretty(parse(once))
    assert once == twice


def test_parenthesization_preserves_semantics():
    source = (
        "program p;\n"
        "on timer_expiration { var x = 1 + 2 * 3 - (4 + 5) / 2; mark(x); }\n"
    )
    ast = parse(source)
    reparsed = parse(pretty(ast))
    assert strip_positions(ast) == strip_positions(reparsed)


def test_else_branch_printed():
    source = "program p;\non timer_expiration { if (1) { mark(1); } else { mark(2); } }\n"
    text = pretty(parse(source))
    assert "else" in text
    assert strip_positions(parse(text)) == strip_positions(parse(source))


def test_unary_and_strings():
    source = (
        'program p;\non ingress_packet { var x = -1; var y = !0; '
        'set_enq_meta("k", x + y); drop(); }\n'
    )
    assert strip_positions(parse(pretty(parse(source)))) == strip_positions(
        parse(source)
    )


# ----------------------------------------------------------------------
# Property: random expression trees round-trip through print + parse
# ----------------------------------------------------------------------
_numbers = st.integers(0, 10_000)


def _expr_source(draw, depth=0):
    choice = draw(st.integers(0, 4 if depth < 3 else 0))
    if choice == 0:
        return str(draw(_numbers))
    if choice == 1:
        op = draw(st.sampled_from(["+", "-", "*", "/", "%"]))
        left = _expr_source(draw, depth + 1)
        right = _expr_source(draw, depth + 1)
        if op in "/%":
            right = f"({right} + 1)"  # avoid division by zero
        return f"({left} {op} {right})"
    if choice == 2:
        op = draw(st.sampled_from(["==", "!=", "<", ">", "<=", ">="]))
        return f"({_expr_source(draw, depth + 1)} {op} {_expr_source(draw, depth + 1)})"
    if choice == 3:
        return f"(!{_expr_source(draw, depth + 1)})"
    return f"(-{_expr_source(draw, depth + 1)})"


@st.composite
def expression_programs(draw):
    expr = _expr_source(draw)
    return f"program p;\non timer_expiration {{ var x = {expr}; mark(x); }}\n"


@settings(max_examples=60)
@given(expression_programs())
def test_random_expressions_roundtrip(source):
    ast = parse(source)
    reparsed = parse(pretty(ast))
    assert strip_positions(ast) == strip_positions(reparsed)
