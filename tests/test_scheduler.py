"""Unit tests for the egress schedulers."""

import pytest

from repro.packet.builder import make_udp_packet
from repro.tm.queues import PacketQueue
from repro.tm.scheduler import (
    DeficitRoundRobinScheduler,
    FifoScheduler,
    PifoScheduler,
    StrictPriorityScheduler,
)


def pkt(payload=0, queue_id=0, priority=0):
    p = make_udp_packet(1, 2, payload_len=payload)
    p.queue_id = queue_id
    p.priority = priority
    return p


def make_queues(n, capacity=100_000):
    return [PacketQueue(capacity, name=f"q{i}") for i in range(n)]


class TestFifo:
    def test_serves_in_order(self):
        queues = make_queues(1)
        sched = FifoScheduler(queues)
        a, b = pkt(), pkt()
        queues[0].push(a)
        queues[0].push(b)
        assert sched.dequeue() is a
        assert sched.dequeue() is b
        assert sched.dequeue() is None

    def test_requires_queues(self):
        with pytest.raises(ValueError):
            FifoScheduler([])


class TestStrictPriority:
    def test_lower_queue_always_first(self):
        queues = make_queues(2)
        sched = StrictPriorityScheduler(queues)
        low = pkt()
        high = pkt()
        queues[1].push(low)
        queues[0].push(high)
        assert sched.dequeue() is high
        assert sched.dequeue() is low

    def test_high_queue_can_starve_low(self):
        queues = make_queues(2)
        sched = StrictPriorityScheduler(queues)
        for _ in range(3):
            queues[0].push(pkt())
        queues[1].push(pkt())
        order = [0 if sched.select() == 0 else 1 for _ in range(3)
                 if sched.dequeue() is not None]
        assert 1 not in order[:2]


class TestDrr:
    def test_byte_fair_service(self):
        # Queue 0 holds big packets, queue 1 small ones; DRR should give
        # both roughly equal bytes of service.
        queues = make_queues(2)
        sched = DeficitRoundRobinScheduler(queues, quantum_bytes=1_500)
        for _ in range(20):
            queues[0].push(pkt(1_458))  # 1500B total
        for _ in range(60):
            queues[1].push(pkt(458))  # 500B total
        served = {0: 0, 1: 0}
        for _ in range(30):
            packet = sched.dequeue()
            assert packet is not None
            origin = 0 if packet.total_len == 1_500 else 1
            served[origin] += packet.total_len
        ratio = served[0] / served[1]
        assert 0.5 < ratio < 2.0

    def test_drains_to_empty(self):
        queues = make_queues(2)
        sched = DeficitRoundRobinScheduler(queues, quantum_bytes=100)
        queues[0].push(pkt(1_436))
        assert sched.dequeue() is not None
        assert sched.dequeue() is None

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            DeficitRoundRobinScheduler(make_queues(1), quantum_bytes=0)


class TestPifoScheduler:
    def test_pops_by_rank_function(self):
        queues = make_queues(1)
        sched = PifoScheduler(queues, rank_fn=lambda p: p.priority)
        late = pkt(priority=9)
        early = pkt(priority=1)
        assert sched.on_enqueue(late) is None
        assert sched.on_enqueue(early) is None
        assert sched.dequeue() is early
        assert sched.dequeue() is late

    def test_depth_accounting(self):
        queues = make_queues(1)
        sched = PifoScheduler(queues, rank_fn=lambda p: 0)
        sched.on_enqueue(pkt(458))
        assert sched.depth_bytes == 500
        sched.dequeue()
        assert sched.depth_bytes == 0

    def test_full_pifo_returns_displaced(self):
        queues = make_queues(1)
        sched = PifoScheduler(queues, rank_fn=lambda p: p.priority, capacity=1)
        keeper = pkt(priority=1)
        worse = pkt(priority=5)
        assert sched.on_enqueue(keeper) is None
        assert sched.on_enqueue(worse) is worse  # rejected
        better = pkt(priority=0)
        assert sched.on_enqueue(better) is keeper  # displaced
        assert sched.dequeue() is better
