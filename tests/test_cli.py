"""Unit tests for the CLI experiment runner."""

import pytest

from repro.cli import EXPERIMENTS, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_table3(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Block RAM" in out
    assert "paper=  2.0%" in out


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "buffer_enqueue" in out
    assert "live demonstration" in out


def test_fig3(capsys):
    assert main(["fig3"]) == 0
    out = capsys.readouterr().out
    assert "overspeed" in out


def test_unknown_experiment_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["warp-drive"])


def test_every_experiment_is_documented():
    for name, fn in EXPERIMENTS.items():
        assert fn.__doc__, f"experiment {name} lacks a docstring"
