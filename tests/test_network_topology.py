"""Unit tests for network wiring, topology builders, and routing."""

import pytest

from repro.arch.description import BASELINE_PSA
from repro.experiments.factories import make_baseline_switch, make_sume_switch
from repro.net.host import Host
from repro.net.network import Network
from repro.net.routing import all_pairs_ports, install_ip_routes, shortest_path_ports
from repro.net.topology import (
    build_dumbbell,
    build_leaf_spine,
    build_linear,
    with_ports,
)
from repro.packet.builder import make_udp_packet


class TestNetwork:
    def test_duplicate_names_rejected(self):
        network = Network()
        factory = make_baseline_switch()
        network.add_switch(factory(network.sim, "s0", 2))
        with pytest.raises(ValueError):
            network.add_switch(factory(network.sim, "s0", 2))
        network.add_host(Host(network.sim, "h", 1))
        with pytest.raises(ValueError):
            network.add_host(Host(network.sim, "h", 2))

    def test_double_connect_port_rejected(self):
        network = Network()
        factory = make_baseline_switch()
        s0 = network.add_switch(factory(network.sim, "s0", 2))
        h0 = network.add_host(Host(network.sim, "h0", 1))
        h1 = network.add_host(Host(network.sim, "h1", 2))
        network.connect(h0, 0, s0, 0)
        with pytest.raises(ValueError):
            network.connect(h1, 0, s0, 0)

    def test_link_between_and_port_towards(self):
        network = build_linear(make_baseline_switch(), switch_count=2)
        assert network.link_between("s0", "s1") is not None
        assert network.link_between("s0", "h1") is None
        assert network.port_towards("s0", "s1") == 1
        assert network.port_towards("s1", "s0") == 0
        assert network.port_towards("s0", "h0") == 0

    def test_graph_view(self):
        network = build_linear(make_baseline_switch(), switch_count=2)
        graph = network.graph()
        assert set(graph.nodes) == {"s0", "s1", "h0", "h1"}
        assert graph.number_of_edges() == 3

    def test_unconnected_port_tx_is_silent(self):
        network = Network()
        factory = make_baseline_switch()
        s0 = network.add_switch(factory(network.sim, "s0", 2))
        # No links at all: transmitting must not raise.
        s0._transmit(make_udp_packet(1, 2), 1)


class TestTopologies:
    def test_linear_wiring_end_to_end(self):
        from repro.apps.frr import StaticRouteProgram

        network = build_linear(make_sume_switch(), switch_count=3)
        for name in ("s0", "s1", "s2"):
            program = StaticRouteProgram()
            program.install_routes(
                {network.hosts["h1"].ip: 1, network.hosts["h0"].ip: 0}
            )
            network.switches[name].load_program(program)
        received = []
        network.hosts["h1"].add_sink(received.append)
        network.hosts["h0"].send(
            make_udp_packet(network.hosts["h0"].ip, network.hosts["h1"].ip)
        )
        network.run()
        assert len(received) == 1

    def test_dumbbell_shape(self):
        network = build_dumbbell(make_baseline_switch(), senders=3, receivers=2)
        assert set(network.switches) == {"s0", "s1"}
        assert set(network.hosts) == {"tx0", "tx1", "tx2", "rx0", "rx1"}
        assert network.port_towards("s0", "s1") == 0
        assert network.port_towards("s0", "tx0") == 1

    def test_leaf_spine_shape(self):
        fabric = build_leaf_spine(
            make_baseline_switch(), leaf_count=2, spine_count=3, hosts_per_leaf=2
        )
        assert len(fabric.leaves) == 2
        assert len(fabric.spines) == 3
        assert fabric.uplink_ports["leaf0"] == [0, 1, 2]
        assert fabric.host_port_base["leaf0"] == 3
        assert len(fabric.hosts["leaf1"]) == 2
        # Leaf 0 port j reaches spine j.
        assert fabric.network.port_towards("leaf0", "spine2") == 2
        assert fabric.network.port_towards("spine1", "leaf1") == 1

    def test_with_ports(self):
        description = with_ports(BASELINE_PSA, 9)
        assert description.port_count == 9
        assert description.name == BASELINE_PSA.name

    def test_builder_validation(self):
        with pytest.raises(ValueError):
            build_linear(make_baseline_switch(), switch_count=0)
        with pytest.raises(ValueError):
            build_dumbbell(make_baseline_switch(), senders=0)
        with pytest.raises(ValueError):
            build_leaf_spine(make_baseline_switch(), leaf_count=0)


class TestRouting:
    def test_shortest_path_ports(self):
        network = build_linear(make_baseline_switch(), switch_count=3)
        hops = shortest_path_ports(network, "h0", "h1")
        assert hops == [("s0", 1), ("s1", 1), ("s2", 1)]
        back = shortest_path_ports(network, "h1", "h0")
        assert back == [("s2", 0), ("s1", 0), ("s0", 0)]

    def test_avoids_down_links(self):
        fabric = build_leaf_spine(make_baseline_switch(), 2, 2, 1)
        network = fabric.network
        via = shortest_path_ports(network, "h0_0", "h1_0")
        first_uplink = via[0][1]
        link = network.link_between("leaf0", f"spine{first_uplink}")
        link.set_up(False)
        rerouted = shortest_path_ports(network, "h0_0", "h1_0")
        assert rerouted[0][1] != first_uplink

    def test_all_pairs(self):
        network = build_linear(make_baseline_switch(), switch_count=1)
        routes = all_pairs_ports(network)
        assert set(routes) == {("h0", "h1"), ("h1", "h0")}

    def test_install_ip_routes(self):
        network = build_linear(make_baseline_switch(), switch_count=2)
        tables = {"s0": {}, "s1": {}}
        install_ip_routes(network, tables)
        h1_ip = network.hosts["h1"].ip
        h0_ip = network.hosts["h0"].ip
        assert tables["s0"][h1_ip] == 1
        assert tables["s1"][h0_ip] == 0
