"""Unit tests for the event-driven programming model."""

import pytest

from repro.arch.description import (
    BASELINE_PSA,
    LOGICAL_EVENT_DRIVEN,
    SUME_EVENT_SWITCH,
    TOFINO_LIKE,
    UnsupportedEventError,
)
from repro.arch.events import Event, EventType
from repro.arch.program import P4Program, ProgramContext, handler
from repro.pisa.externs.register import Register, SharedRegister
from repro.pisa.externs.sketch import CountMinSketch


class TinyProgram(P4Program):
    name = "tiny"

    def __init__(self):
        super().__init__()
        self.shared = SharedRegister(4, name="s")
        self.plain = Register(4, name="p")
        self.sketch = CountMinSketch(16, 2)
        self.not_an_extern = [1, 2, 3]
        self.timer_events = []

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx, pkt, meta):
        pkt.note("ingress ran")

    @handler(EventType.TIMER)
    def on_timer(self, ctx, event):
        self.timer_events.append(event)


def test_handled_events_discovered():
    program = TinyProgram()
    assert program.handled_events() == {EventType.INGRESS_PACKET, EventType.TIMER}
    assert program.handler_for(EventType.TIMER) is not None
    assert program.handler_for(EventType.DEQUEUE) is None


def test_externs_discovered_sorted():
    program = TinyProgram()
    names = [name for name, _ in program.externs()]
    assert names == ["plain", "shared", "sketch"]
    assert len(program.shared_registers()) == 1


def test_state_bits_sums_externs():
    program = TinyProgram()
    assert program.state_bits() == 4 * 32 + 4 * 32 + 16 * 2 * 32


def test_duplicate_handler_rejected():
    with pytest.raises(TypeError):

        class Duplicate(P4Program):
            @handler(EventType.TIMER)
            def a(self, ctx, event):
                pass

            @handler(EventType.TIMER)
            def b(self, ctx, event):
                pass

        Duplicate()


def test_one_method_cannot_handle_two_events():
    with pytest.raises(TypeError):

        class TwoKinds(P4Program):
            @handler(EventType.TIMER)
            @handler(EventType.DEQUEUE)
            def a(self, ctx, event):
                pass


def test_dispatch_packet_event_guards_kind():
    program = TinyProgram()
    with pytest.raises(ValueError):
        program.dispatch_packet_event(EventType.TIMER, ProgramContext(), None, None)


def test_dispatch_event_runs_handler():
    program = TinyProgram()
    event = Event(kind=EventType.TIMER, time_ps=5, meta={"timer_id": 1})
    program.dispatch_event(ProgramContext(), event)
    assert program.timer_events == [event]


def test_base_context_raises_everywhere():
    ctx = ProgramContext()
    with pytest.raises(NotImplementedError):
        ctx.configure_timer(0, 100)
    with pytest.raises(NotImplementedError):
        ctx.generate_packet(None)
    with pytest.raises(NotImplementedError):
        ctx.raise_user_event({})
    with pytest.raises(NotImplementedError):
        ctx.link_up(0)
    with pytest.raises(NotImplementedError):
        _ = ctx.now_ps


class TestDescriptions:
    def test_validate_accepts_supported(self):
        LOGICAL_EVENT_DRIVEN.validate_events(set(EventType))

    def test_validate_rejects_unsupported(self):
        with pytest.raises(UnsupportedEventError) as excinfo:
            BASELINE_PSA.validate_events({EventType.ENQUEUE, EventType.TIMER})
        assert "buffer_enqueue" in str(excinfo.value)
        assert "timer_expiration" in str(excinfo.value)

    def test_emulated_events_count_as_supported(self):
        TOFINO_LIKE.validate_events({EventType.TIMER, EventType.DEQUEUE})
        with pytest.raises(UnsupportedEventError):
            TOFINO_LIKE.validate_events({EventType.LINK_STATUS})

    def test_support_row_labels(self):
        row = TOFINO_LIKE.support_row()
        assert row[EventType.TIMER.value] == "emulated"
        assert row[EventType.INGRESS_PACKET.value] == "native"
        assert row[EventType.USER.value] == "—"

    def test_sume_matches_paper_section5(self):
        # "regular P4 packet events, plus enqueue, dequeue, and drop
        # events, timer events, link status change events".
        assert SUME_EVENT_SWITCH.supports(EventType.ENQUEUE)
        assert SUME_EVENT_SWITCH.supports(EventType.BUFFER_OVERFLOW)
        assert SUME_EVENT_SWITCH.supports(EventType.LINK_STATUS)
        assert not SUME_EVENT_SWITCH.supports(EventType.EGRESS_PACKET)
        assert not SUME_EVENT_SWITCH.supports(EventType.USER)


def test_event_require_pkt():
    event = Event(kind=EventType.TIMER, time_ps=0)
    with pytest.raises(ValueError):
        event.require_pkt()
