"""Unit and property tests for the PIFO and time-window externs."""

import pytest
from hypothesis import given, strategies as st

from repro.pisa.externs.pifo import PifoQueue
from repro.pisa.externs.window import ShiftRegister, SlidingWindow


class TestPifo:
    def test_pops_in_rank_order(self):
        pifo = PifoQueue(8)
        for rank, item in [(5, "e"), (1, "a"), (3, "c")]:
            pifo.push(rank, item)
        assert pifo.drain() == ["a", "c", "e"]

    def test_ties_pop_fifo(self):
        pifo = PifoQueue(8)
        pifo.push(1, "first")
        pifo.push(1, "second")
        pifo.push(1, "third")
        assert pifo.drain() == ["first", "second", "third"]

    def test_full_rejects_worse_rank(self):
        pifo = PifoQueue(2)
        pifo.push(1, "a")
        pifo.push(2, "b")
        rejected = pifo.push(3, "c")  # worse than the tail
        assert rejected == "c"
        assert pifo.reject_count == 1
        assert len(pifo) == 2

    def test_full_evicts_tail_for_better_rank(self):
        pifo = PifoQueue(2)
        pifo.push(5, "worst")
        pifo.push(1, "best")
        evicted = pifo.push(3, "middle")
        assert evicted == "worst"
        assert pifo.evict_count == 1
        assert pifo.drain() == ["best", "middle"]

    def test_equal_rank_push_to_full_is_rejected(self):
        pifo = PifoQueue(1)
        pifo.push(2, "a")
        assert pifo.push(2, "b") == "b"  # tie goes to the incumbent

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PifoQueue(1).pop()

    def test_peek_rank(self):
        pifo = PifoQueue(4)
        assert pifo.peek_rank() is None
        pifo.push(7, "x")
        assert pifo.peek_rank() == 7

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PifoQueue(0)

    @given(st.lists(st.integers(0, 1_000), max_size=200))
    def test_unbounded_pop_order_property(self, ranks):
        pifo = PifoQueue(max(1, len(ranks)))
        for i, rank in enumerate(ranks):
            pifo.push(rank, (rank, i))
        popped = pifo.drain()
        assert [r for r, _i in popped] == sorted(ranks)
        # FIFO among equal ranks: insertion index increases within ties.
        for (ra, ia), (rb, ib) in zip(popped, popped[1:]):
            if ra == rb:
                assert ia < ib

    @given(st.lists(st.integers(0, 100), min_size=5, max_size=100))
    def test_bounded_keeps_best_property(self, ranks):
        capacity = 4
        pifo = PifoQueue(capacity)
        for rank in ranks:
            pifo.push(rank, rank)
        kept = pifo.drain()
        assert kept == sorted(kept)
        assert len(kept) == min(capacity, len(ranks))
        # Everything kept is no worse than the best rejected ranks.
        assert max(kept) <= max(ranks)


class TestShiftRegister:
    def test_accumulate_and_shift(self):
        shift = ShiftRegister(3)
        shift.accumulate(10)
        shift.accumulate(5)
        assert shift.head() == 15
        shift.shift()
        shift.accumulate(20)
        assert shift.snapshot() == [20, 15, 0]
        assert shift.window_sum() == 35
        assert shift.window_max() == 20

    def test_shift_returns_expired_value(self):
        shift = ShiftRegister(2)
        shift.accumulate(1)
        shift.shift()  # [0, 1]
        shift.accumulate(2)
        assert shift.shift() == 1  # the 1 fell out
        assert shift.window_sum() == 2

    def test_window_sum_over_exactly_n_slots(self):
        shift = ShiftRegister(4)
        for value in (1, 2, 3, 4, 5):
            shift.accumulate(value)
            shift.shift()
        # Each value survives slots-1 = 3 shifts after its own; the head
        # slot is a fresh zero, so only the last three values remain.
        assert shift.snapshot() == [0, 5, 4, 3]
        assert shift.window_sum() == 3 + 4 + 5

    def test_invalid_slots(self):
        with pytest.raises(ValueError):
            ShiftRegister(0)


class TestSlidingWindow:
    def test_per_index_isolation(self):
        windows = SlidingWindow(4, slots=2)
        windows.accumulate(0, 100)
        windows.accumulate(3, 7)
        assert windows.window_sum(0) == 100
        assert windows.window_sum(3) == 7
        assert windows.window_sum(1) == 0

    def test_shift_all(self):
        windows = SlidingWindow(2, slots=2)
        windows.accumulate(0, 10)
        windows.shift_all()
        windows.shift_all()
        assert windows.window_sum(0) == 0

    def test_rate_math(self):
        windows = SlidingWindow(1, slots=4)
        # 1000 bytes over a 4 x 250 µs = 1 ms window → 8 Mb/s.
        windows.accumulate(0, 1_000)
        rate = windows.rate_bps(0, slot_duration_ps=250_000_000)
        assert rate == pytest.approx(8e6)

    def test_bounds(self):
        windows = SlidingWindow(2, slots=2)
        with pytest.raises(IndexError):
            windows.accumulate(2, 1)
        with pytest.raises(ValueError):
            windows.rate_bps(0, 0)

    def test_state_bits(self):
        assert SlidingWindow(10, slots=4).state_bits == 10 * 4 * 32
