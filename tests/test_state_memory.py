"""Unit tests for the memory-port model."""

import pytest

from repro.pisa.externs.register import Register
from repro.state.memory import MemoryPortModel, PortConflictError


def test_accesses_within_port_budget():
    memory = MemoryPortModel(Register(8), ports=2, strict=True)
    memory.read(cycle=0, index=0)
    memory.write(cycle=0, index=1, value=5)
    memory.read(cycle=1, index=2)
    assert memory.conflict_cycles == 0
    assert memory.total_accesses == 3
    assert memory.busiest_cycle_accesses == 2


def test_conflict_counted_in_lenient_mode():
    memory = MemoryPortModel(Register(8), ports=1, strict=False)
    memory.read(0, 0)
    memory.read(0, 1)  # second access in the same cycle: conflict
    memory.read(0, 2)  # third: another conflicting access, same cycle
    assert memory.conflict_cycles == 1
    assert memory.conflict_accesses == 2
    assert memory.busiest_cycle_accesses == 3


def test_conflict_raises_in_strict_mode():
    memory = MemoryPortModel(Register(8), ports=1, strict=True)
    memory.read(0, 0)
    with pytest.raises(PortConflictError):
        memory.write(0, 0, 1)


def test_new_cycle_resets_port_budget():
    memory = MemoryPortModel(Register(8), ports=1, strict=True)
    for cycle in range(100):
        memory.add(cycle, cycle % 8, 1)
    assert memory.conflict_cycles == 0


def test_operations_delegate_to_register():
    register = Register(4)
    memory = MemoryPortModel(register, ports=4)
    memory.write(0, 2, 10)
    assert memory.add(0, 2, 5) == 15
    assert memory.read(0, 2) == 15
    assert register.read(2) == 15


def test_report():
    memory = MemoryPortModel(Register(4), ports=1, strict=False)
    memory.read(0, 0)
    memory.read(0, 1)
    report = memory.report()
    assert report == {
        "ports": 1,
        "total_accesses": 2,
        "conflict_cycles": 1,
        "conflict_accesses": 1,
        "busiest_cycle_accesses": 2,
    }


def test_invalid_ports():
    with pytest.raises(ValueError):
        MemoryPortModel(Register(4), ports=0)
