"""Unit and end-to-end tests for the language compiler/interpreter."""

import pytest

from app_harness import H0_IP, H1_IP, single_switch

from repro.arch.events import EventType
from repro.lang import LangSemanticError, compile_program
from repro.lang.errors import LangRuntimeError
from repro.packet.builder import make_udp_packet
from repro.packet.hashing import ip_pair_hash
from repro.sim.units import MICROSECONDS

MICROBURST_SOURCE = """
program microburst;

shared_register<32>(1024) bufSize_reg;
const FLOW_THRESH = 3000;

on ingress_packet {
    var flowID = hash(ip.src, ip.dst, 1024);
    set_enq_meta("flowID", flowID);
    set_enq_meta("pkt_len", pkt.len);
    set_deq_meta("flowID", flowID);
    set_deq_meta("pkt_len", pkt.len);
    var bufSize = bufSize_reg.read(flowID);
    if (bufSize > FLOW_THRESH) {
        mark(flowID);
    }
    forward_by_ip();
}

on buffer_enqueue {
    bufSize_reg.add(event.flowID, event.pkt_len);
}

on buffer_dequeue {
    bufSize_reg.sub(event.flowID, event.pkt_len);
}
"""


class TestCompileChecks:
    def test_valid_program_compiles(self):
        program = compile_program(MICROBURST_SOURCE)
        assert program.name == "microburst"
        assert program.handled_events() == {
            EventType.INGRESS_PACKET,
            EventType.ENQUEUE,
            EventType.DEQUEUE,
        }
        assert program.state_bits() == 1024 * 32

    def test_unknown_event_rejected(self):
        with pytest.raises(LangSemanticError) as excinfo:
            compile_program("program p;\non lunar_eclipse { drop(); }\n")
        assert "lunar_eclipse" in str(excinfo.value)

    def test_duplicate_handler_rejected(self):
        with pytest.raises(LangSemanticError):
            compile_program(
                "program p;\n"
                "on timer_expiration { mark(1); }\n"
                "on timer_expiration { mark(2); }\n"
            )

    def test_unknown_register_rejected(self):
        with pytest.raises(LangSemanticError):
            compile_program("program p;\non timer_expiration { ghost.add(0, 1); }\n")

    def test_unknown_register_method_rejected(self):
        with pytest.raises(LangSemanticError):
            compile_program(
                "program p;\nregister<32>(4) r;\n"
                "on timer_expiration { r.increment(0); }\n"
            )

    def test_register_method_arity_checked(self):
        with pytest.raises(LangSemanticError):
            compile_program(
                "program p;\nregister<32>(4) r;\n"
                "on timer_expiration { r.write(0); }\n"
            )

    def test_unknown_builtin_rejected(self):
        with pytest.raises(LangSemanticError):
            compile_program("program p;\non timer_expiration { frobnicate(); }\n")

    def test_builtin_arity_checked(self):
        with pytest.raises(LangSemanticError):
            compile_program("program p;\non ingress_packet { forward(); }\n")

    def test_packet_builtin_rejected_in_event_handler(self):
        with pytest.raises(LangSemanticError) as excinfo:
            compile_program("program p;\non buffer_enqueue { drop(); }\n")
        assert "packet-event handlers" in str(excinfo.value)

    def test_header_fields_rejected_in_event_handler(self):
        with pytest.raises(LangSemanticError):
            compile_program("program p;\non timer_expiration { mark(ip.src); }\n")

    def test_event_fields_rejected_in_packet_handler(self):
        with pytest.raises(LangSemanticError):
            compile_program("program p;\non ingress_packet { mark(event.x); }\n")

    def test_configure_timer_only_in_init(self):
        with pytest.raises(LangSemanticError):
            compile_program(
                "program p;\non ingress_packet { configure_timer(0, 10); }\n"
            )
        compile_program("program p;\ninit { configure_timer(0, 10); }\n")

    def test_unknown_name_rejected(self):
        with pytest.raises(LangSemanticError):
            compile_program("program p;\non timer_expiration { mark(undeclared); }\n")

    def test_assign_before_var_rejected(self):
        with pytest.raises(LangSemanticError):
            compile_program("program p;\non timer_expiration { x = 1; }\n")

    def test_branch_scopes_do_not_leak(self):
        with pytest.raises(LangSemanticError):
            compile_program(
                "program p;\n"
                "on timer_expiration { if (1) { var x = 1; } mark(x); }\n"
            )

    def test_unknown_header_field_rejected(self):
        with pytest.raises(LangSemanticError):
            compile_program("program p;\non ingress_packet { mark(ip.color); }\n")

    def test_duplicate_register_rejected(self):
        with pytest.raises(LangSemanticError):
            compile_program(
                "program p;\nregister<32>(4) r;\nregister<32>(8) r;\n"
            )


class TestExecution:
    def test_microburst_end_to_end(self):
        program = compile_program(MICROBURST_SOURCE)
        network, switch, sink = single_switch(program)
        switch.tm.set_port_rate(1, 0.5)
        h0 = network.hosts["h0"]
        for i in range(10):
            network.sim.call_at(
                1_000 + i * 10_000,
                h0.send,
                make_udp_packet(H0_IP, H1_IP, payload_len=1400),
            )
        network.run(until_ps=2_000 * MICROSECONDS)
        flow_id = ip_pair_hash(H0_IP, H1_IP, 1024)
        assert flow_id in program.marked_values()
        assert sink.packets == 10
        # All state drained back to zero afterwards.
        assert program.registers["bufSize_reg"].nonzero_count() == 0

    def test_source_program_matches_native_detector(self):
        """The DSL microburst and the native one mark the same flow."""
        from repro.apps.microburst import MicroburstDetector

        native = MicroburstDetector(num_regs=1024, flow_thresh_bytes=3_000)

        def run(program):
            network, switch, sink = single_switch(program)
            switch.tm.set_port_rate(1, 0.5)
            h0 = network.hosts["h0"]
            for i in range(10):
                network.sim.call_at(
                    1_000 + i * 10_000,
                    h0.send,
                    make_udp_packet(H0_IP, H1_IP, payload_len=1400),
                )
            network.run(until_ps=2_000 * MICROSECONDS)

        compiled = compile_program(MICROBURST_SOURCE)
        run(compiled)
        run(native)
        assert set(compiled.marked_values()) == set(native.detected_flows())

    def test_timer_and_init(self):
        source = (
            "program ticker;\n"
            "register<32>(1) ticks;\n"
            "init { configure_timer(0, 1000000); }\n"
            "on timer_expiration { ticks.add(0, 1); log(now()); }\n"
        )
        program = compile_program(source)
        network, switch, sink = single_switch(program, install_routes=False)
        network.run(until_ps=3_500_000)
        assert program.registers["ticks"].read(0) == 3
        # Handlers run after merger wait + pipeline latency (45 ns on
        # the SUME model), so now() trails each firing slightly.
        fired = [entry[0] for entry in program.logs]
        assert [t // 1_000_000 for t in fired] == [1, 2, 3]
        assert all(t % 1_000_000 < 100_000 for t in fired)

    def test_arithmetic_and_control_flow(self):
        source = (
            "program math;\n"
            "on ingress_packet {\n"
            "  var x = (10 - 4) / 3;\n"
            "  var y = x % 2;\n"
            "  if (y == 0 && x > 1) { mark(x); } else { mark(0 - 1); }\n"
            "  drop();\n"
            "}\n"
        )
        program = compile_program(source)
        network, switch, sink = single_switch(program, install_routes=False)
        network.hosts["h0"].send(make_udp_packet(H0_IP, H1_IP))
        network.run()
        assert program.marks == [(2,)]

    def test_runtime_error_on_missing_event_key(self):
        source = "program p;\non buffer_enqueue { mark(event.nonexistent); }\n"
        program = compile_program(source)
        network, switch, sink = single_switch(program, install_routes=False)
        network.hosts["h0"].send(make_udp_packet(H0_IP, H1_IP))
        # forward_by_ip was never called → drop; but enqueue never fires
        # since the packet was dropped at ingress... send via a program
        # that forwards: instead directly dispatch the handler.
        from repro.arch.events import Event

        with pytest.raises(LangRuntimeError):
            program.dispatch_event(
                switch.ctx, Event(EventType.ENQUEUE, 0, meta={"pkt_len": 1})
            )

    def test_drop_and_priority_builtins(self):
        source = (
            "program steer;\n"
            "on ingress_packet {\n"
            "  set_priority(5);\n"
            "  set_queue(1);\n"
            "  if (udp.dport == 9) { drop(); } else { forward(1); }\n"
            "}\n"
        )
        program = compile_program(source)
        network, switch, sink = single_switch(program, install_routes=False)
        network.hosts["h0"].send(make_udp_packet(H0_IP, H1_IP, dport=9))
        network.hosts["h0"].send(make_udp_packet(H0_IP, H1_IP, dport=10))
        network.run()
        assert sink.packets == 1
        assert switch.dropped_by_program == 1
