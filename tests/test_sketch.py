"""Unit and property tests for the sketch externs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pisa.externs.sketch import BloomFilter, CountMinSketch


class TestCountMinSketch:
    def test_query_counts_inserted_keys(self):
        cms = CountMinSketch(width=256, depth=3)
        cms.update(b"flow-a", 5)
        cms.update(b"flow-a", 3)
        assert cms.query(b"flow-a") >= 8

    def test_unseen_key_can_only_overestimate(self):
        cms = CountMinSketch(width=1024, depth=3)
        for i in range(50):
            cms.update(f"flow-{i}".encode(), 1)
        assert cms.query(b"never-seen") >= 0

    def test_clear(self):
        cms = CountMinSketch(width=64, depth=2)
        cms.update(b"x", 10)
        cms.clear()
        assert cms.query(b"x") == 0
        assert cms.total() == 0

    def test_total_tracks_insertions(self):
        cms = CountMinSketch(width=64, depth=2)
        cms.update(b"a", 3)
        cms.update(b"b", 4)
        assert cms.total() == 7

    def test_counts_and_footprint(self):
        cms = CountMinSketch(width=100, depth=4)
        assert cms.counter_count == 400
        assert cms.state_bits == 400 * 32

    def test_negative_count_rejected(self):
        cms = CountMinSketch(16, 2)
        with pytest.raises(ValueError):
            cms.update(b"x", -1)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            CountMinSketch(0, 2)
        with pytest.raises(ValueError):
            CountMinSketch(10, 0)

    @settings(max_examples=40)
    @given(
        st.dictionaries(
            st.binary(min_size=1, max_size=8),
            st.integers(1, 50),
            min_size=1,
            max_size=40,
        )
    )
    def test_never_underestimates_property(self, truth):
        """The CMS guarantee: estimate >= true count, always."""
        cms = CountMinSketch(width=512, depth=3)
        for key, count in truth.items():
            cms.update(key, count)
        for key, count in truth.items():
            assert cms.query(key) >= count

    def test_error_bound_statistical(self):
        """Estimate error stays within the 2N/width bound for most keys."""
        cms = CountMinSketch(width=1024, depth=4)
        total = 0
        for i in range(300):
            cms.update(f"k{i}".encode(), i % 7 + 1)
            total += i % 7 + 1
        bound = 2 * total / 1024
        violations = sum(
            1
            for i in range(300)
            if cms.query(f"k{i}".encode()) - (i % 7 + 1) > bound
        )
        assert violations < 300 * 0.1


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(bits=1024, hashes=3)
        keys = [f"key-{i}".encode() for i in range(100)]
        for key in keys:
            bloom.insert(key)
        assert all(bloom.contains(key) for key in keys)

    @settings(max_examples=40)
    @given(st.sets(st.binary(min_size=1, max_size=12), max_size=50))
    def test_no_false_negatives_property(self, keys):
        bloom = BloomFilter(bits=2048, hashes=3)
        for key in keys:
            bloom.insert(key)
        assert all(bloom.contains(key) for key in keys)

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter(bits=4096, hashes=3)
        for i in range(200):
            bloom.insert(f"in-{i}".encode())
        false_positives = sum(
            1 for i in range(1_000) if bloom.contains(f"out-{i}".encode())
        )
        assert false_positives < 100  # well under 10%

    def test_clear_and_fill_ratio(self):
        bloom = BloomFilter(bits=128, hashes=2)
        assert bloom.fill_ratio() == 0.0
        bloom.insert(b"x")
        assert bloom.fill_ratio() > 0.0
        bloom.clear()
        assert not bloom.contains(b"x")

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(0)
        with pytest.raises(ValueError):
            BloomFilter(10, hashes=0)
