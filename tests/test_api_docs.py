"""The API doc generator runs and covers the public surface."""

import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_generator_produces_reference(tmp_path):
    script = os.path.join(REPO, "tools", "gen_api_docs.py")
    result = subprocess.run(
        [sys.executable, script], capture_output=True, text=True, cwd=REPO
    )
    assert result.returncode == 0, result.stderr
    output = os.path.join(REPO, "docs", "API.md")
    assert os.path.exists(output)
    with open(output) as handle:
        text = handle.read()
    # Every core public type appears.
    for symbol in (
        "class Simulator",
        "class Packet",
        "class SharedRegister",
        "class TrafficManager",
        "class SumeEventSwitch",
        "class EventMerger",
        "class AggregationRegisterFile",
        "class P4Program",
        "def compile_program",
        "class CountMinSketch",
        "class PifoQueue",
    ):
        assert symbol in text, f"missing {symbol!r} in API.md"
    # Every top-level package section is present.
    for package in ("repro.sim", "repro.arch", "repro.apps", "repro.lang"):
        assert f"## `{package}`" in text
