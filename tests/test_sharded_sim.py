"""The sharded simulation engine: windows, fingerprints, workers.

Dynamic half of the sharding stack (docs/SCALING.md): bounded windows
on the kernel, the conservative coordinator, serial-vs-sharded
behavior-fingerprint equality, and the persistent-worker plumbing.
"""

import sys

import pytest

from repro.experiments.parallel import (
    PersistentWorker,
    WorkerCrashed,
    default_workers,
)
from repro.experiments.shard_exp import (
    ShardScenario,
    expected_packets,
    run_serial,
    run_sharded,
    scenario_partition,
)
from repro.sim import SimulationError, Simulator
from repro.sim.shard import ShardedSimulator, behavior_fingerprint


# ---------------------------------------------------------------------------
# Kernel: run_until — the bounded-window primitive
# ---------------------------------------------------------------------------


def test_run_until_is_exclusive_and_lands_on_bound():
    sim = Simulator()
    fired = []
    for t in (10, 20, 30):
        sim.call_at(t, fired.append, t)
    assert sim.run_until(30) == 2
    assert fired == [10, 20]
    assert sim.now_ps == 30
    # The event AT the bound is still pending and runs next window.
    assert sim.run_until(31) == 1
    assert fired == [10, 20, 30]


def test_run_until_equal_bound_is_noop():
    sim = Simulator()
    sim.call_at(50, lambda: None)
    sim.run_until(50)
    assert sim.run_until(50) == 0
    assert sim.now_ps == 50


def test_run_until_rejects_past_bound():
    sim = Simulator()
    sim.call_at(100, lambda: None)
    sim.run_until(100)
    with pytest.raises(SimulationError):
        sim.run_until(99)


def test_run_until_allows_call_at_on_window_edge():
    # A boundary packet delivered exactly at W must be schedulable
    # after run_until(W) — the coordinator relies on this.
    sim = Simulator()
    fired = []
    sim.call_at(10, fired.append, 10)
    sim.run_until(40)
    sim.call_at(40, fired.append, 40)
    sim.run()
    assert fired == [10, 40]


def test_run_until_empty_queue_advances_clock():
    sim = Simulator()
    assert sim.run_until(1_000) == 0
    assert sim.now_ps == 1_000


# ---------------------------------------------------------------------------
# Sharded == serial, by behavior fingerprint
# ---------------------------------------------------------------------------

LEAFSPINE = ShardScenario(
    topology="leafspine",
    leaf_count=4,
    spine_count=2,
    hosts_per_leaf=2,
    waves=1,
    packets_per_sender=2,
)
FATTREE = ShardScenario(topology="fattree", k=4, waves=1, packets_per_sender=2)


def test_leafspine_two_shards_match_serial_inline():
    serial = run_serial(LEAFSPINE)
    sharded = run_sharded(LEAFSPINE, shards=2, mode="inline")
    assert sharded.fingerprint == serial.fingerprint
    assert sharded.total_received() == expected_packets(LEAFSPINE)
    assert sharded.stats.windows > 0
    assert sharded.stats.total("boundary_tx") > 0


@pytest.mark.parametrize("shards", [2, 4])
def test_fattree_shards_match_serial_inline(shards):
    serial = run_serial(FATTREE)
    sharded = run_sharded(FATTREE, shards=shards, mode="inline")
    assert sharded.fingerprint == serial.fingerprint
    assert sharded.total_received() == expected_packets(FATTREE)


def test_sharded_run_is_reproducible():
    a = run_sharded(FATTREE, shards=2, mode="inline")
    b = run_sharded(FATTREE, shards=2, mode="inline")
    assert a.fingerprint == b.fingerprint
    assert a.stats.windows == b.stats.windows


def test_zipf_workload_reproducible_across_shard_counts():
    scenario = ShardScenario(
        topology="leafspine",
        leaf_count=4,
        spine_count=2,
        hosts_per_leaf=2,
        workload="zipf",
        packets_per_sender=3,
    )
    a = run_sharded(scenario, shards=2, mode="inline")
    b = run_sharded(scenario, shards=2, mode="inline")
    assert a.fingerprint == b.fingerprint


@pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"), reason="needs POSIX multiprocessing"
)
def test_process_mode_matches_serial():
    serial = run_serial(LEAFSPINE)
    sharded = run_sharded(LEAFSPINE, shards=2, mode="process")
    assert sharded.fingerprint == serial.fingerprint
    assert sharded.total_received() == expected_packets(LEAFSPINE)


def test_zero_cut_partition_runs_one_unbounded_window():
    sharded = run_sharded(LEAFSPINE, shards=1, mode="inline")
    serial = run_serial(LEAFSPINE)
    assert sharded.fingerprint == serial.fingerprint
    assert sharded.stats.windows == 1


def test_sharded_simulator_rejects_bad_mode():
    part = scenario_partition(FATTREE, 2)
    with pytest.raises(ValueError):
        ShardedSimulator(part, lambda shard_id: None, mode="threads")


def test_fingerprint_is_order_insensitive():
    a = behavior_fingerprint({"h": [(10, 64), (20, 64)]})
    b = behavior_fingerprint({"h": [(20, 64), (10, 64)]})
    c = behavior_fingerprint({"h": [(10, 64), (21, 64)]})
    assert a == b != c
    assert a["h"][0] == 2  # packets
    assert a["h"][1] == 128  # bytes


# ---------------------------------------------------------------------------
# Worker plumbing
# ---------------------------------------------------------------------------


def test_default_workers_prefers_affinity(monkeypatch):
    import os

    if hasattr(os, "sched_getaffinity"):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1, 2})
        assert default_workers() == 3
    monkeypatch.setattr(
        os, "sched_getaffinity", lambda pid: (_ for _ in ()).throw(OSError()),
        raising=False,
    )
    assert default_workers() >= 1


def _echo_main(conn):
    msg = conn.recv()
    conn.send(("echo", msg))


def _dying_main(conn):
    raise SystemExit(3)


@pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"), reason="needs POSIX multiprocessing"
)
def test_persistent_worker_roundtrip():
    with PersistentWorker(_echo_main) as worker:
        worker.send(("ping",))
        assert worker.recv() == ("echo", ("ping",))


@pytest.mark.skipif(
    sys.platform not in ("linux", "darwin"), reason="needs POSIX multiprocessing"
)
def test_persistent_worker_crash_raises():
    worker = PersistentWorker(_dying_main)
    try:
        with pytest.raises(WorkerCrashed):
            worker.recv()
    finally:
        worker.close()
