"""End-to-end flow fastpath (:mod:`repro.pisa.fastpath`).

Fusing a multi-hop delivery into one kernel event may only ever change
*speed*, never *behavior*: the per-hop machinery is the reference, and
every test here either demands byte-identical end state with the
fastpath on vs off — including runs where a fault interrupts a fused
window mid-flight and the delivery must materialize back into the
per-hop machinery — or pokes the guard machinery (generation vectors,
quiescence, negative entries) that keeps the guarantee honest.
"""

import json
import os
import pickle
import subprocess
import sys

import pytest

from repro.apps.l3fwd import L3Router
from repro.experiments.factories import make_baseline_switch
from repro.faults.injector import Degradation
from repro.net.topology import build_linear
from repro.packet.builder import make_udp_packet
from repro.pisa.fastpath import FLOW_FASTPATH_ENV, FlowFastpath, env_enabled
from repro.sim.rng import SeededRng

H0_IP = 0x0A00_0001
H1_IP = 0x0A00_0002


@pytest.fixture(autouse=True)
def _fastpath_on_by_default(monkeypatch):
    # CI runs the whole suite under both REPRO_FLOW_FASTPATH=1 and =0;
    # this module exercises the fastpath itself, so pin the default ON
    # and let individual tests override as needed.
    monkeypatch.setenv(FLOW_FASTPATH_ENV, "1")


def _fresh_l3():
    program = L3Router()
    program.install_host_routes({H0_IP: 0, H1_IP: 1})
    return program


def _build_chain(fastpath, switch_count=3):
    network = build_linear(
        make_baseline_switch(flow_cache=True, fastpath=fastpath),
        switch_count=switch_count,
    )
    for name in sorted(network.switches):
        network.switches[name].load_program(_fresh_l3())
    received = []
    network.hosts["h1"].add_sink(
        lambda p: received.append((network.sim.now_ps, p.total_len))
    )
    return network, received


def _send_n(network, count, spacing_ps=8_000_000, flows=1):
    h0 = network.hosts["h0"]
    for i in range(count):
        src = H0_IP + 16 * (i % flows)
        network.sim.call_at(
            1_000 + i * spacing_ps,
            h0.send,
            make_udp_packet(src, H1_IP, payload_len=200),
        )


def _switch_state(sw):
    return (
        sw.rx_packets,
        tuple(sorted((k.name, v) for k, v in sw.bus.fired.items())),
        tuple(sorted((k.name, v) for k, v in sw.bus.handled.items())),
        tuple(sorted((k.name, v) for k, v in sw.bus.suppressed.items())),
        repr(sw.flow_cache.stats),
        sw.tm.total_enqueued,
        sw.tm.total_dequeued,
        sw.tm.drops_overflow,
        sw.stalled_rx_drops,
        sw.tm.buffer.admitted_packets,
        sw.tm.buffer.max_occupancy_bytes,
        tuple(
            (p.tx_packets, p.tx_bytes, p.busy_time_ps, p.busy, p.enabled)
            for p in sw.tm.ports
        ),
        tuple(tuple(sorted(row.items())) for row in sw.state_summary()),
        sw.ingress_pipeline.packets_processed,
        sw.egress_pipeline.packets_processed,
    )


def _network_state(network, received):
    state = {"arrivals": tuple(received)}
    for name in sorted(network.switches):
        state[name] = _switch_state(network.switches[name])
    state["links"] = tuple(
        tuple(sorted(l.conservation_ledger().items())) for l in network.links
    )
    state["hosts"] = tuple(
        (hn, h.received_packets, h.received_bytes, h.sent_packets)
        for hn, h in sorted(network.hosts.items())
    )
    return state


def _fastpath_totals(network):
    totals = {}
    for name in sorted(network.switches):
        fastpath = network.switches[name].flow_fastpath
        if fastpath is None:
            continue
        for key, value in fastpath.stats.as_dict().items():
            if isinstance(value, int):
                totals[key] = totals.get(key, 0) + value
    return totals


# ----------------------------------------------------------------------
# Env toggle / constructor plumbing
# ----------------------------------------------------------------------
def test_env_enabled_parsing(monkeypatch):
    monkeypatch.delenv(FLOW_FASTPATH_ENV, raising=False)
    assert env_enabled() is True
    for off in ("0", "false", "OFF", "no", ""):
        monkeypatch.setenv(FLOW_FASTPATH_ENV, off)
        assert env_enabled() is False
    monkeypatch.setenv(FLOW_FASTPATH_ENV, "1")
    assert env_enabled() is True


def test_constructor_and_env_toggles(monkeypatch):
    network = build_linear(make_baseline_switch(fastpath=False), switch_count=1)
    assert network.switches["s0"].flow_fastpath is None
    monkeypatch.setenv(FLOW_FASTPATH_ENV, "0")
    network = build_linear(make_baseline_switch(), switch_count=1)
    assert network.switches["s0"].flow_fastpath is None
    monkeypatch.setenv(FLOW_FASTPATH_ENV, "1")
    network = build_linear(make_baseline_switch(), switch_count=1)
    assert isinstance(network.switches["s0"].flow_fastpath, FlowFastpath)


# ----------------------------------------------------------------------
# Equivalence: fused vs per-hop, in-process
# ----------------------------------------------------------------------
@pytest.mark.parametrize("flows", [1, 3])
def test_multi_hop_state_identical_fused_vs_per_hop(flows):
    net_on, recv_on = _build_chain(True)
    _send_n(net_on, 30, flows=flows)
    net_on.run()
    net_off, recv_off = _build_chain(False)
    _send_n(net_off, 30, flows=flows)
    net_off.run()
    totals = _fastpath_totals(net_on)
    assert totals["fused"] > 0  # the fastpath actually engaged
    assert _network_state(net_on, recv_on) == _network_state(net_off, recv_off)


def test_fused_window_collapses_kernel_events():
    net_on, recv_on = _build_chain(True)
    _send_n(net_on, 30)
    net_on.run()
    net_off, recv_off = _build_chain(False)
    _send_n(net_off, 30)
    net_off.run()
    assert len(recv_on) == len(recv_off) == 30
    # One fused event replaces the per-hop delivery/dequeue cascade.
    assert net_on.sim.events_executed < net_off.sim.events_executed / 2


def test_cold_cache_warms_then_fuses():
    network, received = _build_chain(True)
    _send_n(network, 4)
    network.run()
    entry = network.switches["s0"].flow_fastpath
    # Packet 1 misses the cold flow cache (transient, not a negative
    # entry); packets 2-4 fuse against the recorded decisions.
    assert entry.stats.paths_built == 1
    assert entry.stats.fused == 3
    assert entry.stats.fuse_rate == 1.0  # cold misses are not fallbacks


def test_observer_attach_falls_back_with_reason():
    network, received = _build_chain(True)
    _send_n(network, 8)
    seen = []

    class Tap:
        def on_publish(self, bus, event, admitted):
            seen.append(event)

        def on_dispatch(self, bus, event, latency_ps, handled):
            pass

    # A bus observer needs per-hop event visibility: every fuse attempt
    # on the observed switch must fall back, tagged "observer".
    network.switches["s0"].bus.add_observer(Tap())
    network.run()
    entry = network.switches["s0"].flow_fastpath
    assert entry.stats.fused == 0
    assert entry.stats.fallbacks.get("observer", 0) >= 1
    assert len(received) == 8


# ----------------------------------------------------------------------
# Invalidation guards
# ----------------------------------------------------------------------
def test_link_flap_invalidates_and_stays_exact():
    def run(fastpath):
        network, received = _build_chain(fastpath)
        _send_n(network, 12)
        link = network._switch_port_links[("s1", 1)]
        network.sim.call_at(30_000_000, link.set_up, False)
        network.sim.call_at(34_000_000, link.set_up, True)
        network.run()
        return network, received

    net_on, recv_on = run(True)
    net_off, recv_off = run(False)
    assert _network_state(net_on, recv_on) == _network_state(net_off, recv_off)
    assert _fastpath_totals(net_on)["invalidations"] >= 1


def test_route_change_between_windows_invalidates():
    def run(fastpath):
        network, received = _build_chain(fastpath)
        _send_n(network, 12)
        program = network.switches["s1"].program
        # A real control-plane write (DSCP remark on the next hop),
        # timed into the gap between fused windows.
        network.sim.call_at(40_000_500, program.add_next_hop, 1, 1, 13)
        network.run()
        return network, received

    net_on, recv_on = run(True)
    net_off, recv_off = run(False)
    assert _network_state(net_on, recv_on) == _network_state(net_off, recv_off)
    assert _fastpath_totals(net_on)["invalidations"] >= 1


def test_program_reload_clears_paths():
    network, received = _build_chain(True)
    _send_n(network, 6)
    network.run()
    fastpath = network.switches["s0"].flow_fastpath
    assert fastpath._paths
    network.switches["s0"].load_program(_fresh_l3())
    assert not fastpath._paths


# ----------------------------------------------------------------------
# Disruption-time materialization: faults mid-fused-window
# ----------------------------------------------------------------------
# Offsets (ps) from the victim packet's send time, chosen to land the
# fault in each stage of the 3-hop fused window: s0 ingress pipe,
# s0 serializing, s1 egress pipe, and the s1->s2 wire.
_OFFSETS = (20_000, 100_000, 1_560_000, 2_000_000)


def _run_faulted(fastpath, fault, offset):
    network, received = _build_chain(fastpath)
    _send_n(network, 12)
    t = 1_000 + 5 * 8_000_000 + offset
    sim = network.sim
    s1 = network.switches["s1"]
    mid_link = network._switch_port_links[("s1", 1)]
    if fault == "flap":
        sim.call_at(t, mid_link.set_up, False)
        sim.call_at(t + 1_000_000, mid_link.set_up, True)
    elif fault == "stall":
        sim.call_at(t, s1.stall)
        sim.call_at(t + 2_000_000, s1.unstall)
    elif fault == "impair":
        degradation = Degradation(SeededRng(7), 0.5, 0.2, 50_000)
        sim.call_at(t, mid_link.set_impairment, degradation)
        sim.call_at(t + 24_000_000, mid_link.set_impairment, None)
    elif fault == "pause":
        sim.call_at(t, s1.tm.set_port_enabled, 1, False)
        sim.call_at(t + 2_000_000, s1.tm.set_port_enabled, 1, True)
    network.run()
    return _network_state(network, received), _fastpath_totals(network)


@pytest.mark.parametrize("fault", ["flap", "stall", "impair", "pause"])
def test_disruption_materializes_byte_identically(fault):
    materialized = 0
    for offset in _OFFSETS:
        ref, _ = _run_faulted(False, fault, offset)
        fused, totals = _run_faulted(True, fault, offset)
        assert fused == ref, f"{fault}@{offset} diverged"
        materialized += totals["materialized"]
    # At least one offset per fault lands inside a fused window.
    assert materialized >= 1


# ----------------------------------------------------------------------
# Pickling / fork cold start
# ----------------------------------------------------------------------
def test_switch_pickles_and_restarts_cold():
    network = build_linear(
        make_baseline_switch(flow_cache=True, fastpath=True), switch_count=3
    )
    for name in sorted(network.switches):
        network.switches[name].load_program(_fresh_l3())
    received = []
    network.hosts["h1"].add_sink(received.append)
    _send_n(network, 8)
    network.run()
    switch = network.switches["s0"]
    assert switch.flow_fastpath._paths  # warm
    clone = pickle.loads(pickle.dumps(switch))
    assert isinstance(clone.flow_fastpath, FlowFastpath)
    assert clone.flow_fastpath._paths == {}  # cold: rebuilt on demand
    assert clone.flow_fastpath._active == []
    assert clone.rx_packets == switch.rx_packets


# ----------------------------------------------------------------------
# Chaos arm: fused + materialized deliveries under fault injection
# ----------------------------------------------------------------------
def test_chaos_fastpath_arm_cell_holds():
    from repro.faults.chaos import run_cell

    record = run_cell("linkflap", "l3chain", 1, fastpath_arm=True)
    assert record["ok"], record["violations"]
    assert record["arms"] == 3
    assert record["fastpath"]["fused"] > 0


# ----------------------------------------------------------------------
# Subprocess equivalence: whole experiments, env-toggled like CI
# ----------------------------------------------------------------------
_SCENARIO_SCRIPT = """
import dataclasses, json, sys

MS = 1_000_000_000
scenario = sys.argv[1]

if scenario == "microburst":
    from repro.experiments.microburst_exp import run_event_driven
    digest = dataclasses.asdict(run_event_driven(duration_ps=4 * MS, seed=7))
elif scenario == "hula":
    from repro.experiments.hula_exp import run_load_balance
    digest = dataclasses.asdict(run_load_balance(duration_ps=3 * MS, seed=7))
elif scenario == "netcache":
    from repro.experiments.netcache_exp import run_netcache
    digest = dataclasses.asdict(
        run_netcache(duration_ps=8 * MS, shift_at_ps=4 * MS, seed=7)
    )
elif scenario == "l3chain":
    from repro.apps.l3fwd import L3Router
    from repro.experiments.factories import make_baseline_switch
    from repro.net.topology import build_linear
    from repro.packet.builder import make_udp_packet

    network = build_linear(make_baseline_switch(), switch_count=3)
    for name in sorted(network.switches):
        program = L3Router()
        program.install_host_routes({0x0A00_0001: 0, 0x0A00_0002: 1})
        network.switches[name].load_program(program)
    received = []
    network.hosts["h1"].add_sink(received.append)
    for i in range(40):
        network.sim.call_at(
            1_000 + i * 8_000_000,
            network.hosts["h0"].send,
            make_udp_packet(0x0A00_0001 + 16 * (i % 4), 0x0A00_0002, payload_len=200),
        )
    network.run()
    digest = {
        "delivery": [
            (p.payload_len, [(type(h).__name__, h.field_values()) for h in p.headers])
            for p in received
        ],
        "state": [sw.state_summary() for _n, sw in sorted(network.switches.items())],
    }
elif scenario == "fattree_sharded":
    from repro.experiments.shard_exp import ShardScenario, run_sharded

    result = run_sharded(
        ShardScenario(topology="fattree", k=4, waves=1, packets_per_sender=2),
        shards=4,
        mode="inline",
    )
    digest = {
        "digest": result.digest,
        "received": result.total_received(),
    }
else:
    raise SystemExit(f"unknown scenario {scenario!r}")

print(json.dumps(digest, sort_keys=True, default=repr))
"""

SCENARIOS = ("microburst", "hula", "netcache", "l3chain", "fattree_sharded")


def _run_scenario(scenario, fastpath_flag):
    env = dict(os.environ)
    env[FLOW_FASTPATH_ENV] = fastpath_flag
    env["PYTHONPATH"] = "src"
    env["PYTHONHASHSEED"] = "0"
    proc = subprocess.run(
        [sys.executable, "-c", _SCENARIO_SCRIPT, scenario],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_subprocess_fingerprints_identical_fastpath_on_vs_off(scenario):
    off = _run_scenario(scenario, "0")
    on = _run_scenario(scenario, "1")
    assert json.loads(off)  # sanity: the digest is substantive JSON
    assert on == off  # byte-identical stdout, not just equal objects
