"""Batched same-timestamp drain: byte-identical to the unbatched order.

The kernel may drain every callback of one (time, priority) run in a
single batch (``Simulator(batch_drain=True)``, the default) to amortize
heap traffic, but the executed order must stay exactly the portable
(time, priority, seqno) order the unbatched drain produces — on both
the heap and the calendar-wheel backends, including events scheduled
*into* the live batch window and cancellations that land mid-batch.
"""

import pytest

from repro.sim.kernel import BATCH_DRAIN_ENV, Simulator, batch_env_enabled

SCHEDULERS = ("heap", "wheel")
MODES = (True, False)


def record(trace, sim, label):
    trace.append((label, sim.now_ps))


def scripted_run(scheduler, batch):
    """One deterministic scenario exercising same-timestamp pile-ups.

    Returns the executed trace as (label, time) pairs.
    """
    sim = Simulator(scheduler=scheduler, batch_drain=batch)
    trace = []

    # A same-timestamp pile-up with mixed priorities; seqno breaks the
    # remaining ties (scheduling order).
    sim.call_at(100, record, trace, sim, "t100-p5-a", priority=5)
    sim.call_at(100, record, trace, sim, "t100-p0-a", priority=0)
    sim.call_at(100, record, trace, sim, "t100-p5-b", priority=5)
    sim.call_at(100, record, trace, sim, "t100-p2", priority=2)

    # A callback that schedules INTO its own timestamp: the new event
    # must land in the unexecuted tail by (priority, seqno), exactly
    # where the unbatched drain would pop it.
    def spawn_same_time():
        record(trace, sim, "t200-spawner")
        sim.call_at(200, record, trace, sim, "t200-late-p0", priority=0)
        sim.call_at(200, record, trace, sim, "t200-late-p9", priority=9)
        sim.call_at(300, record, trace, sim, "t300-from-200")

    sim.call_at(200, spawn_same_time, priority=1)
    sim.call_at(200, record, trace, sim, "t200-p3", priority=3)

    # A cancellation landing mid-batch: the first t=400 callback cancels
    # a later one in the same (time, priority) run.
    doomed = []

    def cancel_sibling():
        record(trace, sim, "t400-canceller")
        doomed[0].cancel()

    sim.call_at(400, cancel_sibling, priority=7)
    doomed.append(sim.call_at(400, record, trace, sim, "t400-doomed", priority=7))
    sim.call_at(400, record, trace, sim, "t400-survivor", priority=7)

    executed = sim.run()
    assert executed == len(trace)
    return trace


#: The portable order every backend/mode must produce.
EXPECTED = [
    ("t100-p0-a", 100),
    ("t100-p2", 100),
    ("t100-p5-a", 100),
    ("t100-p5-b", 100),
    ("t200-spawner", 200),
    ("t200-late-p0", 200),  # priority 0 sorts before the pending p3
    ("t200-p3", 200),
    ("t200-late-p9", 200),
    ("t300-from-200", 300),
    ("t400-canceller", 400),
    ("t400-survivor", 400),
]


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("batch", MODES)
def test_scripted_order_is_portable(scheduler, batch):
    assert scripted_run(scheduler, batch) == EXPECTED


def test_all_backend_mode_traces_identical():
    traces = {
        (scheduler, batch): scripted_run(scheduler, batch)
        for scheduler in SCHEDULERS
        for batch in MODES
    }
    reference = traces[("heap", False)]
    for key, trace in traces.items():
        assert trace == reference, f"{key} diverged from unbatched heap"


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("batch", MODES)
def test_run_until_window_edge(scheduler, batch):
    """run_until(W) executes strictly-before-W, never the W batch."""
    sim = Simulator(scheduler=scheduler, batch_drain=batch)
    trace = []
    for priority in (4, 0, 2):
        sim.call_at(500, record, trace, sim, f"t500-p{priority}", priority=priority)
        sim.call_at(999, record, trace, sim, f"t999-p{priority}", priority=priority)
        sim.call_at(1000, record, trace, sim, f"t1000-p{priority}", priority=priority)

    sim.run_until(1000)
    assert sim.now_ps == 1000
    assert [label for label, _t in trace] == [
        "t500-p0", "t500-p2", "t500-p4",
        "t999-p0", "t999-p2", "t999-p4",
    ]

    # A boundary event delivered exactly on the window edge is legal and
    # joins the already-queued t=1000 run in (priority, seqno) order.
    sim.call_at(1000, record, trace, sim, "t1000-boundary-p1", priority=1)
    sim.run()
    assert [label for label, _t in trace[6:]] == [
        "t1000-p0", "t1000-boundary-p1", "t1000-p2", "t1000-p4",
    ]


@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_batched_vs_unbatched_counters_match(scheduler):
    for batch in MODES:
        sim = Simulator(scheduler=scheduler, batch_drain=batch)
        for t in (10, 10, 10, 20, 20, 30):
            sim.call_at(t, lambda: None)
        assert sim.pending_events == 6
        assert sim.run() == 6
        assert sim.pending_events == 0
        assert sim.events_executed == 6
        assert sim.now_ps == 30


def test_env_toggle(monkeypatch):
    monkeypatch.setenv(BATCH_DRAIN_ENV, "0")
    assert batch_env_enabled() is False
    assert Simulator().batch_drain is False
    monkeypatch.setenv(BATCH_DRAIN_ENV, "1")
    assert batch_env_enabled() is True
    assert Simulator().batch_drain is True
    monkeypatch.delenv(BATCH_DRAIN_ENV)
    assert Simulator().batch_drain is True  # default on
