"""Unit tests for the AQM and policing programs."""

import pytest

from app_harness import H0_IP, H1_IP, single_switch

from repro.apps.aqm import FredAqm, RedAqm
from repro.apps.policing import FixedFunctionPolicer, TimerTokenBucketPolicer
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext
from repro.packet.builder import make_udp_packet
from repro.pisa.metadata import StandardMetadata
from repro.sim.units import MICROSECONDS


class FakeCtx(ProgramContext):
    def __init__(self, now=0):
        self._now = now

    @property
    def now_ps(self):
        return self._now

    def configure_timer(self, timer_id, period_ps):
        pass


def enq_event(buffer_bytes, flow=0, length=500):
    return Event(
        EventType.ENQUEUE,
        0,
        meta={"buffer_bytes": buffer_bytes, "flowID": flow, "pkt_len": length},
    )


def deq_event(buffer_bytes, flow=0, length=500):
    return Event(
        EventType.DEQUEUE,
        0,
        meta={"buffer_bytes": buffer_bytes, "flowID": flow, "pkt_len": length},
    )


class TestRed:
    def test_validation(self):
        with pytest.raises(ValueError):
            RedAqm(min_thresh_bytes=100, max_thresh_bytes=100)
        with pytest.raises(ValueError):
            RedAqm(max_drop_prob=0)

    def test_ewma_tracks_buffer(self):
        red = RedAqm(min_thresh_bytes=1_000, max_thresh_bytes=5_000, weight_shift=0)
        ctx = FakeCtx()
        red.on_enqueue(ctx, enq_event(4_000))
        # weight_shift=0 → avg snaps to the instantaneous value.
        assert red._avg() == 4_000

    def test_below_min_never_drops(self):
        red = RedAqm(min_thresh_bytes=10_000, max_thresh_bytes=20_000)
        red.install_route(H1_IP, 1)
        ctx = FakeCtx()
        for _ in range(100):
            meta = StandardMetadata()
            red.ingress(ctx, make_udp_packet(H0_IP, H1_IP), meta)
            assert not meta.dropped
        assert red.early_drops == 0

    def test_above_max_always_drops(self):
        red = RedAqm(min_thresh_bytes=100, max_thresh_bytes=200, weight_shift=0)
        red.install_route(H1_IP, 1)
        ctx = FakeCtx()
        red.on_enqueue(ctx, enq_event(10_000))
        meta = StandardMetadata()
        red.ingress(ctx, make_udp_packet(H0_IP, H1_IP), meta)
        assert meta.dropped
        assert red.early_drops == 1

    def test_probabilistic_region(self):
        red = RedAqm(
            min_thresh_bytes=0, max_thresh_bytes=10_000, max_drop_prob=0.5,
            weight_shift=0, seed=1,
        )
        red.install_route(H1_IP, 1)
        ctx = FakeCtx()
        red.on_enqueue(ctx, enq_event(5_000))  # middle → p = 0.25
        drops = 0
        for _ in range(2_000):
            meta = StandardMetadata()
            red.ingress(ctx, make_udp_packet(H0_IP, H1_IP), meta)
            if meta.dropped:
                drops += 1
        assert 0.18 < drops / 2_000 < 0.32


class TestFred:
    def test_validation(self):
        with pytest.raises(ValueError):
            FredAqm(fairness_factor=0)

    def test_active_flow_accounting(self):
        fred = FredAqm(num_regs=64)
        ctx = FakeCtx()
        fred.on_enqueue(ctx, enq_event(0, flow=1, length=500))
        fred.on_enqueue(ctx, enq_event(0, flow=2, length=500))
        fred.on_enqueue(ctx, enq_event(0, flow=1, length=500))
        assert fred.totals.read(0) == 1_500
        assert fred.totals.read(1) == 2  # two active flows
        fred.on_dequeue(ctx, deq_event(0, flow=1, length=500))
        fred.on_dequeue(ctx, deq_event(0, flow=1, length=500))
        assert fred.totals.read(1) == 1  # flow 1 drained out

    def test_over_share_flow_dropped(self):
        fred = FredAqm(num_regs=64, fairness_factor=1.0, min_buffer_bytes=100)
        fred.install_route(H1_IP, 1)
        ctx = FakeCtx()
        # Flow occupying everything while another flow is active.
        from repro.packet.hashing import flow_hash

        hog_pkt = make_udp_packet(H0_IP, H1_IP, sport=1, dport=2)
        hog = flow_hash(hog_pkt, 64)
        fred.on_enqueue(ctx, enq_event(0, flow=hog, length=9_000))
        other = (hog + 1) % 64
        fred.on_enqueue(ctx, enq_event(0, flow=other, length=100))
        meta = StandardMetadata()
        fred.ingress(ctx, hog_pkt, meta)
        assert meta.dropped
        assert fred.unfair_drops == 1

    def test_timer_samples_series(self):
        fred = FredAqm(sample_period_ps=100)
        ctx = FakeCtx(now=500)
        fred.on_enqueue(ctx, enq_event(0, flow=3, length=700))
        fred.on_timer(ctx, Event(EventType.TIMER, 500))
        assert fred.occupancy_series == [(500, 700, 1)]

    def test_end_to_end_fairness_signals(self):
        fred = FredAqm(num_regs=64, sample_period_ps=100 * MICROSECONDS)
        network, switch, sink = single_switch(fred)
        h0 = network.hosts["h0"]
        for i in range(5):
            network.sim.call_at(
                1_000 + i * 100_000,
                h0.send,
                make_udp_packet(H0_IP, H1_IP, payload_len=958),
            )
        network.run(until_ps=2_000 * MICROSECONDS)
        assert sink.packets == 5
        assert fred.totals.read(0) == 0  # all drained
        assert len(fred.occupancy_series) >= 10


class TestPie:
    def make(self, **kwargs):
        from repro.apps.aqm import PieAqm

        defaults = dict(target_delay_ps=10_000_000, update_period_ps=100_000_000)
        defaults.update(kwargs)
        program = PieAqm(**defaults)
        program.install_route(H1_IP, 1)
        return program

    def test_validation(self):
        from repro.apps.aqm import PieAqm

        with pytest.raises(ValueError):
            PieAqm(target_delay_ps=0)
        with pytest.raises(ValueError):
            PieAqm(drain_rate_gbps=0)

    def test_probability_rises_when_latency_exceeds_target(self):
        program = self.make()
        ctx = FakeCtx()
        # 50 KB buffered at 10 Gb/s ≈ 40 µs latency, over the 10 µs target.
        program.on_enqueue(ctx, enq_event(50_000))
        program.on_timer(ctx, Event(EventType.TIMER, 0))
        assert program.drop_probability() > 0

    def test_probability_falls_back_when_queue_drains(self):
        program = self.make()
        ctx = FakeCtx()
        program.on_enqueue(ctx, enq_event(50_000))
        for _ in range(5):
            program.on_timer(ctx, Event(EventType.TIMER, 0))
        high = program.drop_probability()
        program.on_dequeue(ctx, deq_event(0))
        for _ in range(50):
            program.on_timer(ctx, Event(EventType.TIMER, 0))
        assert program.drop_probability() < high

    def test_probability_clamped_to_unit_interval(self):
        program = self.make()
        ctx = FakeCtx()
        program.on_enqueue(ctx, enq_event(10_000_000))
        for _ in range(1_000):
            program.on_timer(ctx, Event(EventType.TIMER, 0))
        assert program.drop_probability() <= 1.0

    def test_zero_probability_never_drops(self):
        program = self.make()
        ctx = FakeCtx()
        for _ in range(50):
            meta = StandardMetadata()
            program.ingress(ctx, make_udp_packet(H0_IP, H1_IP), meta)
            assert not meta.dropped


class TestTimerPolicer:
    def test_refill_capped_at_burst(self):
        policer = TimerTokenBucketPolicer(
            num_flows=4, rate_bps=1e9, burst_bytes=1_000, refill_period_ps=1_000_000
        )
        ctx = FakeCtx()
        policer.on_timer(ctx, Event(EventType.TIMER, 0))
        assert policer.tokens.read(0) == 1_000  # capped

    def test_conform_and_drop(self):
        policer = TimerTokenBucketPolicer(
            num_flows=64, rate_bps=1e9, burst_bytes=600
        )
        policer.install_route(H1_IP, 1)
        ctx = FakeCtx()
        pkt = make_udp_packet(H0_IP, H1_IP, payload_len=458)  # 500B
        meta = StandardMetadata()
        policer.ingress(ctx, pkt, meta)
        assert not meta.dropped
        meta2 = StandardMetadata()
        policer.ingress(ctx, pkt.clone(), meta2)
        assert meta2.dropped  # only 100B left in the bucket
        assert sum(policer.dropped.values()) == 1

    def test_borrowing_pool(self):
        policer = TimerTokenBucketPolicer(
            num_flows=4, rate_bps=1e9, burst_bytes=1_000, borrowing=True
        )
        ctx = FakeCtx()
        # Refill with all buckets full spills into the shared pool.
        policer.on_timer(ctx, Event(EventType.TIMER, 0))
        assert policer.shared_pool.read(0) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TimerTokenBucketPolicer(rate_bps=0)
        with pytest.raises(ValueError):
            TimerTokenBucketPolicer(burst_bytes=0)


class TestFixedPolicer:
    def test_meter_colors_drive_drops(self):
        policer = FixedFunctionPolicer(num_flows=64, rate_bps=1e9, burst_bytes=600)
        policer.install_route(H1_IP, 1)
        ctx = FakeCtx()
        pkt = make_udp_packet(H0_IP, H1_IP, payload_len=458)
        meta = StandardMetadata()
        policer.ingress(ctx, pkt, meta)
        assert not meta.dropped
        meta2 = StandardMetadata()
        policer.ingress(ctx, pkt.clone(), meta2)
        assert meta2.dropped
