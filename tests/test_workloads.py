"""Unit tests for the workload generators and measurement sinks."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.units import MILLISECONDS, SECONDS
from repro.workloads.base import FlowSpec
from repro.workloads.bursts import OnOffBurst
from repro.workloads.cbr import ConstantBitRate
from repro.workloads.incast import IncastWave
from repro.workloads.poisson import PoissonTraffic
from repro.workloads.sink import LatencySink, PacketSink
from repro.workloads.zipf import ZipfFlowMix

FLOW = FlowSpec(src_ip=0x0A000001, dst_ip=0x0A000002, sport=1, dport=2)


def run_generator(gen, sim, duration_ps):
    gen.start(at_ps=0)
    sim.run(until_ps=duration_ps)
    return gen


class TestCbr:
    def test_rate_accuracy(self):
        sim = Simulator()
        sent = []
        gen = ConstantBitRate(sim, sent.append, FLOW, rate_gbps=1.0, payload_len=1400)
        run_generator(gen, sim, 10 * MILLISECONDS)
        bits = sum(p.wire_len * 8 for p in sent)
        rate = bits / (10 * MILLISECONDS / SECONDS)
        assert rate == pytest.approx(1e9, rel=0.02)

    def test_max_packets(self):
        sim = Simulator()
        sent = []
        gen = ConstantBitRate(
            sim, sent.append, FLOW, rate_gbps=10.0, max_packets=5
        )
        run_generator(gen, sim, 1 * MILLISECONDS)
        assert len(sent) == 5
        assert not gen._pending or gen._pending.cancelled

    def test_stop(self):
        sim = Simulator()
        sent = []
        gen = ConstantBitRate(sim, sent.append, FLOW, rate_gbps=1.0)
        gen.start(at_ps=0)
        sim.call_at(1 * MILLISECONDS, gen.stop)
        sim.run(until_ps=5 * MILLISECONDS)
        count_at_stop = len(sent)
        sim.run()
        assert len(sent) == count_at_stop

    def test_invalid_rate(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ConstantBitRate(sim, lambda p: None, FLOW, rate_gbps=0)


class TestPoisson:
    def test_mean_rate(self):
        sim = Simulator()
        sent = []
        gen = PoissonTraffic(sim, sent.append, FLOW, mean_pps=1_000_000.0, seed=3)
        run_generator(gen, sim, 20 * MILLISECONDS)
        rate = len(sent) / (20 * MILLISECONDS / SECONDS)
        assert rate == pytest.approx(1e6, rel=0.05)

    def test_deterministic_by_seed(self):
        def run(seed):
            sim = Simulator()
            sent = []
            gen = PoissonTraffic(sim, sent.append, FLOW, mean_pps=1e5, seed=seed)
            run_generator(gen, sim, 5 * MILLISECONDS)
            return len(sent)

        assert run(1) == run(1)


class TestOnOff:
    def test_burst_structure(self):
        sim = Simulator()
        sent = []
        gen = OnOffBurst(
            sim, sent.append, FLOW, burst_packets=10, intra_gap_ps=1_000,
            mean_off_ps=1 * MILLISECONDS, max_bursts=3, seed=4,
        )
        run_generator(gen, sim, 50 * MILLISECONDS)
        assert gen.bursts_sent == 3
        assert len(sent) == 30
        assert len(gen.burst_start_times) == 3
        # Bursts are separated by silences much longer than intra gaps.
        gaps = [b - a for a, b in zip(gen.burst_start_times, gen.burst_start_times[1:])]
        assert all(gap > 9 * 1_000 for gap in gaps)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            OnOffBurst(sim, lambda p: None, FLOW, burst_packets=0)


class TestZipf:
    def test_head_flows_dominate(self):
        sim = Simulator()
        gen = ZipfFlowMix(
            sim, lambda p: None, flow_count=100, skew=1.3, mean_pps=1e6, seed=6
        )
        run_generator(gen, sim, 10 * MILLISECONDS)
        top = gen.top_flows(5)
        top_share = sum(gen.true_counts[i] for i in top) / gen.packets_sent
        assert top_share > 0.5

    def test_true_counts_match_sent(self):
        sim = Simulator()
        gen = ZipfFlowMix(sim, lambda p: None, flow_count=10, mean_pps=1e6, seed=6)
        run_generator(gen, sim, 1 * MILLISECONDS)
        assert sum(gen.true_counts.values()) == gen.packets_sent

    def test_dst_ip_applied(self):
        sim = Simulator()
        gen = ZipfFlowMix(sim, lambda p: None, flow_count=4, dst_ip=0x7F000001)
        assert all(flow.dst_ip == 0x7F000001 for flow in gen.flows)


class TestIncast:
    def test_wave_synchronization(self):
        sim = Simulator()
        arrivals = []
        sends = [lambda p: arrivals.append(("a", sim.now_ps)),
                 lambda p: arrivals.append(("b", sim.now_ps))]
        flows = [FLOW, FlowSpec(3, 4, 5, 6)]
        wave = IncastWave(sim, sends, flows, packets_per_sender=2, intra_gap_ps=100)
        wave.fire_at(1_000)
        sim.run()
        assert wave.packets_sent == 4
        starts = [t for _who, t in arrivals]
        assert min(starts) == 1_000
        assert max(starts) == 1_100

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            IncastWave(sim, [lambda p: None], [], packets_per_sender=1)
        with pytest.raises(ValueError):
            IncastWave(sim, [], [], packets_per_sender=1)


class TestSinks:
    def test_packet_sink_per_flow(self):
        sink = PacketSink()
        for _ in range(3):
            sink(FLOW.build_packet(100))
        sink(FlowSpec(9, 9, 9, 9).build_packet(100))
        assert sink.packets == 4
        assert sink.flow_count() == 2
        key = (FLOW.src_ip, FLOW.dst_ip, 17, FLOW.sport, FLOW.dport)
        assert sink.per_flow[key] == 3

    def test_latency_sink_statistics(self):
        sim = Simulator()
        sink = LatencySink(sim)
        for created, arrival in ((0, 100), (0, 200), (0, 300)):
            pkt = FLOW.build_packet(0, ts_ps=created)
            sim._now_ps = arrival  # direct clock poke for unit test
            sink(pkt)
        assert sink.count == 3
        assert sink.mean_ps() == 200
        assert sink.max_ps() == 300
        assert sink.percentile_ps(50) == 200
        assert sink.percentile_ps(100) == 300
        with pytest.raises(ValueError):
            sink.percentile_ps(0)
