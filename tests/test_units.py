"""Unit tests for time/rate conversions."""

import pytest

from repro.sim.units import (
    MICROSECONDS,
    MILLISECONDS,
    NANOSECONDS,
    SECONDS,
    bits_to_time_ps,
    bytes_to_time_ps,
    clock_period_ps,
    time_ps_to_seconds,
)


def test_unit_ladder():
    assert NANOSECONDS == 1_000
    assert MICROSECONDS == 1_000 * NANOSECONDS
    assert MILLISECONDS == 1_000 * MICROSECONDS
    assert SECONDS == 1_000 * MILLISECONDS


def test_bit_time_at_10g():
    # One bit at 10 Gb/s is 100 ps.
    assert bits_to_time_ps(1, 10.0) == 100
    # A 64-byte frame: 512 bits → 51.2 ns.
    assert bits_to_time_ps(512, 10.0) == 51_200


def test_byte_time_matches_bit_time():
    assert bytes_to_time_ps(64, 10.0) == bits_to_time_ps(512, 10.0)


def test_serialization_rounds_up():
    # 1 bit at 3 Gb/s = 333.33 ps → 334.
    assert bits_to_time_ps(1, 3.0) == 334


def test_rate_must_be_positive():
    with pytest.raises(ValueError):
        bits_to_time_ps(8, 0)
    with pytest.raises(ValueError):
        bits_to_time_ps(8, -1)


def test_clock_period():
    assert clock_period_ps(200.0) == 5_000  # 200 MHz → 5 ns
    assert clock_period_ps(1000.0) == 1_000
    with pytest.raises(ValueError):
        clock_period_ps(0)


def test_seconds_roundtrip():
    assert time_ps_to_seconds(SECONDS) == 1.0
    assert time_ps_to_seconds(500 * MILLISECONDS) == 0.5
