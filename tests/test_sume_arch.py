"""Unit tests for the SUME Event Switch (paper Figure 4)."""


from repro.arch.description import FULL_EVENT_SWITCH
from repro.arch.events import EventType
from repro.arch.generator import GeneratorConfig
from repro.arch.program import P4Program, handler
from repro.arch.sume import SumeEventSwitch
from repro.packet.builder import make_udp_packet
from repro.packet.headers import Ethernet, EtherType
from repro.pisa.externs.register import SharedRegister
from repro.sim.kernel import Simulator


class EventSink(P4Program):
    """Forward on port 1; log every event delivery time."""

    def __init__(self):
        super().__init__()
        self.qsize = SharedRegister(4, name="qsize")
        self.deliveries = []  # (kind, fired_ps, handled_ps)

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx, pkt, meta):
        meta.send_to_port(1)

    @handler(EventType.ENQUEUE)
    def on_enqueue(self, ctx, event):
        self.deliveries.append(("enq", event.time_ps, ctx.now_ps))
        self.qsize.add(0, event.meta["pkt_len"])  # architecture-provided

    @handler(EventType.DEQUEUE)
    def on_dequeue(self, ctx, event):
        self.deliveries.append(("deq", event.time_ps, ctx.now_ps))
        self.qsize.sub(0, event.meta["pkt_len"])

    @handler(EventType.TIMER)
    def on_timer(self, ctx, event):
        self.deliveries.append(("timer", event.time_ps, ctx.now_ps))

    @handler(EventType.LINK_STATUS)
    def on_link(self, ctx, event):
        self.deliveries.append(("link", event.time_ps, ctx.now_ps))


def make_switch(**kwargs):
    sim = Simulator()
    switch = SumeEventSwitch(sim, **kwargs)
    program = EventSink()
    switch.load_program(program)
    switch.set_tx_callback(lambda pkt, port: None)
    return sim, switch, program


def test_single_pipeline_carries_events():
    sim, switch, program = make_switch()
    switch.receive(make_udp_packet(1, 2, payload_len=436), 0)
    sim.run()
    kinds = [kind for kind, _f, _h in program.deliveries]
    assert kinds == ["enq", "deq"]
    assert program.qsize.read(0) == 0


def test_event_delivery_is_asynchronous():
    """Unlike the logical model, handlers run after the merger wait."""
    sim, switch, program = make_switch()
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    for _kind, fired, handled in program.deliveries:
        assert handled > fired  # merger wait + pipeline latency


def test_empty_packet_injection_for_idle_events():
    sim, switch, program = make_switch()
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    # No follow-up packets arrived, so the events rode empty carriers
    # (enqueue + dequeue + packet-transmitted; the program handles the
    # first two).
    assert switch.empty_packets_injected > 0
    assert switch.merger.stats.injected_events == switch.merger.stats.offered == 3
    assert len(program.deliveries) == 2


def test_event_carriers_die_silently():
    sim, switch, program = make_switch()
    sent = []
    switch.set_tx_callback(lambda pkt, port: sent.append(pkt))
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    # Only the data packet leaves; empty carriers are consumed, and
    # their disappearance is not billed as a program drop.
    assert len(sent) == 1
    assert switch.dropped_by_program == 0


def test_timer_unit_feeds_merger():
    sim, switch, program = make_switch()
    switch.configure_timer(1, 1_000_000)
    sim.run(until_ps=2_500_000)
    timers = [d for d in program.deliveries if d[0] == "timer"]
    assert len(timers) == 2


def test_packet_generator_fires_generated_events():
    class GenProgram(EventSink):
        def __init__(self):
            super().__init__()
            self.generated = 0

        @handler(EventType.GENERATED_PACKET)
        def on_generated(self, ctx, pkt, meta):
            self.generated += 1
            meta.send_to_port(0)

    sim = Simulator()
    switch = SumeEventSwitch(sim)
    program = GenProgram()
    switch.load_program(program)
    out = []
    switch.set_tx_callback(lambda pkt, port: out.append(port))
    switch.configure_generator(
        GeneratorConfig(
            stream_id=0,
            period_ps=1_000_000,
            template=lambda now: make_udp_packet(9, 9, ts_ps=now),
        )
    )
    sim.run(until_ps=3_500_000)
    assert program.generated == 3
    assert out == [0, 0, 0]
    assert switch.generator.generated_count == 3


def test_link_status_event():
    sim, switch, program = make_switch()
    switch.set_link_status(2, False)
    sim.run()
    links = [d for d in program.deliveries if d[0] == "link"]
    assert len(links) == 1
    # Repeating the same status is not a change.
    switch.set_link_status(2, False)
    sim.run()
    assert len([d for d in program.deliveries if d[0] == "link"]) == 1


def test_recirculation_on_sume():
    class Recirc(EventSink):
        def __init__(self):
            super().__init__()
            self.recirc_seen = 0
            self.armed = True

        @handler(EventType.INGRESS_PACKET)
        def ingress(self, ctx, pkt, meta):
            if self.armed:
                self.armed = False
                meta.request_recirculation()
                return
            meta.send_to_port(1)

        @handler(EventType.RECIRCULATED_PACKET)
        def recirculated(self, ctx, pkt, meta):
            self.recirc_seen += 1
            meta.send_to_port(1)

    sim = Simulator()
    switch = SumeEventSwitch(sim)
    program = Recirc()
    switch.load_program(program)
    switch.set_tx_callback(lambda pkt, port: None)
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    assert program.recirc_seen == 1
    assert switch.recirculations == 1


def test_unsupported_events_suppressed_on_faithful_sume():
    """The §5 SUME switch has no underflow events; they are suppressed."""
    sim, switch, program = make_switch()
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    assert switch.events_suppressed[EventType.BUFFER_UNDERFLOW] == 1
    assert switch.events_fired[EventType.BUFFER_UNDERFLOW] == 0


def test_full_description_enables_underflow():
    class UnderflowWatcher(EventSink):
        def __init__(self):
            super().__init__()
            self.underflows = 0

        @handler(EventType.BUFFER_UNDERFLOW)
        def on_underflow(self, ctx, event):
            self.underflows += 1

    sim = Simulator()
    switch = SumeEventSwitch(sim, description=FULL_EVENT_SWITCH)
    program = UnderflowWatcher()
    switch.load_program(program)
    switch.set_tx_callback(lambda pkt, port: None)
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    assert program.underflows == 1


def test_injected_carrier_is_event_metadata_frame():
    sim, switch, program = make_switch()
    carriers = []
    original_exit = switch._pipeline_exit

    def spy(pkt, kind, events):
        if kind is None:
            carriers.append(pkt)
        original_exit(pkt, kind, events)

    switch._pipeline_exit = spy
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    assert carriers, "expected at least one injected carrier"
    eth = carriers[0].get(Ethernet)
    assert eth is not None
    assert eth.ethertype == int(EtherType.EVENT_METADATA)
    assert carriers[0].total_len == 64
