"""Unit tests for the NetChain chain-node programs."""


from repro.apps.netchain import (
    ChainClient,
    ChainNodeProgram,
    StaticChainNodeProgram,
)
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext
from repro.packet.builder import make_kv_request
from repro.packet.headers import Ipv4, KeyValue
from repro.pisa.metadata import StandardMetadata

CLIENT_IP = 0x0A00_0001
SERVICE_IP = 0x0A00_00AA


class FakeCtx(ProgramContext):
    @property
    def now_ps(self):
        return 0


def put(value, key=1):
    return make_kv_request(
        KeyValue.OP_PUT, key, value=value, src_ip=CLIENT_IP, dst_ip=SERVICE_IP
    )


def get(key=1):
    return make_kv_request(KeyValue.OP_GET, key, src_ip=CLIENT_IP, dst_ip=SERVICE_IP)


class TestChainNode:
    def make_middle(self):
        node = ChainNodeProgram(node_id=1, service_ip=SERVICE_IP, is_tail=False)
        node.install_route(SERVICE_IP, 1)
        node.install_route(CLIENT_IP, 0)
        return node

    def make_tail(self):
        node = ChainNodeProgram(node_id=2, service_ip=SERVICE_IP, is_tail=True)
        node.install_route(CLIENT_IP, 0)
        return node

    def test_middle_applies_and_forwards_write(self):
        node = self.make_middle()
        pkt = put(41)
        meta = StandardMetadata()
        node.ingress(FakeCtx(), pkt, meta)
        assert node.store[1] == 41
        assert meta.egress_spec == 1  # down the chain
        assert pkt.require(KeyValue).op == KeyValue.OP_PUT  # unchanged

    def test_tail_acknowledges_write(self):
        node = self.make_tail()
        pkt = put(42)
        meta = StandardMetadata()
        node.ingress(FakeCtx(), pkt, meta)
        assert node.store[1] == 42
        kv = pkt.require(KeyValue)
        assert kv.op == KeyValue.OP_WRITE_ACK
        ip = pkt.require(Ipv4)
        assert ip.dst == CLIENT_IP and ip.src == SERVICE_IP
        assert meta.egress_spec == 0  # toward the client
        assert node.acks_sent == 1

    def test_tail_answers_read(self):
        node = self.make_tail()
        node.ingress(FakeCtx(), put(7), StandardMetadata())
        pkt = get()
        meta = StandardMetadata()
        node.ingress(FakeCtx(), pkt, meta)
        kv = pkt.require(KeyValue)
        assert kv.op == KeyValue.OP_REPLY_HIT
        assert kv.value == 7
        assert node.reads_served == 1

    def test_tail_read_miss(self):
        node = self.make_tail()
        pkt = get(key=99)
        node.ingress(FakeCtx(), pkt, StandardMetadata())
        assert pkt.require(KeyValue).op == KeyValue.OP_REPLY_MISS

    def test_middle_forwards_read_toward_tail(self):
        node = self.make_middle()
        pkt = get()
        meta = StandardMetadata()
        node.ingress(FakeCtx(), pkt, meta)
        assert meta.egress_spec == 1
        assert node.reads_served == 0

    def test_non_service_traffic_forwarded(self):
        from repro.packet.builder import make_udp_packet

        node = self.make_middle()
        pkt = make_udp_packet(CLIENT_IP, 0x0B000001)
        node.install_route(0x0B000001, 1)
        meta = StandardMetadata()
        node.ingress(FakeCtx(), pkt, meta)
        assert meta.egress_spec == 1
        assert node.writes_applied == 0

    def test_link_event_splices_chain(self):
        node = ChainNodeProgram(node_id=0, service_ip=SERVICE_IP, is_tail=False)
        node.install_protected_route(SERVICE_IP, primary=1, backup=2)
        node.on_link_status(
            FakeCtx(), Event(EventType.LINK_STATUS, 0, meta={"port": 1, "up": 0})
        )
        assert node.routes[SERVICE_IP] == 2

    def test_static_variant_ignores_link_events(self):
        node = StaticChainNodeProgram(node_id=0, service_ip=SERVICE_IP, is_tail=False)
        assert node.handler_for(EventType.LINK_STATUS) is None


class TestChainClient:
    def test_sequential_writes_and_acks(self):
        from repro.net.host import Host
        from repro.net.link import Link
        from repro.sim.kernel import Simulator

        sim = Simulator()
        host = Host(sim, "client", CLIENT_IP)

        class Echo:
            """Acks every write immediately, like a zero-latency tail."""

            def receive(self, pkt, port):
                kv = pkt.require(KeyValue)
                kv.set(op=KeyValue.OP_WRITE_ACK)
                link.transmit_from(self, pkt)

            def set_link_status(self, port, up):
                pass

        echo = Echo()
        link = Link(sim, host, 0, echo, 0, latency_ps=1_000)
        host.attach_link(link)
        client = ChainClient(host, SERVICE_IP)
        for _ in range(3):
            client.write_next()
        sim.run()
        assert client.stats.writes_sent == 3
        assert client.stats.acks_received == 3
        assert client.stats.writes_lost == 0
        assert client.stats.last_acked_value == 3
