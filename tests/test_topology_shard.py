"""Fat-tree spec builder, deterministic ECMP, and the graph partitioner.

Property-style checks over `repro.net.topology.fat_tree_spec`,
`repro.net.routing.ecmp_routes`, and `repro.net.partition` — the
static half of the sharded-simulation stack (docs/SCALING.md).  The
dynamic half (windows, boundary links, fingerprints) lives in
tests/test_sharded_sim.py.
"""

import pytest

from repro.experiments.factories import make_baseline_switch
from repro.net.partition import PARTITION_STRATEGIES, partition_spec
from repro.net.routing import ecmp_candidates, ecmp_routes
from repro.net.topology import (
    build_leaf_spine,
    fat_tree_spec,
    leaf_spine_spec,
    realize,
)
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# Fat-tree spec: counts and structure
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("k", [2, 4, 6, 8])
def test_fat_tree_counts(k):
    spec = fat_tree_spec(k=k)
    assert len(spec.switch_names()) == 5 * k * k // 4
    assert len(spec.host_names()) == k**3 // 4
    # k^3/4 host links + k*(k/2)^2 edge-agg + k*(k/2)^2 agg-core.
    assert len(spec.links) == 3 * k**3 // 4


@pytest.mark.parametrize("k", [2, 4])
def test_fat_tree_degree_and_ips(k):
    spec = fat_tree_spec(k=k)
    degree = {name: 0 for name in spec.nodes}
    for link in spec.links:
        degree[link.node_a] += 1
        degree[link.node_b] += 1
    for name in spec.switch_names():
        assert degree[name] == k, name
    for name in spec.host_names():
        assert degree[name] == 1, name
    ips = spec.host_ips()
    assert len(set(ips.values())) == len(ips), "host IPs must be unique"


def test_fat_tree_pod_metadata():
    spec = fat_tree_spec(k=4)
    pod_of = spec.meta["pod_of"]
    assert pod_of["edge0_0"] == 0 and pod_of["agg3_1"] == 3
    assert pod_of["core0"] is None
    assert pod_of["h2_1_0"] == 2
    assert set(spec.nodes) == set(pod_of)


@pytest.mark.parametrize("k", [1, 3, 5, 0, -2])
def test_fat_tree_rejects_bad_arity(k):
    with pytest.raises(ValueError):
        fat_tree_spec(k=k)


def test_fat_tree_rejects_bad_latency():
    with pytest.raises(ValueError):
        fat_tree_spec(k=4, link_latency_ps=0)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"leaf_count": 0},
        {"spine_count": 0},
        {"hosts_per_leaf": 0},
        {"link_latency_ps": -1},
    ],
)
def test_leaf_spine_spec_rejects_bad_params(kwargs):
    with pytest.raises(ValueError):
        leaf_spine_spec(**kwargs)


def test_leaf_spine_spec_matches_builder():
    spec = leaf_spine_spec(leaf_count=3, spine_count=2, hosts_per_leaf=2)
    sim = Simulator()
    fabric = build_leaf_spine(
        make_baseline_switch(),
        leaf_count=3,
        spine_count=2,
        hosts_per_leaf=2,
        sim=sim,
    )
    net = fabric.network
    assert set(net.switches) == set(spec.switch_names())
    assert set(net.hosts) == set(spec.host_names())
    assert len(net.links) == len(spec.links)
    for host, ip in spec.host_ips().items():
        assert net.hosts[host].ip == ip


def test_realize_subset_skips_boundary_links():
    spec = fat_tree_spec(k=4)
    part = partition_spec(spec, shards=4)
    sim = Simulator()
    nodes = part.shard_nodes(0)
    net = realize(spec, make_baseline_switch(), sim=sim, only_nodes=nodes)
    assert set(net.switches) | set(net.hosts) == set(nodes)
    # Only fully-internal links exist; the caller wires boundary proxies.
    internal = [
        link
        for link in spec.links
        if link.node_a in set(nodes) and link.node_b in set(nodes)
    ]
    assert len(net.links) == len(internal)
    assert len(internal) + len(part.boundary_links(0)) == len(
        [
            link
            for link in spec.links
            if link.node_a in set(nodes) or link.node_b in set(nodes)
        ]
    )


# ---------------------------------------------------------------------------
# ECMP: multiplicity and determinism
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("k", [4, 6])
def test_ecmp_multiplicity_inter_pod(k):
    spec = fat_tree_spec(k=k)
    half = k // 2
    remote = spec.host_ips()[f"h{k - 1}_0_0"]
    # Inter-pod traffic sees k/2 equal-cost uplinks at edge and agg.
    edge = ecmp_candidates(spec, "edge0_0")
    agg = ecmp_candidates(spec, "agg0_0")
    assert len(edge[f"h{k - 1}_0_0"]) == half
    assert len(agg[f"h{k - 1}_0_0"]) == half
    # Intra-rack delivery has exactly one way down.
    assert edge["h0_0_0"] == [half]
    routes = ecmp_routes(spec)
    assert routes["edge0_0"][remote] in edge[f"h{k - 1}_0_0"]


def test_ecmp_routes_cover_every_switch_and_host():
    spec = fat_tree_spec(k=4)
    routes = ecmp_routes(spec)
    hosts = set(spec.host_ips().values())
    assert set(routes) == set(spec.switch_names())
    for table in routes.values():
        assert set(table) == hosts


def test_ecmp_routes_deterministic_across_calls():
    a = ecmp_routes(fat_tree_spec(k=4))
    b = ecmp_routes(fat_tree_spec(k=4))
    assert a == b


# ---------------------------------------------------------------------------
# Partitioner: determinism, co-location, cut structure
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("strategy", ["pod", "bfs"])
def test_partition_deterministic_across_rebuilds(strategy):
    a = partition_spec(fat_tree_spec(k=4), 4, strategy=strategy)
    b = partition_spec(fat_tree_spec(k=4), 4, strategy=strategy)
    assert a.assignment == b.assignment
    assert a.edge_cut() == b.edge_cut()


@pytest.mark.parametrize("shards", [1, 2, 4])
@pytest.mark.parametrize("strategy", PARTITION_STRATEGIES)
def test_partition_hosts_follow_their_switch(shards, strategy):
    spec = fat_tree_spec(k=4)
    part = partition_spec(spec, shards, strategy=strategy)
    switch_of = {}
    for link in spec.links:
        if spec.nodes[link.node_a].kind == "host":
            switch_of[link.node_a] = link.node_b
        elif spec.nodes[link.node_b].kind == "host":
            switch_of[link.node_b] = link.node_a
    for host, switch in switch_of.items():
        assert part.assignment[host] == part.assignment[switch]
    # Consequence: every cut link is switch-switch.
    for link in part.cut_links():
        assert spec.nodes[link.node_a].kind == "switch"
        assert spec.nodes[link.node_b].kind == "switch"


def test_partition_pod_cut_is_agg_core_only():
    spec = fat_tree_spec(k=4)
    part = partition_spec(spec, 4, strategy="pod")
    # Per-pod split: only agg-core links cross shards.  Of the 16, each
    # round-robined core is co-located with one pod, so 4 stay internal.
    assert part.edge_cut() == 4 * (4 // 2) ** 2 - 4
    for link in part.cut_links():
        ends = sorted((link.node_a[:3], link.node_b[:3]))
        assert ends == ["agg", "cor"]
    assert part.lookahead_ps() == 1_000_000


def test_partition_single_shard_has_no_cut():
    part = partition_spec(fat_tree_spec(k=4), 1)
    assert part.edge_cut() == 0
    assert part.lookahead_ps() is None


@pytest.mark.parametrize("strategy", ["pod", "bfs"])
def test_partition_no_empty_shards(strategy):
    spec = leaf_spine_spec(leaf_count=4, spine_count=2)
    part = partition_spec(spec, 2, strategy=strategy)
    for shard in range(2):
        assert part.shard_nodes(shard)


def test_partition_rejects_bad_inputs():
    spec = fat_tree_spec(k=4)
    with pytest.raises(ValueError):
        partition_spec(spec, 0)
    with pytest.raises(ValueError):
        partition_spec(spec, len(spec.switch_names()) + 1)
    with pytest.raises(ValueError):
        partition_spec(spec, 2, strategy="metis")
    # pod strategy cannot make more shards than pods; bfs can.
    with pytest.raises(ValueError):
        partition_spec(spec, 5, strategy="pod")
    assert partition_spec(spec, 5, strategy="bfs").shards == 5


def test_partition_auto_prefers_pod_then_bfs():
    spec = fat_tree_spec(k=4)
    assert partition_spec(spec, 4).strategy == "pod"
    assert partition_spec(spec, 5).strategy == "bfs"
