"""Unit tests for the WFQ scheduler program and the ECN programs."""

import pytest

from app_harness import H0_IP, H1_IP

from repro.apps.ecn import (
    DSCP_LEVELS,
    MultiBitEcnProgram,
    SingleBitEcnProgram,
    decode_multi_bit,
    decode_single_bit,
)
from repro.apps.scheduling import RANK_KEY, WfqSchedulerProgram, rank_of
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext
from repro.packet.builder import make_udp_packet
from repro.packet.hashing import flow_hash
from repro.packet.headers import Ipv4
from repro.pisa.metadata import StandardMetadata


class FakeCtx(ProgramContext):
    @property
    def now_ps(self):
        return 0


class TestWfq:
    def make(self, weights=None):
        program = WfqSchedulerProgram(num_flows=64, weights=weights or {})
        program.install_route(H1_IP, 1)
        return program

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            WfqSchedulerProgram(weights={0: 0})

    def test_rank_is_start_tag(self):
        program = self.make()
        pkt = make_udp_packet(H0_IP, H1_IP, payload_len=958)  # 1000B
        program.ingress(FakeCtx(), pkt, StandardMetadata())
        assert pkt.meta[RANK_KEY] == 0  # V=0, first packet starts at 0
        flow = flow_hash(pkt, 64)
        assert program.finish_tags.read(flow) == 1_000

    def test_back_to_back_packets_serialize_tags(self):
        program = self.make()
        pkt_template = make_udp_packet(H0_IP, H1_IP, payload_len=958)
        ranks = []
        for _ in range(3):
            pkt = pkt_template.clone()
            program.ingress(FakeCtx(), pkt, StandardMetadata())
            ranks.append(pkt.meta[RANK_KEY])
        assert ranks == [0, 1_000, 2_000]

    def test_weight_divides_finish_increment(self):
        pkt = make_udp_packet(H0_IP, H1_IP, payload_len=958)
        flow = flow_hash(pkt, 64)
        program = self.make(weights={flow: 4})
        program.ingress(FakeCtx(), pkt, StandardMetadata())
        assert program.finish_tags.read(flow) == 250  # 1000 / weight 4

    def test_dequeue_advances_virtual_time_monotonically(self):
        program = self.make()
        program.on_dequeue(FakeCtx(), Event(EventType.DEQUEUE, 0, meta={"rank": 500}))
        assert program.virtual_time.read(0) == 500
        # Older rank does not move V backwards.
        program.on_dequeue(FakeCtx(), Event(EventType.DEQUEUE, 0, meta={"rank": 100}))
        assert program.virtual_time.read(0) == 500

    def test_idle_flow_restarts_at_virtual_time(self):
        program = self.make()
        program.virtual_time.write(0, 9_000)
        pkt = make_udp_packet(H0_IP, H1_IP, payload_len=958)
        program.ingress(FakeCtx(), pkt, StandardMetadata())
        assert pkt.meta[RANK_KEY] == 9_000  # no credit for being idle

    def test_rank_of_helper(self):
        pkt = make_udp_packet(H0_IP, H1_IP)
        assert rank_of(pkt) == 0
        pkt.meta[RANK_KEY] = 7
        assert rank_of(pkt) == 7


class TestEcn:
    def test_multibit_quantization(self):
        program = MultiBitEcnProgram(buffer_capacity_bytes=64 * 1024)
        assert program.level_of(0) == 0
        assert program.level_of(64 * 1024) == DSCP_LEVELS - 1
        mid = program.level_of(32 * 1024)
        assert 0 < mid < DSCP_LEVELS - 1

    def test_stamp_keeps_path_maximum(self):
        program = MultiBitEcnProgram(buffer_capacity_bytes=64 * 1024)
        program.install_route(H1_IP, 1)
        program.occupancy.write(0, 10_000)
        pkt = make_udp_packet(H0_IP, H1_IP)
        pkt.require(Ipv4).set(dscp=50)  # an earlier hop was more congested
        program.ingress(FakeCtx(), pkt, StandardMetadata())
        assert pkt.require(Ipv4).dscp == 50  # max preserved
        # And a higher local occupancy overrides a lower stamp.
        pkt2 = make_udp_packet(H0_IP, H1_IP)
        program.occupancy.write(0, 63 * 1024)
        program.ingress(FakeCtx(), pkt2, StandardMetadata())
        assert pkt2.require(Ipv4).dscp == program.level_of(63 * 1024)

    def test_occupancy_tracks_buffer_events(self):
        program = MultiBitEcnProgram(buffer_capacity_bytes=1_000)
        program.on_enqueue(
            FakeCtx(), Event(EventType.ENQUEUE, 0, meta={"buffer_bytes": 700})
        )
        assert program.occupancy.read(0) == 700
        program.on_dequeue(
            FakeCtx(), Event(EventType.DEQUEUE, 0, meta={"buffer_bytes": 200})
        )
        assert program.occupancy.read(0) == 200

    def test_single_bit_marks_above_threshold(self):
        program = SingleBitEcnProgram(mark_threshold_bytes=1_000)
        program.install_route(H1_IP, 1)
        program.occupancy.write(0, 2_000)
        pkt = make_udp_packet(H0_IP, H1_IP)
        program.ingress(FakeCtx(), pkt, StandardMetadata())
        assert pkt.require(Ipv4).ecn == 3
        assert program.marks == 1

    def test_decoders(self):
        pkt = make_udp_packet(H0_IP, H1_IP)
        pkt.require(Ipv4).set(dscp=10)
        assert decode_multi_bit(pkt, quantum=1_024) == 10 * 1_024 + 512
        pkt.require(Ipv4).set(ecn=3)
        assert decode_single_bit(pkt, 8_000) == 8_000
        pkt.require(Ipv4).set(ecn=0)
        assert decode_single_bit(pkt, 8_000) == 4_000

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiBitEcnProgram(buffer_capacity_bytes=0)
        with pytest.raises(ValueError):
            SingleBitEcnProgram(mark_threshold_bytes=0)
