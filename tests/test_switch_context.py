"""Unit tests for the SwitchContext services exposed to programs."""

import pytest

from repro.arch.description import UnsupportedEventError
from repro.arch.events import EventType
from repro.arch.program import P4Program, handler
from repro.arch.sume import SumeEventSwitch
from repro.packet.builder import make_udp_packet
from repro.sim.kernel import Simulator


class ContextProber(P4Program):
    """Records what the context reports inside handlers."""

    def __init__(self):
        super().__init__()
        self.observations = []

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx, pkt, meta):
        self.observations.append(
            {
                "now": ctx.now_ps,
                "queue_depth": ctx.queue_depth_bytes(1),
                "link0_up": ctx.link_up(0),
                "link2_up": ctx.link_up(2),
            }
        )
        meta.send_to_port(1)


def make_switch():
    sim = Simulator()
    switch = SumeEventSwitch(sim)
    program = ContextProber()
    switch.load_program(program)
    switch.set_tx_callback(lambda pkt, port: None)
    return sim, switch, program


def test_now_matches_simulator_clock():
    sim, switch, program = make_switch()
    sim.call_at(123_456, switch.receive, make_udp_packet(1, 2), 0)
    sim.run()
    observed = program.observations[0]["now"]
    assert observed == 123_456 + switch.pipeline.latency_ps


def test_queue_depth_visible_to_programs():
    sim, switch, program = make_switch()
    switch.tm.set_port_rate(1, 0.001)  # freeze the port so depth builds
    for i in range(3):
        sim.call_at(i + 1, switch.receive, make_udp_packet(1, 2, payload_len=958), 0)
    sim.run(until_ps=1_000_000)
    depths = [obs["queue_depth"] for obs in program.observations]
    assert depths[0] == 0  # nothing buffered yet
    assert depths[-1] > 0  # later packets see the backlog


def test_link_status_visible_to_programs():
    sim, switch, program = make_switch()
    switch.set_link_status(2, False)
    sim.call_after(1, switch.receive, make_udp_packet(1, 2), 0)
    sim.run()
    assert program.observations[0]["link0_up"] is True
    assert program.observations[0]["link2_up"] is False


def test_notify_control_plane_reaches_callback():
    sim, switch, program = make_switch()
    digests = []
    switch.set_cpu_callback(digests.append)
    switch.notify_control_plane({"code": 9})
    assert digests == [{"code": 9}]
    assert switch.cpu_notifications == [{"code": 9}]


def test_user_event_unsupported_on_faithful_sume():
    sim, switch, program = make_switch()
    with pytest.raises(UnsupportedEventError):
        switch.raise_user_event({"x": 1})


def test_events_fired_of_accepts_strings():
    sim, switch, program = make_switch()
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    assert switch.events_fired_of("buffer_enqueue") == 1
    assert switch.events_handled_of("ingress_packet") == 1
    assert switch.events_fired_of(EventType.DEQUEUE) == 1
