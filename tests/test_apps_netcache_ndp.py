"""Unit tests for the NetCache and NDP programs."""

import pytest

from app_harness import H0_IP, H1_IP

from repro.apps.ndp import CONTROL_QUEUE, DATA_QUEUE, NdpProgram, TailDropProgram
from repro.apps.netcache import KvServerApp, NetCacheProgram
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext
from repro.packet.builder import make_kv_request, make_udp_packet
from repro.packet.headers import Ipv4, KeyValue
from repro.pisa.metadata import StandardMetadata


class FakeCtx(ProgramContext):
    def __init__(self):
        self.generated = []
        self._now = 0

    @property
    def now_ps(self):
        return self._now

    def configure_timer(self, timer_id, period_ps):
        pass

    def generate_packet(self, pkt):
        self.generated.append(pkt)


class TestNetCache:
    def make(self, **kwargs):
        defaults = dict(cache_slots=4, admit_threshold=2)
        defaults.update(kwargs)
        program = NetCacheProgram(**defaults)
        program.install_route(H1_IP, 1)
        program.install_route(H0_IP, 0)
        return program

    def seed(self, program, key, value):
        program.miss_sketch.update(key.to_bytes(8, "big"), program.admit_threshold)
        program.observe_reply(key, value)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetCacheProgram(cache_slots=0)
        with pytest.raises(ValueError):
            NetCacheProgram(admit_threshold=0)

    def test_get_hit_replies_from_switch(self):
        program = self.make()
        self.seed(program, 42, 4_200)
        ctx = FakeCtx()
        request = make_kv_request(KeyValue.OP_GET, 42, src_ip=H0_IP, dst_ip=H1_IP)
        meta = StandardMetadata(ingress_port=0)
        program.ingress(ctx, request, meta)
        assert meta.egress_spec == 0  # turned around
        kv = request.require(KeyValue)
        assert kv.op == KeyValue.OP_REPLY_HIT
        assert kv.value == 4_200
        ip = request.require(Ipv4)
        assert (ip.src, ip.dst) == (H1_IP, H0_IP)  # swapped
        assert program.hits == 1

    def test_get_miss_forwards_to_server(self):
        program = self.make()
        ctx = FakeCtx()
        request = make_kv_request(KeyValue.OP_GET, 7, src_ip=H0_IP, dst_ip=H1_IP)
        meta = StandardMetadata(ingress_port=0)
        program.ingress(ctx, request, meta)
        assert meta.egress_spec == 1
        assert program.misses == 1

    def test_admission_after_threshold_misses(self):
        program = self.make(admit_threshold=3)
        ctx = FakeCtx()
        admitted = []
        for i in range(3):
            request = make_kv_request(KeyValue.OP_GET, 9, src_ip=H0_IP, dst_ip=H1_IP)
            meta = StandardMetadata(ingress_port=0)
            program.ingress(ctx, request, meta)
            admitted.append(bool(request.meta.get("netcache_admit")))
        assert admitted == [False, False, True]
        program.observe_reply(9, 900)
        assert 9 in program.cached_keys()

    def test_eviction_picks_coldest(self):
        program = self.make(cache_slots=2)
        self.seed(program, 1, 100)
        self.seed(program, 2, 200)
        # Warm key 1 with hits.
        ctx = FakeCtx()
        for _ in range(3):
            request = make_kv_request(KeyValue.OP_GET, 1, src_ip=H0_IP, dst_ip=H1_IP)
            program.ingress(ctx, request, StandardMetadata(ingress_port=0))
        self.seed(program, 3, 300)  # forces an eviction
        assert program.evictions == 1
        assert 1 in program.cached_keys()  # the hot key survived
        assert 2 not in program.cached_keys()

    def test_put_updates_cached_value(self):
        program = self.make()
        self.seed(program, 5, 50)
        ctx = FakeCtx()
        put = make_kv_request(KeyValue.OP_PUT, 5, value=55, src_ip=H0_IP, dst_ip=H1_IP)
        meta = StandardMetadata(ingress_port=0)
        program.ingress(ctx, put, meta)
        assert meta.egress_spec == 1  # still forwarded to the server
        assert program._cache[5].value == 55

    def test_timer_decays_counters_and_clears_misses(self):
        program = self.make()
        self.seed(program, 5, 50)
        slot = program._slot_of_key[5]
        program.hit_counters.write(slot, 8)
        program.miss_sketch.update(b"stale", 10)
        ctx = FakeCtx()
        program.on_timer(ctx, Event(EventType.TIMER, 0))
        assert program.hit_counters.read(slot) == 4
        assert program.miss_sketch.total() == 0

    def test_non_kv_traffic_forwarded_normally(self):
        program = self.make()
        ctx = FakeCtx()
        meta = StandardMetadata()
        program.ingress(ctx, make_udp_packet(H0_IP, H1_IP, dport=53), meta)
        assert meta.egress_spec == 1

    def test_server_app_replies_and_admits(self):
        from repro.net.host import Host
        from repro.net.link import Link
        from repro.sim.kernel import Simulator

        sim = Simulator()
        host = Host(sim, "server", H1_IP)

        class Peer:
            def __init__(self):
                self.received = []

            def receive(self, pkt, port):
                self.received.append(pkt)

            def set_link_status(self, port, up):
                pass

        peer = Peer()
        link = Link(sim, host, 0, peer, 0)
        host.attach_link(link)
        program = self.make(admit_threshold=1)
        server = KvServerApp(host, {10: 1_000}, cache=program)
        request = make_kv_request(KeyValue.OP_GET, 10, src_ip=H0_IP, dst_ip=H1_IP)
        program.miss_sketch.update((10).to_bytes(8, "big"))
        request.meta["netcache_admit"] = 1
        host.receive(request, 0)
        sim.run()
        assert server.requests_served == 1
        assert peer.received  # reply went back out
        reply = peer.received[0].require(KeyValue)
        assert reply.op == KeyValue.OP_REPLY_HIT
        assert reply.value == 1_000
        assert 10 in program.cached_keys()


class TestNdp:
    def test_overflow_generates_trimmed_header(self):
        program = NdpProgram()
        program.install_route(H1_IP, 1)
        ctx = FakeCtx()
        victim = make_udp_packet(H0_IP, H1_IP, payload_len=1_400)
        event = Event(
            EventType.BUFFER_OVERFLOW, 0, pkt=victim, meta={"port": 1}
        )
        program.on_overflow(ctx, event)
        assert program.trimmed == 1
        trimmed = ctx.generated[0]
        assert trimmed.payload_len == 0
        assert trimmed.meta["ndp_trimmed"] == 1
        assert trimmed.total_len < victim.total_len

    def test_trimmed_packets_take_control_queue(self):
        program = NdpProgram()
        program.install_route(H1_IP, 1)
        ctx = FakeCtx()
        trimmed = make_udp_packet(H0_IP, H1_IP)
        trimmed.meta["ndp_trimmed"] = 1
        meta = StandardMetadata()
        program.ingress(ctx, trimmed, meta)
        assert meta.queue_id == CONTROL_QUEUE
        data = make_udp_packet(H0_IP, H1_IP)
        meta2 = StandardMetadata()
        program.ingress(ctx, data, meta2)
        assert meta2.queue_id == DATA_QUEUE

    def test_never_trims_a_trim(self):
        program = NdpProgram()
        ctx = FakeCtx()
        already = make_udp_packet(H0_IP, H1_IP)
        already.meta["ndp_trimmed"] = 1
        program.on_overflow(
            ctx, Event(EventType.BUFFER_OVERFLOW, 0, pkt=already, meta={"port": 1})
        )
        assert program.trimmed == 0
        assert program.trim_failures == 1
        assert ctx.generated == []

    def test_tail_drop_baseline_has_no_overflow_handler(self):
        baseline = TailDropProgram()
        assert baseline.handler_for(EventType.BUFFER_OVERFLOW) is None
