"""Unit tests for the monitoring apps: flow rate, heavy hitters, INT."""

import pytest

from app_harness import H0_IP, H1_IP

from repro.apps.flow_rate import EwmaRateEstimator, FlowRateMonitor
from repro.apps.heavy_hitters import HeavyHitterDetector
from repro.apps.int_telemetry import IntAggregator, PostcardTelemetry
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext
from repro.packet.builder import make_udp_packet
from repro.packet.hashing import flow_hash
from repro.pisa.metadata import StandardMetadata
from repro.sim.units import MILLISECONDS


class FakeCtx(ProgramContext):
    def __init__(self, now=0):
        self._now = now
        self.generated = []

    @property
    def now_ps(self):
        return self._now

    def configure_timer(self, timer_id, period_ps):
        pass

    def generate_packet(self, pkt):
        self.generated.append(pkt)


class TestFlowRateMonitor:
    def test_rate_measurement(self):
        monitor = FlowRateMonitor(num_flows=64, slots=4, slot_period_ps=1_000_000)
        monitor.install_route(H1_IP, 1)
        ctx = FakeCtx()
        pkt = make_udp_packet(H0_IP, H1_IP, payload_len=958)  # 1000B
        flow_id = flow_hash(pkt, 64)
        for _ in range(4):
            monitor.ingress(ctx, pkt.clone(), StandardMetadata())
        # 4000B over a 4 µs window = 8 Gb/s.
        assert monitor.rate_bps(flow_id) == pytest.approx(8e9)

    def test_rate_decays_after_shifts(self):
        monitor = FlowRateMonitor(num_flows=64, slots=2, slot_period_ps=1_000_000)
        monitor.install_route(H1_IP, 1)
        ctx = FakeCtx()
        pkt = make_udp_packet(H0_IP, H1_IP, payload_len=958)
        flow_id = flow_hash(pkt, 64)
        monitor.ingress(ctx, pkt, StandardMetadata())
        for _ in range(2):
            monitor.on_timer(ctx, Event(EventType.TIMER, 0))
        assert monitor.rate_bps(flow_id) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowRateMonitor(slot_period_ps=0)


class TestEwmaEstimator:
    def test_estimate_rises_with_traffic(self):
        est = EwmaRateEstimator(num_flows=64, tau_ps=1_000_000)
        est.install_route(H1_IP, 1)
        pkt = make_udp_packet(H0_IP, H1_IP, payload_len=958)
        flow_id = flow_hash(pkt, 64)
        now = 0
        for _ in range(20):
            now += 100_000
            est.ingress(FakeCtx(now), pkt.clone(), StandardMetadata())
        assert est.rate_bps(flow_id) > 0

    def test_estimate_frozen_without_packets(self):
        est = EwmaRateEstimator(num_flows=64, tau_ps=1_000_000)
        est.install_route(H1_IP, 1)
        pkt = make_udp_packet(H0_IP, H1_IP, payload_len=958)
        flow_id = flow_hash(pkt, 64)
        for now in (100, 200, 300):
            est.ingress(FakeCtx(now), pkt.clone(), StandardMetadata())
        frozen = est.rate_bps(flow_id)
        # Time passes, no packets: the estimate cannot change.
        assert est.rate_bps(flow_id) == frozen


class TestHeavyHitters:
    def test_validation(self):
        with pytest.raises(ValueError):
            HeavyHitterDetector(reset_mode="sometimes")
        with pytest.raises(ValueError):
            HeavyHitterDetector(threshold_packets=0)

    def test_reports_over_threshold_once_per_window(self):
        detector = HeavyHitterDetector(
            width=256, depth=2, threshold_packets=5, reset_mode="timer"
        )
        detector.install_route(H1_IP, 1)
        ctx = FakeCtx()
        pkt = make_udp_packet(H0_IP, H1_IP, sport=9, dport=9)
        for _ in range(10):
            detector.ingress(ctx, pkt.clone(), StandardMetadata())
        assert len(detector.reports) == 1  # deduplicated within a window

    def test_timer_reset_reopens_reporting(self):
        detector = HeavyHitterDetector(
            width=256, depth=2, threshold_packets=3, reset_mode="timer"
        )
        detector.install_route(H1_IP, 1)
        ctx = FakeCtx()
        pkt = make_udp_packet(H0_IP, H1_IP, sport=9, dport=9)
        for _ in range(5):
            detector.ingress(ctx, pkt.clone(), StandardMetadata())
        detector.on_timer(ctx, Event(EventType.TIMER, 0))
        assert detector.sketch.total() == 0
        for _ in range(5):
            detector.ingress(ctx, pkt.clone(), StandardMetadata())
        assert len(detector.reports) == 2

    def test_control_reset_entry_point(self):
        detector = HeavyHitterDetector(reset_mode="control")
        detector.sketch.update(b"x", 10)
        detector.control_reset()
        assert detector.sketch.total() == 0
        assert detector.resets_performed == 1

    def test_mice_not_reported(self):
        detector = HeavyHitterDetector(width=2048, depth=3, threshold_packets=100)
        detector.install_route(H1_IP, 1)
        ctx = FakeCtx()
        for i in range(50):
            pkt = make_udp_packet(H0_IP, H1_IP, sport=i, dport=1)
            detector.ingress(ctx, pkt, StandardMetadata())
        assert detector.reports == []


class TestIntTelemetry:
    def test_window_aggregation_and_flush(self):
        aggregator = IntAggregator(
            switch_id=7, monitor_port=2, window_ps=1 * MILLISECONDS,
            anomaly_queue_bytes=1_000, filter_reports=True,
        )
        aggregator.install_route(H1_IP, 1)
        ctx = FakeCtx()
        aggregator.on_enqueue(ctx, Event(EventType.ENQUEUE, 0, meta={"buffer_bytes": 5_000}))
        aggregator.on_overflow(ctx, Event(EventType.BUFFER_OVERFLOW, 0, meta={}))
        aggregator.on_timer(ctx, Event(EventType.TIMER, 0))
        assert aggregator.reports_sent == 1
        assert len(aggregator.windows) == 1
        window = aggregator.windows[0]
        assert window.max_queue_bytes == 5_000
        assert window.drops == 1
        # Window state reset afterwards.
        assert aggregator.window_state.read(0) == 0

    def test_quiet_window_filtered(self):
        aggregator = IntAggregator(
            switch_id=7, monitor_port=2, anomaly_queue_bytes=10_000,
            filter_reports=True,
        )
        ctx = FakeCtx()
        aggregator.on_enqueue(ctx, Event(EventType.ENQUEUE, 0, meta={"buffer_bytes": 100}))
        aggregator.on_timer(ctx, Event(EventType.TIMER, 0))
        assert aggregator.reports_sent == 0
        assert aggregator.windows[0].reported is False

    def test_unfiltered_mode_reports_everything(self):
        aggregator = IntAggregator(
            switch_id=7, monitor_port=2, filter_reports=False,
        )
        ctx = FakeCtx()
        aggregator.on_timer(ctx, Event(EventType.TIMER, 0))
        assert aggregator.reports_sent == 1

    def test_flow_counting_distinct(self):
        aggregator = IntAggregator(switch_id=7, monitor_port=2)
        aggregator.install_route(H1_IP, 1)
        ctx = FakeCtx()
        for sport in (1, 1, 2, 3, 3, 3):
            pkt = make_udp_packet(H0_IP, H1_IP, sport=sport, dport=9)
            aggregator.ingress(ctx, pkt, StandardMetadata())
        assert aggregator.flows_this_window == 3

    def test_postcards_one_report_per_packet(self):
        postcards = PostcardTelemetry(switch_id=1, monitor_port=2)
        postcards.install_route(H1_IP, 1)
        ctx = FakeCtx()
        for _ in range(7):
            postcards.ingress(ctx, make_udp_packet(H0_IP, H1_IP), StandardMetadata())
        assert postcards.reports_sent == 7
        assert postcards.report_reduction() == 1.0
        assert len(ctx.generated) == 7
