"""Unit tests for the reliable-delivery protocol."""

import pytest

from repro.apps.frr import StaticRouteProgram
from repro.experiments.factories import make_sume_switch
from repro.net.reliable import ReliableReceiver, ReliableSender
from repro.net.topology import build_linear
from repro.sim.units import MILLISECONDS

H0_IP = 0x0A00_0001
H1_IP = 0x0A00_0002


def make_path(loss_window=None):
    network = build_linear(make_sume_switch(), switch_count=1)
    program = StaticRouteProgram()
    program.install_routes({H1_IP: 1, H0_IP: 0})
    network.switches["s0"].load_program(program)
    return network


def test_validation():
    network = make_path()
    with pytest.raises(ValueError):
        ReliableSender(network.hosts["h0"], H1_IP, total_packets=0)
    with pytest.raises(ValueError):
        ReliableSender(network.hosts["h0"], H1_IP, total_packets=1, window=0)
    with pytest.raises(ValueError):
        ReliableSender(network.hosts["h0"], H1_IP, total_packets=1, timeout_ps=0)


def test_lossless_transfer_completes_without_retransmission():
    network = make_path()
    sender = ReliableSender(network.hosts["h0"], H1_IP, total_packets=100)
    receiver = ReliableReceiver(network.hosts["h1"])
    sender.start()
    network.run(until_ps=100 * MILLISECONDS)
    assert sender.stats.complete
    assert sender.stats.retransmissions == 0
    assert receiver.delivered == 100
    assert receiver.duplicates == 0


def test_window_limits_outstanding_packets():
    network = make_path()
    sender = ReliableSender(
        network.hosts["h0"], H1_IP, total_packets=100, window=4
    )
    ReliableReceiver(network.hosts["h1"])
    sender.start()
    # After the initial fill, exactly `window` packets are outstanding.
    network.sim.run(max_events=1)
    assert sender.stats.data_sent == 4


def test_loss_recovered_by_timeout():
    network = make_path()
    # A *silent* outage (the MAC keeps transmitting into the dead wire,
    # so packets are genuinely lost rather than queued).
    link = network.link_between("s0", "h1")
    network.sim.call_at(
        int(0.05 * MILLISECONDS), lambda: setattr(link, "up", False)
    )
    network.sim.call_at(
        int(1.0 * MILLISECONDS), lambda: setattr(link, "up", True)
    )
    sender = ReliableSender(
        network.hosts["h0"], H1_IP, total_packets=200,
        timeout_ps=2 * MILLISECONDS,
    )
    receiver = ReliableReceiver(network.hosts["h1"])
    sender.start()
    network.run(until_ps=200 * MILLISECONDS)
    assert sender.stats.complete
    assert sender.stats.retransmissions > 0
    assert receiver.delivered == 200


def test_receiver_reorders_out_of_order_arrivals():
    """Out-of-order segments are buffered and delivered in order."""
    from repro.net.host import Host
    from repro.net.link import Link
    from repro.packet.builder import make_tcp_packet
    from repro.packet.headers import Tcp
    from repro.sim.kernel import Simulator

    sim = Simulator()
    host = Host(sim, "rx", H1_IP)

    class Peer:
        def receive(self, pkt, port):
            pass

        def set_link_status(self, port, up):
            pass

    link = Link(sim, host, 0, Peer(), 0)
    host.attach_link(link)
    receiver = ReliableReceiver(host)

    def data(seq):
        pkt = make_tcp_packet(H0_IP, H1_IP, sport=40_001, dport=50_001)
        pkt.require(Tcp).set(seq=seq)
        return pkt

    host.receive(data(1), 0)  # ahead of time
    assert receiver.out_of_order == 1
    assert receiver.delivered == 0
    host.receive(data(0), 0)  # the gap fills; both deliver
    assert receiver.delivered == 2
    host.receive(data(0), 0)  # stale duplicate
    assert receiver.duplicates == 1
    sim.run()


def test_duplicate_acks_ignored_by_sender():
    network = make_path()
    sender = ReliableSender(network.hosts["h0"], H1_IP, total_packets=10)
    ReliableReceiver(network.hosts["h1"])
    sender.start()
    network.run(until_ps=50 * MILLISECONDS)
    assert sender.stats.complete
    # Completion time recorded once.
    done_at = sender.stats.completed_at_ps
    network.run(until_ps=60 * MILLISECONDS)
    assert sender.stats.completed_at_ps == done_at
