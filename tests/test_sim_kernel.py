"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_starts_at_time_zero():
    sim = Simulator()
    assert sim.now_ps == 0
    assert sim.pending_events == 0


def test_callbacks_run_in_time_order():
    sim = Simulator()
    order = []
    sim.call_at(300, order.append, "c")
    sim.call_at(100, order.append, "a")
    sim.call_at(200, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_runs_in_scheduling_order():
    sim = Simulator()
    order = []
    for label in "abcd":
        sim.call_at(50, order.append, label)
    sim.run()
    assert order == ["a", "b", "c", "d"]


def test_priority_breaks_time_ties():
    sim = Simulator()
    order = []
    sim.call_at(50, order.append, "low", priority=10)
    sim.call_at(50, order.append, "high", priority=0)
    sim.run()
    assert order == ["high", "low"]


def test_clock_advances_to_event_times():
    sim = Simulator()
    seen = []
    sim.call_at(123, lambda: seen.append(sim.now_ps))
    sim.call_at(456, lambda: seen.append(sim.now_ps))
    sim.run()
    assert seen == [123, 456]
    assert sim.now_ps == 456


def test_call_after_is_relative():
    sim = Simulator()
    seen = []
    sim.call_at(100, lambda: sim.call_after(50, lambda: seen.append(sim.now_ps)))
    sim.run()
    assert seen == [150]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.call_at(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(50, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_after(-1, lambda: None)


def test_cancelled_events_do_not_run():
    sim = Simulator()
    ran = []
    handle = sim.call_at(10, ran.append, "x")
    handle.cancel()
    sim.run()
    assert ran == []
    assert sim.events_executed == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.call_at(10, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim.run() == 0


def test_run_until_bound_stops_and_advances_clock():
    sim = Simulator()
    ran = []
    sim.call_at(100, ran.append, 1)
    sim.call_at(300, ran.append, 2)
    executed = sim.run(until_ps=200)
    assert executed == 1
    assert ran == [1]
    assert sim.now_ps == 200  # clock advanced to the bound
    sim.run()
    assert ran == [1, 2]


def test_run_until_includes_events_at_bound():
    sim = Simulator()
    ran = []
    sim.call_at(200, ran.append, 1)
    sim.run(until_ps=200)
    assert ran == [1]


def test_max_events_bound():
    sim = Simulator()
    ran = []
    for t in (10, 20, 30):
        sim.call_at(t, ran.append, t)
    assert sim.run(max_events=2) == 2
    assert ran == [10, 20]


def test_step_runs_one_event():
    sim = Simulator()
    ran = []
    sim.call_at(10, ran.append, 1)
    sim.call_at(20, ran.append, 2)
    assert sim.step() is True
    assert ran == [1]
    assert sim.step() is True
    assert sim.step() is False


def test_callbacks_can_schedule_more_work():
    sim = Simulator()
    counter = []

    def chain(n):
        counter.append(n)
        if n < 5:
            sim.call_after(10, chain, n + 1)

    sim.call_at(0, chain, 0)
    sim.run()
    assert counter == [0, 1, 2, 3, 4, 5]
    assert sim.now_ps == 50


def test_reset_clears_everything():
    sim = Simulator()
    sim.call_at(10, lambda: None)
    sim.run()
    sim.reset()
    assert sim.now_ps == 0
    assert sim.pending_events == 0
    assert sim.events_executed == 0


def test_not_reentrant():
    sim = Simulator()

    def recurse():
        sim.run()

    sim.call_at(1, recurse)
    with pytest.raises(SimulationError):
        sim.run()


def test_pending_excludes_cancelled():
    sim = Simulator()
    sim.call_at(10, lambda: None)
    drop = sim.call_at(20, lambda: None)
    drop.cancel()
    assert sim.pending_events == 1


def test_pending_counter_survives_mass_cancellation():
    """The live counter stays exact through tombstone compaction."""
    sim = Simulator()
    handles = [sim.call_at(10 + i, lambda: None) for i in range(100)]
    for handle in handles[:80]:
        handle.cancel()
    # Compaction has certainly triggered (80 > 20), yet the count and
    # the executed schedule are unaffected.
    assert sim.pending_events == 20
    assert len(sim._queue) <= 40
    assert sim.run() == 20
    assert sim.pending_events == 0


def test_compaction_preserves_order():
    sim = Simulator()
    order = []
    doomed = [sim.call_at(50, order.append, f"x{i}") for i in range(40)]
    survivors = ["a", "b", "c", "d"]
    for label in survivors:
        sim.call_at(50, order.append, label)
    for handle in doomed:
        handle.cancel()
    sim.run()
    assert order == survivors  # same-time survivors still run in schedule order


def test_cancel_after_execution_does_not_corrupt_pending():
    sim = Simulator()
    handle = sim.call_at(10, lambda: None)
    sim.call_at(20, lambda: None)
    sim.run(max_events=1)
    handle.cancel()  # already ran; must not decrement anything
    assert sim.pending_events == 1
    sim.run()
    assert sim.pending_events == 0


def test_cancel_after_reset_is_harmless():
    sim = Simulator()
    handle = sim.call_at(10, lambda: None)
    sim.reset()
    handle.cancel()
    assert sim.pending_events == 0


def test_execution_observer_sees_every_callback():
    sim = Simulator()
    seen = []

    def observe(ev):
        seen.append(ev.time_ps)

    sim.add_execution_observer(observe)
    sim.call_at(10, lambda: None)
    sim.call_at(20, lambda: None)
    cancelled = sim.call_at(15, lambda: None)
    cancelled.cancel()
    sim.run()
    assert seen == [10, 20]
    sim.remove_execution_observer(observe)
    sim.call_at(30, lambda: None)
    sim.run()
    assert seen == [10, 20]  # detached observers see nothing further
