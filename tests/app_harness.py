"""Shared harness for application unit tests.

A single SUME Event Switch (full event set) with two connected hosts:
h0 on port 0 (ip 0x0A000001), h1 on port 1 (ip 0x0A000002).  Tests
load a program, push packets from h0, and inspect what reaches h1.
"""

from __future__ import annotations

from repro.experiments.factories import make_baseline_switch, make_sume_switch
from repro.net.topology import build_linear
from repro.workloads.sink import PacketSink

H0_IP = 0x0A00_0001
H1_IP = 0x0A00_0002


def single_switch(
    program, arch="sume", full_events=True, install_routes=True, **factory_kwargs
):
    """Build the harness; returns (network, switch, sink at h1)."""
    if arch == "sume":
        factory = make_sume_switch(full_events=full_events, **factory_kwargs)
    elif arch == "baseline":
        factory = make_baseline_switch(**factory_kwargs)
    else:
        raise ValueError(f"unknown arch {arch!r}")
    network = build_linear(factory, switch_count=1)
    if install_routes and hasattr(program, "install_route"):
        program.install_route(H1_IP, 1)
        program.install_route(H0_IP, 0)
    network.switches["s0"].load_program(program)
    sink = PacketSink("h1")
    network.hosts["h1"].add_sink(sink)
    return network, network.switches["s0"], sink
