"""Unit tests for the logical event-driven switch (paper Figure 2)."""


from repro.arch.event_driven import LogicalEventSwitch
from repro.arch.events import EventType
from repro.arch.program import P4Program, handler
from repro.packet.builder import make_udp_packet
from repro.pisa.externs.register import SharedRegister
from repro.sim.kernel import Simulator


class QueueTracker(P4Program):
    """The §2 pattern: enqueue/dequeue events maintain shared state."""

    def __init__(self):
        super().__init__()
        self.qsize = SharedRegister(4, name="qsize")
        self.reads = []
        self.event_log = []

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx, pkt, meta):
        meta.enq_meta["q"] = 0
        meta.enq_meta["len"] = pkt.total_len
        meta.deq_meta["q"] = 0
        meta.deq_meta["len"] = pkt.total_len
        self.reads.append(self.qsize.read(0))
        meta.send_to_port(1)

    @handler(EventType.ENQUEUE)
    def on_enqueue(self, ctx, event):
        self.event_log.append(("enq", event.time_ps))
        # Generated packets bypass the ingress control, so fall back to
        # the architecture-provided metadata.
        self.qsize.add(
            event.meta.get("q", 0), event.meta.get("len", event.meta["pkt_len"])
        )

    @handler(EventType.DEQUEUE)
    def on_dequeue(self, ctx, event):
        self.event_log.append(("deq", event.time_ps))
        self.qsize.sub(
            event.meta.get("q", 0), event.meta.get("len", event.meta["pkt_len"])
        )

    @handler(EventType.PACKET_TRANSMITTED)
    def on_tx(self, ctx, event):
        self.event_log.append(("tx", event.time_ps))

    @handler(EventType.TIMER)
    def on_timer(self, ctx, event):
        self.event_log.append(("timer", event.time_ps))

    @handler(EventType.USER)
    def on_user(self, ctx, event):
        self.event_log.append(("user", event.meta.get("tag", 0)))


def make_switch():
    sim = Simulator()
    switch = LogicalEventSwitch(sim)
    program = QueueTracker()
    switch.load_program(program)
    switch.set_tx_callback(lambda pkt, port: None)
    return sim, switch, program


def test_shared_register_accepted():
    sim, switch, program = make_switch()
    assert switch.description.supports_shared_state


def test_enqueue_dequeue_events_maintain_state():
    sim, switch, program = make_switch()
    switch.receive(make_udp_packet(1, 2, payload_len=436), 0)
    sim.run()
    # Packet fully drained: size back to zero.
    assert program.qsize.read(0) == 0
    kinds = [kind for kind, _ in program.event_log]
    assert kinds == ["enq", "deq", "tx"]


def test_events_dispatch_synchronously():
    """The logical model has no delivery lag: handler time == fire time."""
    sim, switch, program = make_switch()
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    for kind, fire_time in program.event_log:
        pass  # times recorded are the event's own timestamps
    assert switch.events_fired[EventType.ENQUEUE] == 1
    assert switch.events_handled[EventType.ENQUEUE] == 1


def test_state_is_never_stale_under_load():
    """Back-to-back packets read exactly the true outstanding bytes."""
    sim, switch, program = make_switch()
    for i in range(10):
        sim.call_at(i * 1_000, switch.receive, make_udp_packet(1, 2, payload_len=958), 0)
    sim.run()
    # Each read must equal bytes currently buffered (truth): with
    # synchronous events the register is exact, so reads are multiples
    # of the packet size and never negative/wrapped.
    assert all(read % 1_000 == 0 for read in program.reads)
    assert all(read < (1 << 31) for read in program.reads)
    assert program.qsize.read(0) == 0  # fully drained at the end


def test_timer_events():
    sim, switch, program = make_switch()
    switch.configure_timer(3, 1_000_000)
    sim.run(until_ps=3_500_000)
    timers = [entry for entry in program.event_log if entry[0] == "timer"]
    assert len(timers) == 3
    switch.cancel_timer(3)
    sim.run(until_ps=10_000_000)
    assert len([e for e in program.event_log if e[0] == "timer"]) == 3


def test_user_events_with_delay():
    sim, switch, program = make_switch()
    switch.raise_user_event({"tag": 42}, delay_ps=500)
    sim.run()
    assert ("user", 42) in program.event_log


def test_generated_packets_enter_ingress():
    class Generatey(QueueTracker):
        @handler(EventType.GENERATED_PACKET)
        def on_generated(self, ctx, pkt, meta):
            meta.send_to_port(0)

    sim = Simulator()
    switch = LogicalEventSwitch(sim)
    program = Generatey()
    switch.load_program(program)
    out = []
    switch.set_tx_callback(lambda pkt, port: out.append(port))
    switch.inject_generated(make_udp_packet(5, 6))
    sim.run()
    assert out == [0]


def test_event_pipelines_created_per_handled_kind():
    sim, switch, program = make_switch()
    kinds = set(switch.event_pipelines)
    assert EventType.ENQUEUE in kinds
    assert EventType.DEQUEUE in kinds
    assert EventType.TIMER in kinds
    assert EventType.INGRESS_PACKET not in kinds  # packet pipelines separate


def test_overflow_event_delivered():
    class OverflowWatcher(QueueTracker):
        def __init__(self):
            super().__init__()
            self.overflows = 0

        @handler(EventType.BUFFER_OVERFLOW)
        def on_overflow(self, ctx, event):
            self.overflows += 1

    sim = Simulator()
    switch = LogicalEventSwitch(sim, queue_capacity_bytes=1_500)
    program = OverflowWatcher()
    switch.load_program(program)
    switch.set_tx_callback(lambda pkt, port: None)
    switch.tm.set_port_rate(1, 0.001)  # freeze the egress port
    for i in range(5):
        sim.call_at(i + 1, switch.receive, make_udp_packet(1, 2, payload_len=936), 0)
    sim.run(until_ps=1_000_000)
    assert program.overflows > 0
    assert switch.events_fired[EventType.BUFFER_OVERFLOW] == program.overflows
