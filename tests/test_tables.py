"""Unit tests for match-action tables and actions."""

import pytest

from repro.packet.builder import make_udp_packet
from repro.pisa.action import DROP, FORWARD, NO_ACTION, SET_PRIORITY, TO_CPU
from repro.pisa.metadata import StandardMetadata
from repro.pisa.table import ExactTable, LpmTable, TernaryTable


class TestActions:
    def test_bind_validates_params(self):
        call = FORWARD.bind(port=3)
        assert call.params == {"port": 3}
        with pytest.raises(TypeError):
            FORWARD.bind()
        with pytest.raises(TypeError):
            FORWARD.bind(port=1, extra=2)
        with pytest.raises(TypeError):
            DROP.bind(port=1)

    def test_execute_steers_metadata(self):
        pkt = make_udp_packet(1, 2)
        meta = StandardMetadata()
        FORWARD.bind(port=2).execute(pkt, meta)
        assert meta.egress_spec == 2
        DROP.bind().execute(pkt, meta)
        assert meta.dropped
        TO_CPU.bind().execute(pkt, meta)
        assert meta.to_cpu
        SET_PRIORITY.bind(priority=5).execute(pkt, meta)
        assert meta.priority == 5


class TestExactTable:
    def test_hit_and_miss(self):
        table = ExactTable("fwd")
        table.insert((0x0A000001,), FORWARD.bind(port=1))
        hit = table.apply((0x0A000001,))
        miss = table.apply((0x0A000099,))
        assert hit.params["port"] == 1
        assert miss.action is NO_ACTION
        assert table.hit_count == 1
        assert table.miss_count == 1

    def test_default_action(self):
        table = ExactTable("fwd")
        table.set_default(DROP.bind())
        assert table.apply((1,)).action is DROP

    def test_overwrite_same_key(self):
        table = ExactTable("fwd")
        table.insert((1,), FORWARD.bind(port=1))
        table.insert((1,), FORWARD.bind(port=2))
        assert table.entry_count() == 1
        assert table.apply((1,)).params["port"] == 2

    def test_capacity_enforced(self):
        table = ExactTable("tiny", max_entries=2)
        table.insert((1,), NO_ACTION.bind())
        table.insert((2,), NO_ACTION.bind())
        with pytest.raises(OverflowError):
            table.insert((3,), NO_ACTION.bind())

    def test_remove(self):
        table = ExactTable("fwd")
        table.insert((1,), NO_ACTION.bind())
        table.remove((1,))
        assert table.lookup((1,)) is None
        with pytest.raises(KeyError):
            table.remove((1,))


class TestLpmTable:
    def test_longest_prefix_wins(self):
        table = LpmTable("routes", width_bits=32)
        table.insert(0x0A000000, 8, FORWARD.bind(port=1))  # 10/8
        table.insert(0x0A010000, 16, FORWARD.bind(port=2))  # 10.1/16
        table.insert(0x0A010200, 24, FORWARD.bind(port=3))  # 10.1.2/24
        assert table.apply_value(0x0A010203).params["port"] == 3
        assert table.apply_value(0x0A01FF01).params["port"] == 2
        assert table.apply_value(0x0AFF0001).params["port"] == 1

    def test_default_route_via_zero_prefix(self):
        table = LpmTable("routes")
        table.insert(0, 0, FORWARD.bind(port=9))
        assert table.apply_value(0xDEADBEEF).params["port"] == 9

    def test_miss_uses_default_action(self):
        table = LpmTable("routes")
        table.set_default(DROP.bind())
        assert table.apply_value(1).action is DROP

    def test_prefix_is_masked_on_insert(self):
        table = LpmTable("routes")
        # Host bits beyond the prefix length are ignored.
        table.insert(0x0A0000FF, 8, FORWARD.bind(port=1))
        assert table.lookup_value(0x0A123456) is not None

    def test_invalid_prefix_len(self):
        table = LpmTable("routes", width_bits=32)
        with pytest.raises(ValueError):
            table.insert(0, 33, NO_ACTION.bind())

    def test_remove(self):
        table = LpmTable("routes")
        table.insert(0x0A000000, 8, NO_ACTION.bind())
        table.remove(0x0A000000, 8)
        assert table.lookup_value(0x0A000001) is None

    def test_entry_count(self):
        table = LpmTable("routes")
        table.insert(0x0A000000, 8, NO_ACTION.bind())
        table.insert(0x0B000000, 8, NO_ACTION.bind())
        table.insert(0x0A010000, 16, NO_ACTION.bind())
        assert table.entry_count() == 3


class TestTernaryTable:
    def test_masked_match(self):
        table = TernaryTable("acl")
        table.insert((0x0A000000,), (0xFF000000,), priority=10, action=DROP.bind())
        assert table.apply((0x0A123456,)).action is DROP
        assert table.apply((0x0B000000,)).action is NO_ACTION

    def test_lower_priority_wins(self):
        table = TernaryTable("acl")
        table.insert((0,), (0,), priority=100, action=FORWARD.bind(port=1))
        table.insert((0x0A000000,), (0xFF000000,), priority=1, action=DROP.bind())
        assert table.apply((0x0A000001,)).action is DROP
        assert table.apply((0x0B000001,)).params == {"port": 1}

    def test_multi_field_keys(self):
        table = TernaryTable("acl")
        table.insert((6, 80), (0xFF, 0xFFFF), priority=1, action=DROP.bind())
        assert table.apply((6, 80)).action is DROP
        assert table.apply((6, 443)).action is NO_ACTION
        assert table.apply((6,)).action is NO_ACTION  # arity mismatch

    def test_arity_validated_on_insert(self):
        table = TernaryTable("acl")
        with pytest.raises(ValueError):
            table.insert((1, 2), (0xFF,), priority=1, action=NO_ACTION.bind())

    def test_capacity(self):
        table = TernaryTable("acl", max_entries=1)
        table.insert((1,), (1,), 1, NO_ACTION.bind())
        with pytest.raises(OverflowError):
            table.insert((2,), (2,), 2, NO_ACTION.bind())
