"""Unit and property tests for the §7 consistency model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.state.consistency import DelayedRmwRegister, run_contention


class TestDelayedRmw:
    def test_atomic_latency_zero_is_exact(self):
        register = DelayedRmwRegister(2, latency_cycles=0)
        for cycle in range(100):
            register.add_rmw(cycle, cycle % 2, 1)
        assert register.total() == 100
        assert register.interference_commits == 0

    def test_lost_update_on_overlap(self):
        register = DelayedRmwRegister(1, latency_cycles=5)
        register.add_rmw(0, 0, 1)  # reads 0, commits 1 at cycle 5
        register.add_rmw(2, 0, 1)  # reads 0 too, commits 1 at cycle 7
        register.advance_to(10)
        assert register.read(10, 0) == 1  # one update lost
        assert register.interference_commits == 1

    def test_no_overlap_no_loss(self):
        register = DelayedRmwRegister(1, latency_cycles=2)
        register.add_rmw(0, 0, 1)
        register.advance_to(2)
        register.add_rmw(3, 0, 1)  # reads after the first commit
        register.advance_to(10)
        assert register.read(10, 0) == 2
        assert register.interference_commits == 0

    def test_different_indices_never_conflict(self):
        register = DelayedRmwRegister(4, latency_cycles=8)
        for cycle in range(4):
            register.add_rmw(cycle, cycle, 1)
        register.advance_to(100)
        assert register.total() == 4
        assert register.interference_commits == 0

    def test_reads_do_not_see_in_flight_writes(self):
        register = DelayedRmwRegister(1, latency_cycles=5)
        register.add_rmw(0, 0, 7)
        assert register.read(3, 0) == 0  # still uncommitted
        register.advance_to(5)
        assert register.read(6, 0) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            DelayedRmwRegister(0, 1)
        with pytest.raises(ValueError):
            DelayedRmwRegister(1, -1)
        register = DelayedRmwRegister(1, 0)
        with pytest.raises(IndexError):
            register.add_rmw(0, 5, 1)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(0, 8),
        st.lists(st.tuples(st.integers(0, 3), st.integers(0, 50)), max_size=80),
    )
    def test_shortfall_conservation_property(self, latency, schedule):
        """issued − applied == lost, and never negative."""
        register = DelayedRmwRegister(4, latency)
        for index, cycle in schedule:
            register.advance_to(cycle)
            register.add_rmw(cycle, index, 1)
        register.advance_to(10_000)
        applied = register.total()
        assert 0 <= applied <= register.issued
        if latency == 0:
            assert applied == register.issued


class TestContention:
    def test_atomic_baseline(self):
        result = run_contention(0, cycles=10_000)
        assert result.lost_updates == 0
        assert result.loss_rate == 0.0

    def test_loss_grows_with_latency(self):
        small = run_contention(1, cycles=10_000)
        large = run_contention(8, cycles=10_000)
        assert large.loss_rate > small.loss_rate > 0

    def test_deterministic(self):
        assert run_contention(4, cycles=5_000).lost_updates == run_contention(
            4, cycles=5_000
        ).lost_updates

    def test_validation(self):
        with pytest.raises(ValueError):
            run_contention(1, thread_count=0)
        with pytest.raises(ValueError):
            run_contention(1, fire_probability=0)


class TestDrainPolicies:
    def test_unknown_policy_rejected(self):
        from repro.state.aggregation import AggregationRegisterFile

        with pytest.raises(ValueError):
            AggregationRegisterFile(4, drain_policy="random")

    def test_largest_drains_biggest_backlog_first(self):
        from repro.state.aggregation import AggregationRegisterFile

        file = AggregationRegisterFile(4, drain_policy="largest")
        file.enqueue_update(0, 0, 10)
        file.enqueue_update(1, 1, 9_000)
        file.drain(5, max_indices=1)
        assert file.main.register.read(1) == 9_000
        assert file.main.register.read(0) == 0

    def test_lifo_drains_most_recent_first(self):
        from repro.state.aggregation import AggregationRegisterFile

        file = AggregationRegisterFile(4, drain_policy="lifo")
        file.enqueue_update(0, 0, 10)
        file.enqueue_update(1, 1, 20)
        file.drain(5, max_indices=1)
        assert file.main.register.read(1) == 20
        assert file.main.register.read(0) == 0

    def test_all_policies_converge_when_fully_drained(self):
        from repro.state.aggregation import AggregationRegisterFile

        for policy in AggregationRegisterFile.DRAIN_POLICIES:
            file = AggregationRegisterFile(4, drain_policy=policy)
            for cycle in range(10):
                file.enqueue_update(cycle, cycle % 4, 50)
            cycle = 100
            while file.pending_indices:
                file.drain(cycle)
                cycle += 1
            assert file.max_staleness() == 0
