"""Unit tests for the resource model (Table 3)."""

import pytest

from repro.packet.parser import standard_parser
from repro.resources.model import (
    ResourceVector,
    SwitchBudget,
    estimate_fifo,
    estimate_metadata_bus_widening,
    estimate_parser,
    estimate_pipeline_stage,
    estimate_register,
    estimate_table,
)
from repro.resources.report import (
    event_logic_build,
    event_switch_build,
    reference_switch_build,
    table3_rows,
    utilization_report,
)
from repro.resources.virtex7 import VIRTEX7_690T


class TestResourceVector:
    def test_addition(self):
        total = ResourceVector(1, 2, 3) + ResourceVector(10, 20, 30)
        assert (total.luts, total.flip_flops, total.bram_36kb) == (11, 22, 33)

    def test_scaling(self):
        scaled = ResourceVector(2, 4, 6).scaled(0.5)
        assert (scaled.luts, scaled.flip_flops, scaled.bram_36kb) == (1, 2, 3)

    def test_percent_of_device(self):
        vector = ResourceVector(luts=4_332, flip_flops=8_664, bram_36kb=14.7)
        percent = vector.percent_of(VIRTEX7_690T)
        assert percent["luts"] == pytest.approx(1.0)
        assert percent["flip_flops"] == pytest.approx(1.0)
        assert percent["bram"] == pytest.approx(1.0)


class TestEstimators:
    def test_register_bram_scales_with_bits(self):
        small = estimate_register(size=64, width_bits=32)  # 2 Kb → 1 BRAM
        large = estimate_register(size=64 * 1024, width_bits=32)  # 2 Mb
        assert small.bram_36kb == 1
        assert large.bram_36kb > 50

    def test_table_kinds(self):
        exact = estimate_table(1024, 48, "exact")
        estimate_table(1024, 32, "lpm")
        ternary = estimate_table(256, 48, "ternary")
        assert exact.bram_36kb > 0
        assert ternary.bram_36kb == 0  # TCAM emulation burns LUTs
        assert ternary.luts > exact.luts
        with pytest.raises(ValueError):
            estimate_table(10, 10, "quantum")

    def test_parser_scales_with_states(self):
        cost = estimate_parser(standard_parser())
        assert cost.luts == 280 * 8

    def test_bus_widening_scales_with_stages(self):
        narrow = estimate_metadata_bus_widening(96, 4)
        wide = estimate_metadata_bus_widening(96, 8)
        assert wide.flip_flops == 2 * narrow.flip_flops

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_register(0)
        with pytest.raises(ValueError):
            estimate_table(0, 8)
        with pytest.raises(ValueError):
            estimate_pipeline_stage(0)
        with pytest.raises(ValueError):
            estimate_fifo(0, 8)


class TestBudgets:
    def test_budget_totals(self):
        budget = SwitchBudget("test")
        budget.add("a", ResourceVector(1, 2, 3))
        budget.add("b", ResourceVector(10, 20, 30), category="events")
        total = budget.total()
        assert total.luts == 11
        events_only = budget.total_category("events")
        assert events_only.luts == 10

    def test_event_switch_is_reference_plus_events(self):
        reference = reference_switch_build().total()
        events = event_logic_build().total()
        combined = event_switch_build().total()
        assert combined.luts == pytest.approx(reference.luts + events.luts)
        assert combined.bram_36kb == pytest.approx(
            reference.bram_36kb + events.bram_36kb
        )


class TestProgramEstimation:
    def test_extern_estimates(self):
        from repro.pisa.externs.meter import Meter
        from repro.pisa.externs.pifo import PifoQueue
        from repro.pisa.externs.register import SharedRegister
        from repro.pisa.externs.sketch import BloomFilter, CountMinSketch
        from repro.pisa.externs.window import SlidingWindow
        from repro.resources.programs import estimate_extern

        assert estimate_extern(SharedRegister(1024)).bram_36kb >= 1
        assert estimate_extern(CountMinSketch(2048, 3)).bram_36kb >= 3
        assert estimate_extern(BloomFilter(8 * 36 * 1024)).bram_36kb == 8
        assert estimate_extern(Meter(64, 1e9, 1_000)).luts > 0
        assert estimate_extern(PifoQueue(512)).luts > 1_000
        assert estimate_extern(SlidingWindow(64, 8)).bram_36kb >= 1
        assert estimate_extern(object()).luts == 0  # unknown → free

    def test_program_estimate_scales_with_handlers(self):
        from repro.apps.microburst import MicroburstDetector
        from repro.resources.programs import HANDLER_LOGIC, estimate_program

        program = MicroburstDetector(num_regs=64)
        vector = estimate_program(program)
        # 3 handlers' control logic plus the register.
        assert vector.luts >= 3 * HANDLER_LOGIC.luts

    def test_application_rows_complete(self):
        from repro.resources.programs import application_cost_rows

        rows = application_cost_rows()
        assert len(rows) >= 12
        assert all(row["luts_percent"] > 0 for row in rows)


class TestTable3:
    def test_rows_shape(self):
        rows = table3_rows()
        assert [row["resource"] for row in rows] == [
            "Lookup Tables",
            "Flip Flops",
            "Block RAM",
        ]

    def test_matches_paper_envelope(self):
        rows = {row["resource"]: row["measured_percent_increase"] for row in table3_rows()}
        assert rows["Lookup Tables"] <= 1.0
        assert rows["Flip Flops"] <= 1.0
        assert rows["Block RAM"] <= 2.5
        # BRAM dominates, as in the paper.
        assert rows["Block RAM"] > rows["Lookup Tables"]
        assert rows["Block RAM"] > rows["Flip Flops"]

    def test_utilization_context(self):
        report = utilization_report()
        assert report["event_switch"]["luts"] > report["reference_switch"]["luts"]
        assert report["reference_switch"]["luts"] < 50  # plausible build
