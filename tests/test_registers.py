"""Unit and property tests for register externs."""

import pytest
from hypothesis import given, strategies as st

from repro.pisa.externs.register import Register, SharedRegister


class TestRegister:
    def test_initial_state_zero(self):
        reg = Register(8)
        assert reg.snapshot() == [0] * 8
        assert reg.nonzero_count() == 0

    def test_read_write(self):
        reg = Register(4)
        reg.write(2, 99)
        assert reg.read(2) == 99
        assert reg.read(0) == 0

    def test_write_wraps_to_width(self):
        reg = Register(2, width_bits=8)
        reg.write(0, 0x1FF)
        assert reg.read(0) == 0xFF

    def test_add_wraps(self):
        reg = Register(1, width_bits=8)
        reg.write(0, 250)
        assert reg.add(0, 10) == 4  # (250+10) mod 256

    def test_sub_wraps_like_hardware(self):
        reg = Register(1, width_bits=8)
        assert reg.sub(0, 1) == 255

    def test_modify(self):
        reg = Register(1)
        reg.write(0, 7)
        assert reg.modify(0, lambda v: v * 3) == 21

    def test_bounds_checked(self):
        reg = Register(4, name="r")
        with pytest.raises(IndexError):
            reg.read(4)
        with pytest.raises(IndexError):
            reg.write(-1, 0)

    def test_clear(self):
        reg = Register(4)
        reg.write(1, 5)
        reg.clear()
        assert reg.snapshot() == [0, 0, 0, 0]

    def test_access_counters(self):
        reg = Register(4)
        reg.read(0)
        reg.write(0, 1)
        reg.add(0, 1)  # read + write
        assert reg.read_count == 2
        assert reg.write_count == 2

    def test_state_bits(self):
        assert Register(1024, width_bits=32).state_bits == 32_768
        assert len(Register(10)) == 10

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Register(0)
        with pytest.raises(ValueError):
            Register(4, width_bits=0)

    @given(
        st.lists(
            st.tuples(st.integers(0, 7), st.integers(-(10**9), 10**9)),
            max_size=60,
        )
    )
    def test_add_matches_modular_arithmetic_property(self, ops):
        reg = Register(8, width_bits=16)
        model = [0] * 8
        for index, delta in ops:
            reg.add(index, delta)
            model[index] = (model[index] + delta) % (1 << 16)
        assert reg.snapshot() == model


class TestSharedRegister:
    def test_thread_attribution(self):
        reg = SharedRegister(4)
        reg.set_thread("ingress_packet")
        reg.read(0)
        reg.set_thread("buffer_enqueue")
        reg.add(0, 5)
        reg.add(1, 5)
        reg.set_thread(None)
        reg.read(0)  # unattributed
        assert reg.accesses_by_thread == {
            "ingress_packet": 1,
            "buffer_enqueue": 2,
        }
        assert reg.sharing_threads == ["buffer_enqueue", "ingress_packet"]

    def test_behaves_like_register(self):
        reg = SharedRegister(2, width_bits=8)
        reg.write(0, 200)
        assert reg.add(0, 100) == 44
