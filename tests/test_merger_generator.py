"""Unit tests for the Event Merger and the packet generator."""

import pytest

from repro.arch.events import Event, EventType
from repro.arch.generator import GeneratorConfig, PacketGenerator
from repro.arch.merger import EventMerger
from repro.packet.builder import make_udp_packet
from repro.sim.kernel import Simulator


def ev(kind=EventType.ENQUEUE, t=0):
    return Event(kind=kind, time_ps=t)


class TestEventMerger:
    def make(self, sim=None, **kwargs):
        sim = sim or Simulator()
        defaults = dict(clock_ps=5_000, slots_per_kind=1, queue_capacity=4)
        defaults.update(kwargs)
        return sim, EventMerger(sim, **defaults)

    def test_carrier_takes_pending_events(self):
        sim, merger = self.make(injection_enabled=False)
        merger.offer(ev(EventType.ENQUEUE))
        merger.offer(ev(EventType.DEQUEUE))
        taken = merger.take_for_carrier()
        assert [e.kind for e in taken] == [EventType.ENQUEUE, EventType.DEQUEUE]
        assert merger.pending_count == 0
        assert merger.stats.piggybacked == 2

    def test_slots_per_kind_limit(self):
        sim, merger = self.make(injection_enabled=False)
        for _ in range(3):
            merger.offer(ev(EventType.ENQUEUE))
        taken = merger.take_for_carrier()
        assert len(taken) == 1  # one slot per kind
        assert merger.pending_count == 2

    def test_multiple_slots(self):
        sim, merger = self.make(slots_per_kind=2, injection_enabled=False)
        for _ in range(3):
            merger.offer(ev(EventType.ENQUEUE))
        assert len(merger.take_for_carrier()) == 2

    def test_oldest_first_within_kind(self):
        sim, merger = self.make(injection_enabled=False)
        first = ev(EventType.ENQUEUE, t=1)
        second = ev(EventType.ENQUEUE, t=2)
        merger.offer(first)
        merger.offer(second)
        assert merger.take_for_carrier()[0] is first

    def test_queue_overflow_drops_oldest(self):
        sim, merger = self.make(queue_capacity=2, injection_enabled=False)
        events = [ev(EventType.ENQUEUE, t=i) for i in range(3)]
        for event in events:
            merger.offer(event)
        assert merger.stats.dropped == 1
        taken = merger.take_for_carrier()
        assert taken[0] is events[1]  # the oldest surviving one

    def test_injection_after_wait(self):
        sim = Simulator()
        _, merger = self.make(sim)
        injected = []
        merger.set_inject_fn(lambda events: injected.append(events))
        merger.offer(ev())
        sim.run()
        assert len(injected) == 1
        assert merger.stats.injected_packets == 1
        assert merger.stats.injected_events == 1

    def test_injection_disabled_leaves_events_pending(self):
        sim = Simulator()
        _, merger = self.make(sim, injection_enabled=False)
        merger.set_inject_fn(lambda events: pytest.fail("should not inject"))
        merger.offer(ev())
        sim.run()
        assert merger.pending_count == 1

    def test_repeated_injection_drains_backlog(self):
        sim = Simulator()
        _, merger = self.make(sim, queue_capacity=16)
        injected = []
        merger.set_inject_fn(lambda events: injected.extend(events))
        for i in range(5):
            merger.offer(ev(EventType.ENQUEUE, t=i))
        sim.run()
        assert len(injected) == 5  # one slot per carrier → five carriers
        assert merger.stats.injected_packets == 5

    def test_wait_accounting(self):
        sim = Simulator()
        _, merger = self.make(sim, injection_enabled=False)
        merger.offer(ev(t=0))
        sim.call_at(10_000, lambda: merger.take_for_carrier())
        sim.run()
        assert merger.stats.mean_wait_ps == 10_000

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            EventMerger(sim, clock_ps=0)
        with pytest.raises(ValueError):
            EventMerger(sim, clock_ps=10, slots_per_kind=0)
        with pytest.raises(ValueError):
            EventMerger(sim, clock_ps=10, queue_capacity=0)


class TestPacketGenerator:
    def test_periodic_generation(self):
        sim = Simulator()
        out = []
        generator = PacketGenerator(sim, out.append)
        generator.configure(
            GeneratorConfig(0, 1_000, lambda now: make_udp_packet(1, 2, ts_ps=now))
        )
        sim.run(until_ps=3_500)
        assert len(out) == 3
        assert all(pkt.generated for pkt in out)
        assert [pkt.ts_created_ps for pkt in out] == [1_000, 2_000, 3_000]

    def test_reconfigure_replaces_stream(self):
        sim = Simulator()
        out = []
        generator = PacketGenerator(sim, out.append)
        config = GeneratorConfig(0, 1_000, lambda now: make_udp_packet(1, 2))
        generator.configure(config)
        generator.configure(GeneratorConfig(0, 2_000, lambda now: make_udp_packet(3, 4)))
        sim.run(until_ps=4_500)
        assert len(out) == 2  # every 2 µs, not 1 µs

    def test_remove_stream(self):
        sim = Simulator()
        out = []
        generator = PacketGenerator(sim, out.append)
        generator.configure(GeneratorConfig(5, 1_000, lambda now: make_udp_packet(1, 2)))
        assert generator.stream_ids == [5]
        generator.remove(5)
        generator.remove(5)  # idempotent
        sim.run(until_ps=5_000)
        assert out == []

    def test_set_period(self):
        sim = Simulator()
        out = []
        generator = PacketGenerator(sim, out.append)
        generator.configure(GeneratorConfig(0, 1_000, lambda now: make_udp_packet(1, 2)))
        sim.run(until_ps=1_500)
        generator.set_period(0, 3_000)
        sim.run(until_ps=6_000)
        # Fires at 1000 and (already scheduled) 2000, then every 3000:
        # the new period takes effect from the next firing.
        assert len(out) == 3

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            GeneratorConfig(0, 0, lambda now: make_udp_packet(1, 2))
