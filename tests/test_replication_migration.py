"""Unit tests for replicated registers and swing-state migration."""

import pytest

from repro.apps.state_migration import (
    BudgetTransitProgram,
    SwingStateHeadProgram,
    make_state_transfer,
    read_state_transfer,
)
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext
from repro.packet.builder import make_udp_packet
from repro.packet.hashing import flow_hash
from repro.pisa.metadata import StandardMetadata
from repro.state.replication import ReplicatedRegister, run_multipipe

H0_IP = 0x0A00_0001
H1_IP = 0x0A00_0002


class FakeCtx(ProgramContext):
    def __init__(self):
        self.generated = []
        self._now = 0

    @property
    def now_ps(self):
        return self._now

    def generate_packet(self, pkt):
        self.generated.append(pkt)


class TestReplicatedRegister:
    def test_replica_sees_only_its_own_delta(self):
        register = ReplicatedRegister(replicas=2, size=4)
        register.add(0, 1, 100)
        assert register.read(0, 1) == 100
        assert register.read(1, 1) == 0  # other pipeline is blind
        assert register.truth(1) == 100

    def test_sync_converges_all_replicas(self):
        register = ReplicatedRegister(replicas=3, size=2)
        register.add(0, 0, 10)
        register.add(1, 0, 20)
        register.add(2, 0, 30)
        exchanged = register.sync()
        assert exchanged == 3
        for replica in range(3):
            assert register.read(replica, 0) == 60
            assert register.read_error(replica, 0) == 0

    def test_sync_cost_counts_dirty_entries_only(self):
        register = ReplicatedRegister(replicas=4, size=8)
        register.add(2, 5, 1)
        assert register.sync() == 1
        assert register.sync() == 0  # nothing dirty

    def test_read_error(self):
        register = ReplicatedRegister(replicas=2, size=1)
        register.add(0, 0, 100)
        register.add(1, 0, 50)
        assert register.read_error(0, 0) == 50
        assert register.read_error(1, 0) == 100

    def test_bounds_and_validation(self):
        with pytest.raises(ValueError):
            ReplicatedRegister(0, 4)
        with pytest.raises(ValueError):
            ReplicatedRegister(2, 0)
        register = ReplicatedRegister(2, 2)
        with pytest.raises(IndexError):
            register.add(2, 0, 1)
        with pytest.raises(IndexError):
            register.read(0, 2)

    def test_run_multipipe_monotone_in_period(self):
        tight = run_multipipe(sync_period_cycles=8, cycles=5_000)
        loose = run_multipipe(sync_period_cycles=256, cycles=5_000)
        assert tight.mean_read_error < loose.mean_read_error
        assert tight.sync_entries_per_cycle > loose.sync_entries_per_cycle
        with pytest.raises(ValueError):
            run_multipipe(pipelines=0)
        with pytest.raises(ValueError):
            run_multipipe(sync_period_cycles=0)


class TestStateTransferPackets:
    def test_roundtrip(self):
        pkt = make_state_transfer(flow_index=42, consumed_bytes=123_456)
        record = read_state_transfer(pkt)
        assert record == {"flow_index": 42, "consumed_bytes": 123_456}

    def test_non_transfer_returns_none(self):
        assert read_state_transfer(make_udp_packet(1, 2, dport=53)) is None

    def test_survives_wire_roundtrip(self):
        from repro.packet.parser import Deparser, standard_parser

        pkt = make_state_transfer(7, 99_999)
        parsed = standard_parser().parse(Deparser().deparse(pkt))
        assert read_state_transfer(parsed) == {
            "flow_index": 7,
            "consumed_bytes": 99_999,
        }


class TestBudgetTransit:
    def test_budget_enforced(self):
        transit = BudgetTransitProgram(budget_bytes=1_500, num_flows=64)
        transit.install_route(H1_IP, 1)
        ctx = FakeCtx()
        pkt = make_udp_packet(H0_IP, H1_IP, payload_len=958)  # 1000B
        meta = StandardMetadata()
        transit.ingress(ctx, pkt, meta)
        assert not meta.dropped
        meta2 = StandardMetadata()
        transit.ingress(ctx, pkt.clone(), meta2)
        assert meta2.dropped  # 2000 > 1500
        assert transit.over_budget_drops == 1

    def test_transfer_preloads_counter(self):
        transit = BudgetTransitProgram(budget_bytes=1_500, num_flows=64)
        transit.install_route(H1_IP, 1)
        ctx = FakeCtx()
        pkt = make_udp_packet(H0_IP, H1_IP, payload_len=958)
        flow_id = flow_hash(pkt, 64)
        transfer = make_state_transfer(flow_id, 1_000)
        meta = StandardMetadata()
        transit.ingress(ctx, transfer, meta)
        assert meta.dropped  # consumed locally
        assert transit.transfers_received == 1
        # The flow only has 500B of budget left now.
        meta2 = StandardMetadata()
        transit.ingress(ctx, pkt, meta2)
        assert meta2.dropped


class TestSwingHead:
    def test_failover_generates_transfers(self):
        head = SwingStateHeadProgram(num_flows=64, migrate=True)
        head.install_protected_route(H1_IP, primary=1, backup=2)
        ctx = FakeCtx()
        pkt = make_udp_packet(H0_IP, H1_IP, payload_len=958)
        head.ingress(ctx, pkt, StandardMetadata())
        head.on_link_status(
            ctx, Event(EventType.LINK_STATUS, 0, meta={"port": 1, "up": 0})
        )
        assert head.transfers_sent == 1
        transfer = ctx.generated[0]
        assert transfer.meta["probe_out_port"] == 2
        record = read_state_transfer(transfer)
        assert record["consumed_bytes"] == 1_000
        # FRR itself also happened.
        assert head.routes[H1_IP] == 2

    def test_migration_disabled_sends_nothing(self):
        head = SwingStateHeadProgram(migrate=False)
        head.install_protected_route(H1_IP, primary=1, backup=2)
        ctx = FakeCtx()
        head.ingress(ctx, make_udp_packet(H0_IP, H1_IP), StandardMetadata())
        head.on_link_status(
            ctx, Event(EventType.LINK_STATUS, 0, meta={"port": 1, "up": 0})
        )
        assert head.transfers_sent == 0
        assert head.routes[H1_IP] == 2  # FRR still fired

    def test_link_up_does_not_migrate(self):
        head = SwingStateHeadProgram(migrate=True)
        head.install_protected_route(H1_IP, primary=1, backup=2)
        ctx = FakeCtx()
        head.ingress(ctx, make_udp_packet(H0_IP, H1_IP), StandardMetadata())
        head.on_link_status(
            ctx, Event(EventType.LINK_STATUS, 0, meta={"port": 1, "up": 1})
        )
        assert head.transfers_sent == 0
