"""Unit tests for the shared ForwardingProgram plumbing."""

import pytest

from repro.apps.common import ForwardingProgram
from repro.packet.builder import make_udp_packet
from repro.packet.headers import Ethernet, Ipv4
from repro.packet.packet import Packet
from repro.pisa.metadata import StandardMetadata


def make_program(**kwargs):
    program = ForwardingProgram(**kwargs)
    program.install_route(0x0A000002, 3)
    return program


def test_forwards_known_destination():
    program = make_program()
    pkt = make_udp_packet(0x0A000001, 0x0A000002)
    meta = StandardMetadata()
    assert program.forward_by_ip(pkt, meta) == 3
    assert meta.egress_spec == 3


def test_unknown_destination_dropped_and_counted():
    program = make_program()
    meta = StandardMetadata()
    assert program.forward_by_ip(make_udp_packet(1, 0xDEAD), meta) is None
    assert meta.dropped
    assert program.unrouted_drops == 1


def test_non_ip_dropped():
    program = make_program()
    meta = StandardMetadata()
    assert program.forward_by_ip(Packet(headers=[Ethernet()]), meta) is None
    assert program.unrouted_drops == 1


def test_ttl_decremented_per_hop():
    program = make_program()
    pkt = make_udp_packet(0x0A000001, 0x0A000002)
    program.forward_by_ip(pkt, StandardMetadata())
    assert pkt.require(Ipv4).ttl == 63


def test_expired_ttl_dropped():
    program = make_program()
    pkt = make_udp_packet(0x0A000001, 0x0A000002)
    pkt.require(Ipv4).set(ttl=1)
    meta = StandardMetadata()
    assert program.forward_by_ip(pkt, meta) is None
    assert meta.dropped
    assert program.ttl_drops == 1


def test_ttl_handling_can_be_disabled():
    program = make_program(ttl_handling=False)
    pkt = make_udp_packet(0x0A000001, 0x0A000002)
    pkt.require(Ipv4).set(ttl=1)
    meta = StandardMetadata()
    assert program.forward_by_ip(pkt, meta) == 3
    assert pkt.require(Ipv4).ttl == 1  # untouched


def test_forwarding_loop_contained_by_ttl():
    """Two switches with routes pointing at each other: the TTL guard
    terminates the loop instead of simulating forever."""
    from repro.experiments.factories import make_sume_switch
    from repro.net.network import Network

    network = Network()
    factory = make_sume_switch()
    a = network.add_switch(factory(network.sim, "a", 2))
    b = network.add_switch(factory(network.sim, "b", 2))
    network.connect(a, 1, b, 1, latency_ps=1_000)
    prog_a, prog_b = ForwardingProgram(), ForwardingProgram()
    for prog in (prog_a, prog_b):
        prog.install_route(0xDEAD, 1)  # both point across the link

    class Loopy(ForwardingProgram):
        from repro.arch.events import EventType
        from repro.arch.program import handler as _handler

        @_handler(EventType.INGRESS_PACKET)
        def ingress(self, ctx, pkt, meta):
            self.forward_by_ip(pkt, meta)

    la, lb = Loopy(), Loopy()
    la.install_route(0xDEAD, 1)
    lb.install_route(0xDEAD, 1)
    a.load_program(la)
    b.load_program(lb)
    pkt = make_udp_packet(1, 0xDEAD)
    a.receive(pkt, 0)
    network.run(until_ps=50_000_000_000)
    assert la.ttl_drops + lb.ttl_drops == 1  # the loop ended
    assert network.sim.pending_events == 0


def test_install_route_validation():
    program = ForwardingProgram()
    with pytest.raises(ValueError):
        program.install_route(1, -1)
    program.install_routes({1: 2, 3: 4})
    assert program.routes == {1: 2, 3: 4}
