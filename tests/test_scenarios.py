"""The scenario registry: the single construction path for everything.

Every experiment, bench round, chaos cell, and shard fabric registers a
:class:`ScenarioSpec`; the CLI and the job service build exclusively
through the registry.  These tests pin the registry's contracts:
validation at declaration, admission-grade override checking, pickling
(specs must cross worker-process pipes), and catalog coverage — every
``experiments/*_exp.py`` module contributes at least one spec.
"""

import pickle

import pytest

from repro import scenarios
from repro.scenarios import (
    SCENARIO_MODULES,
    ScenarioError,
    ScenarioSpec,
    UnknownScenario,
    result_rows,
)


def test_load_all_covers_every_experiment_module():
    scenarios.load_all()
    names = scenarios.names()
    assert len(names) == len(set(names))
    # Every experiment module registered at least one scenario.
    registered_modules = set()
    for spec in scenarios.specs():
        entry = spec.runner or spec.builder
        registered_modules.add(entry.partition(":")[0])
    for module in SCENARIO_MODULES:
        assert module in registered_modules, f"{module} registered nothing"


def test_catalog_names_are_stable_identifiers():
    expected_somewhere = [
        "microburst/event-driven",
        "table2/rows",
        "figures/sume",
        "bench/kernel",
        "chaos/frr",
        "chaos/forked-grid",
        "shard/fattree-k4",
    ]
    names = scenarios.names()
    for name in expected_somewhere:
        assert name in names


def test_spec_validation():
    with pytest.raises(ScenarioError, match="non-empty"):
        ScenarioSpec(name="", runner="a.b:c")
    with pytest.raises(ScenarioError, match="either runner or builder"):
        ScenarioSpec(name="x")
    with pytest.raises(ScenarioError, match="either runner or builder"):
        ScenarioSpec(name="x", runner="a.b:c", builder="a.b:d", finisher="a.b:e")
    with pytest.raises(ScenarioError, match="both builder and finisher"):
        ScenarioSpec(name="x", builder="a.b:c")


def test_unknown_name_lists_the_catalog():
    with pytest.raises(UnknownScenario) as excinfo:
        scenarios.get("definitely/not/registered")
    message = str(excinfo.value)
    assert "registered scenarios" in message
    assert "microburst/event-driven" in message
    assert "definitely/not/registered" in message
    # Tag-scoped lookups list only that tag's names.
    with pytest.raises(UnknownScenario) as excinfo:
        scenarios.get("nope", tag="source")
    assert excinfo.value.registered == scenarios.names(tag="source")
    assert "table2/rows" not in str(excinfo.value)


def test_with_params_rejects_undeclared_overrides():
    spec = scenarios.get("microburst/event-driven")
    tweaked = spec.with_params(duration_ps=123)
    assert tweaked.params["duration_ps"] == 123
    assert spec.params["duration_ps"] != 123  # original untouched
    with pytest.raises(ScenarioError, match="unknown override"):
        spec.with_params(not_a_knob=1)


def test_register_conflict_and_idempotence():
    spec = ScenarioSpec(
        name="test/registry-conflict", runner="repro.resources:table3_rows"
    )
    scenarios.register(spec)
    scenarios.register(spec)  # identical re-register: no-op
    with pytest.raises(ScenarioError, match="already registered"):
        scenarios.register(
            ScenarioSpec(
                name="test/registry-conflict",
                runner="repro.resources:table3_rows",
                params={"different": True},
            )
        )


def test_specs_pickle_and_describe():
    for spec in scenarios.specs():
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        description = spec.describe()
        assert description["name"] == spec.name
        assert isinstance(description["phased"], bool)


def test_bad_entry_points_fail_loudly():
    with pytest.raises(ScenarioError, match="not of the form"):
        ScenarioSpec(name="x", runner="no-colon").run()
    with pytest.raises(ScenarioError, match="no attribute"):
        ScenarioSpec(name="x", runner="repro.resources:missing_fn").run()
    with pytest.raises(ScenarioError, match="not callable"):
        ScenarioSpec(name="x", runner="repro.resources:__name__").run()


def test_phased_run_equals_build_plus_finish():
    spec = scenarios.get("microburst/event-driven").with_params(
        duration_ps=2_000_000_000
    )
    assert spec.is_phased
    setup = spec.build()
    assert hasattr(setup, "network") and hasattr(setup, "duration_ps")
    result = spec.finish(setup)
    direct = spec.run()
    assert result.summary_row() == direct.summary_row()
    single = scenarios.get("table2/rows")
    with pytest.raises(ScenarioError, match="single-shot"):
        single.build()


def test_result_rows_normalizes_known_shapes():
    class WithRows:
        def summary_rows(self):
            return ["a", "b"]

    class WithRow:
        def summary_row(self):
            return "only"

    assert result_rows(None) == {}
    assert result_rows(WithRows()) == {"result": ["a", "b"]}
    assert result_rows(WithRow()) == {"result": ["only"]}
    assert result_rows([WithRow(), WithRow()]) == {"result": ["only", "only"]}
    assert result_rows({"block": ["x", "y"]}) == {"block": ["x", "y"]}
    mixed = result_rows({"n": 3})
    assert mixed == {"n": ["3"]}


def test_run_by_name_with_override():
    rows = scenarios.run("table2/rows")
    assert rows and all(hasattr(row, "summary_row") for row in rows)
