"""Fork-amortized chaos grid: identical verdicts, shared builds.

The acceptance contract: a chaos cell run on a :func:`fork_scenario`
copy (one topology build per app/seed/arm, one in-memory fork per fault
plan) produces a verdict record **byte-identical** to the from-scratch
:func:`run_cell` path — fingerprints included — and forks of the same
base never contaminate each other.
"""

import json

import pytest

from repro.faults.chaos import (
    fork_scenario,
    run_cell,
    run_forked_cells,
    run_forked_grid,
    run_grid,
    run_instance_on,
)
from repro.faults.scenarios import build_scenario


def _canon(record):
    return json.dumps(record, sort_keys=True)


@pytest.mark.parametrize("app_name", ["frr", "liveness"])
def test_forked_cell_matches_standalone(app_name):
    plans = ["linkflap", "crash"]
    forked = run_forked_cells(plans, [app_name], [1])
    standalone = [run_cell(plan, app_name, 1) for plan in plans]
    assert [_canon(r) for r in forked] == [_canon(r) for r in standalone]


def test_forked_grid_order_matches_run_grid(tmp_path):
    plans = ["linkflap", "stall"]
    apps = ["frr", "migration"]
    straight_path = tmp_path / "straight.jsonl"
    forked_path = tmp_path / "forked.jsonl"
    run_grid(plans, apps, [1], out_path=str(straight_path))
    run_grid(plans, apps, [1], out_path=str(forked_path), forked=True)
    assert forked_path.read_text() == straight_path.read_text()


def test_sibling_forks_are_isolated():
    base = build_scenario("frr", 1, flow_cache=True)
    first = run_instance_on(fork_scenario(base), "crash", 1)
    second = run_instance_on(fork_scenario(base), "crash", 1)
    # Same plan on two forks of one base: identical, not merely similar.
    assert _canon(first) == _canon(second)
    # The base itself never advanced — forks ran, the original did not.
    assert base.network.sim.now_ps == 0
    assert all(probe() == 0 for probe in base.probes.values())


def test_run_forked_grid_scenario_shape():
    result = run_forked_grid(plans=["linkflap"], apps=["frr"], seeds=[1])
    assert result["violations"] == 0
    assert result["summary"][-1].endswith("all invariants held")
    assert list(result["fingerprints"]) == ["linkflap/frr/1"]
    (fingerprint,) = result["fingerprints"].values()
    assert _canon(run_cell("linkflap", "frr", 1))  # standalone still runs
    assert run_cell("linkflap", "frr", 1)["fingerprint"] == fingerprint
