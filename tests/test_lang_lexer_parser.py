"""Unit tests for the language tokenizer and parser."""

import pytest

from repro.lang.ast_nodes import Assign, BinOp, Call, ExprStmt, Field, If, VarDecl
from repro.lang.errors import LangSyntaxError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse

MINIMAL = "program p;\n"


class TestLexer:
    def kinds(self, source):
        return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]

    def test_keywords_vs_idents(self):
        tokens = self.kinds("program foo on bar shared_register")
        assert tokens == [
            ("keyword", "program"),
            ("ident", "foo"),
            ("keyword", "on"),
            ("ident", "bar"),
            ("keyword", "shared_register"),
        ]

    def test_numbers(self):
        tokens = self.kinds("42 0x1F 1_000")
        assert [t for _k, t in tokens] == ["42", "0x1F", "1_000"]

    def test_strings(self):
        tokens = self.kinds('"flowID"')
        assert tokens == [("string", "flowID")]

    def test_unterminated_string(self):
        with pytest.raises(LangSyntaxError):
            tokenize('"oops')

    def test_multichar_punct_greedy(self):
        tokens = self.kinds("a <= b == c && d")
        texts = [t for _k, t in tokens]
        assert "<=" in texts and "==" in texts and "&&" in texts

    def test_comments_skipped(self):
        source = "a // line comment\n/* block\ncomment */ b"
        assert self.kinds(source) == [("ident", "a"), ("ident", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LangSyntaxError):
            tokenize("/* never ends")

    def test_unexpected_character(self):
        with pytest.raises(LangSyntaxError) as excinfo:
            tokenize("a @ b")
        assert "line 1" in str(excinfo.value)

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1 and tokens[0].column == 1
        assert tokens[1].line == 2 and tokens[1].column == 3


class TestParser:
    def test_program_name(self):
        ast = parse(MINIMAL)
        assert ast.name == "p"
        assert ast.handlers == ()

    def test_register_declarations(self):
        ast = parse(
            "program p;\n"
            "shared_register<32>(1024) shared;\n"
            "register<64>(8) plain;\n"
        )
        shared, plain = ast.registers
        assert shared.shared and shared.width_bits == 32 and shared.size == 1024
        assert not plain.shared and plain.width_bits == 64

    def test_const_folding(self):
        ast = parse("program p;\nconst K = 2 * (3 + 4);\n")
        assert ast.consts[0].value == 14

    def test_const_must_be_constant(self):
        with pytest.raises(LangSyntaxError):
            parse("program p;\nconst K = x + 1;\n")

    def test_handler_bodies(self):
        ast = parse(
            "program p;\n"
            "on ingress_packet {\n"
            "  var x = 1 + 2;\n"
            "  x = x * 3;\n"
            "  if (x > 5) { drop(); } else { forward(1); }\n"
            "}\n"
        )
        body = ast.handlers[0].body
        assert isinstance(body[0], VarDecl)
        assert isinstance(body[1], Assign)
        assert isinstance(body[2], If)
        assert isinstance(body[2].then_body[0], ExprStmt)
        assert body[2].else_body[0].call.name == "forward"

    def test_init_block(self):
        ast = parse("program p;\ninit { configure_timer(0, 1000); }\n")
        assert ast.handlers[0].event is None

    def test_precedence(self):
        ast = parse("program p;\non timer_expiration { var x = 1 + 2 * 3; }\n")
        expr = ast.handlers[0].body[0].value
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_field_access_and_method_call(self):
        ast = parse(
            "program p;\n"
            "register<32>(4) r;\n"
            "on ingress_packet { var x = ip.src + r.read(0); }\n"
        )
        expr = ast.handlers[0].body[0].value
        assert isinstance(expr.left, Field) and expr.left.obj == "ip"
        assert isinstance(expr.right, Call) and expr.right.obj == "r"

    def test_unary_operators(self):
        ast = parse("program p;\non timer_expiration { var x = -1 + !0; }\n")
        assert ast.handlers[0].body[0].value is not None

    def test_syntax_errors_carry_position(self):
        with pytest.raises(LangSyntaxError) as excinfo:
            parse("program p;\non ingress_packet { var = 3; }\n")
        assert "line 2" in str(excinfo.value)

    def test_missing_semicolon(self):
        with pytest.raises(LangSyntaxError):
            parse("program p\n")

    def test_hex_and_underscore_literals(self):
        ast = parse("program p;\nconst A = 0xFF;\nconst B = 1_000;\n")
        assert ast.consts[0].value == 255
        assert ast.consts[1].value == 1000
