"""Unit tests for the control-plane model."""

import pytest

from repro.control.plane import ControlPlane, ControlPlaneConfig
from repro.pisa.externs.register import Register
from repro.pisa.externs.sketch import CountMinSketch
from repro.sim.kernel import Simulator


def test_operation_completes_after_duration():
    sim = Simulator()
    controller = ControlPlane(sim)
    done = []
    controller.submit(1_000, lambda: done.append(sim.now_ps))
    sim.run()
    assert done == [1_000]
    assert controller.operations_completed == 1


def test_single_threaded_serialization():
    sim = Simulator()
    controller = ControlPlane(sim)
    done = []
    controller.submit(1_000, lambda: done.append(sim.now_ps))
    controller.submit(2_000, lambda: done.append(sim.now_ps))
    assert controller.backlog == 1  # second op waits
    sim.run()
    assert done == [1_000, 3_000]


def test_clear_sketch_cost_scales_with_counters():
    sim = Simulator()
    config = ControlPlaneConfig(rtt_ps=10_000, per_entry_write_ps=100)
    controller = ControlPlane(sim, config)
    sketch = CountMinSketch(width=100, depth=2)
    sketch.update(b"x", 5)
    controller.clear_sketch(sketch)
    sim.run()
    assert sketch.query(b"x") == 0
    assert sim.now_ps == 10_000 + 200 * 100


def test_clear_register_cost():
    sim = Simulator()
    config = ControlPlaneConfig(rtt_ps=1_000, per_entry_write_ps=10)
    controller = ControlPlane(sim, config)
    register = Register(50)
    register.write(0, 9)
    controller.clear_register(register)
    sim.run()
    assert register.read(0) == 0
    assert sim.now_ps == 1_000 + 500


def test_install_route_includes_compute_time():
    sim = Simulator()
    config = ControlPlaneConfig(
        rtt_ps=1_000, per_entry_write_ps=10, reroute_compute_ps=100_000
    )
    controller = ControlPlane(sim, config)
    done = []
    controller.install_route(lambda: done.append(sim.now_ps), entries=3)
    sim.run()
    assert done == [100_000 + 1_000 + 30]


def test_utilization():
    sim = Simulator()
    controller = ControlPlane(sim)
    controller.submit(5_000, lambda: None)
    sim.run()
    assert controller.utilization(10_000) == pytest.approx(0.5)
    assert controller.utilization(1_000) == 1.0  # clamped
    with pytest.raises(ValueError):
        controller.utilization(0)


def test_digest_reception():
    sim = Simulator()
    controller = ControlPlane(sim)
    controller.receive_digest({"failed_port": 3})
    assert controller.digests_received == [{"failed_port": 3}]


def test_negative_duration_rejected():
    sim = Simulator()
    controller = ControlPlane(sim)
    with pytest.raises(ValueError):
        controller.submit(-1, lambda: None)


def test_config_validation():
    with pytest.raises(ValueError):
        ControlPlaneConfig(rtt_ps=-1)
