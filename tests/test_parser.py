"""Unit and property tests for the programmable parser/deparser."""

import pytest
from hypothesis import given, strategies as st

from repro.packet.builder import (
    make_hula_probe,
    make_kv_request,
    make_liveness_echo,
    make_tcp_packet,
    make_udp_packet,
)
from repro.packet.headers import (
    Ethernet,
    EtherType,
    HulaProbe,
    Ipv4,
    KeyValue,
    LivenessEcho,
    Tcp,
    Udp,
)
from repro.packet.parser import (
    ACCEPT,
    DEFAULT,
    Deparser,
    ParseError,
    Parser,
    ParserState,
    standard_parser,
)

PARSER = standard_parser()
DEPARSER = Deparser()


def roundtrip(pkt):
    return PARSER.parse(DEPARSER.deparse(pkt))


def test_parses_tcp_stack():
    pkt = roundtrip(make_tcp_packet(0x0A000001, 0x0A000002, payload_len=37))
    assert [type(h) for h in pkt.headers] == [Ethernet, Ipv4, Tcp]
    assert pkt.payload_len == 37


def test_parses_udp_stack():
    pkt = roundtrip(make_udp_packet(1, 2, dport=53, payload_len=5))
    assert [type(h) for h in pkt.headers] == [Ethernet, Ipv4, Udp]


def test_udp_port_9900_carries_kv():
    pkt = roundtrip(make_kv_request(op=0, key=42))
    assert [type(h) for h in pkt.headers] == [Ethernet, Ipv4, Udp, KeyValue]
    assert pkt.require(KeyValue).key == 42


def test_parses_hula_probe():
    pkt = roundtrip(make_hula_probe(tor_id=3, path_id=1, max_util_centi=77))
    probe = pkt.require(HulaProbe)
    assert (probe.tor_id, probe.path_id, probe.max_util_centi) == (3, 1, 77)


def test_parses_liveness_echo():
    pkt = roundtrip(make_liveness_echo(kind=1, origin=2, target=3, nonce=9))
    echo = pkt.require(LivenessEcho)
    assert echo.kind == 1 and echo.nonce == 9


def test_unknown_ethertype_accepts_as_payload():
    eth = Ethernet(ethertype=0x9999)
    data = eth.pack() + b"\x00" * 50
    pkt = PARSER.parse(data)
    assert [type(h) for h in pkt.headers] == [Ethernet]
    assert pkt.payload_len == 50


def test_truncated_packet_raises():
    eth = Ethernet(ethertype=int(EtherType.IPV4))
    with pytest.raises(ParseError):
        PARSER.parse(eth.pack() + b"\x45\x00")  # IPv4 header cut short


def test_field_values_preserved_through_roundtrip():
    original = make_tcp_packet(0x01020304, 0x05060708, sport=1111, dport=2222)
    parsed = roundtrip(original)
    assert parsed.require(Ipv4).src == 0x01020304
    assert parsed.require(Tcp).dport == 2222
    assert DEPARSER.deparse(parsed) == DEPARSER.deparse(original)


def test_duplicate_state_name_rejected():
    state = ParserState("s", extracts=Ethernet, transitions={DEFAULT: ACCEPT})
    with pytest.raises(ValueError):
        Parser([state, ParserState("s", extracts=Ethernet)], start="s")


def test_unknown_start_state_rejected():
    state = ParserState("s", extracts=Ethernet, transitions={DEFAULT: ACCEPT})
    with pytest.raises(ValueError):
        Parser([state], start="nope")


def test_transition_to_unknown_state_rejected():
    state = ParserState("s", extracts=Ethernet, transitions={DEFAULT: "missing"})
    with pytest.raises(ValueError):
        Parser([state], start="s")


def test_reject_transition_raises_parse_error():
    state = ParserState(
        "s", extracts=Ethernet, select_field="ethertype", transitions={1: ACCEPT}
    )
    parser = Parser([state], start="s")
    data = Ethernet(ethertype=2).pack()
    with pytest.raises(ParseError):
        parser.parse(data)


def test_cycle_detection():
    a = ParserState("a", extracts=Ethernet, transitions={DEFAULT: "b"})
    b = ParserState("b", extracts=Ethernet, transitions={DEFAULT: "a"})
    parser = Parser([a, b], start="a")
    with pytest.raises(ParseError):
        parser.parse(Ethernet().pack() * 10)


def test_state_count():
    assert PARSER.state_count == 8


# ----------------------------------------------------------------------
# Property: every builder packet round-trips byte-exactly
# ----------------------------------------------------------------------
@st.composite
def built_packets(draw):
    choice = draw(st.integers(0, 3))
    src = draw(st.integers(0, (1 << 32) - 1))
    dst = draw(st.integers(0, (1 << 32) - 1))
    sport = draw(st.integers(0, 65_535))
    payload = draw(st.integers(0, 1_500))
    if choice == 0:
        return make_tcp_packet(src, dst, sport=sport, payload_len=payload)
    if choice == 1:
        return make_udp_packet(src, dst, sport=sport, payload_len=payload)
    if choice == 2:
        return make_hula_probe(
            tor_id=draw(st.integers(0, 65_535)),
            path_id=draw(st.integers(0, 65_535)),
            max_util_centi=draw(st.integers(0, (1 << 32) - 1)),
        )
    return make_kv_request(
        op=draw(st.integers(0, 3)), key=draw(st.integers(0, (1 << 64) - 1))
    )


@given(built_packets())
def test_parse_deparse_identity_property(pkt):
    wire = DEPARSER.deparse(pkt)
    parsed = PARSER.parse(wire)
    assert DEPARSER.deparse(parsed) == wire
    assert parsed.total_len == pkt.total_len
    assert [type(h) for h in parsed.headers] == [type(h) for h in pkt.headers]
