"""The pluggable StateStore: backend conformance, sparsity, CoW, registry."""

import gc
import pickle

import pytest

from repro.state.store import (
    STORE_BACKENDS,
    STORE_ENV,
    DenseStore,
    DictStore,
    ShadowStore,
    StateStore,
    make_store,
    registered_stores,
    store_manifest,
    total_state_cells,
)

BACKENDS = list(STORE_BACKENDS)


# ----------------------------------------------------------------------
# Conformance: every backend exposes identical observable behaviour
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_initial_contents_and_geometry(backend):
    store = make_store(8, default=3, backend=backend, name="t")
    assert len(store) == 8
    assert store.size == 8
    assert store.default == 3
    assert store.kind == backend
    assert store.snapshot() == [3] * 8
    assert all(store[i] == 3 for i in range(8))


@pytest.mark.parametrize("backend", BACKENDS)
def test_set_get_and_negative_index(backend):
    store = make_store(4, backend=backend)
    store[1] = 10
    store[-1] = 20
    assert store[1] == 10
    assert store[3] == 20
    assert store[-3] == 10
    assert store.snapshot() == [0, 10, 0, 20]


@pytest.mark.parametrize("backend", BACKENDS)
def test_out_of_range_write_raises(backend):
    store = make_store(4, backend=backend)
    with pytest.raises(IndexError):
        store[4] = 1
    with pytest.raises(IndexError):
        store[-5] = 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_out_of_range_read_raises(backend):
    store = make_store(4, backend=backend)
    with pytest.raises(IndexError):
        store[4]


@pytest.mark.parametrize("backend", BACKENDS)
def test_load_and_fill(backend):
    store = make_store(4, backend=backend)
    store.load([5, 0, 7, 0])
    assert store.snapshot() == [5, 0, 7, 0]
    store.fill(2)
    assert store.snapshot() == [2, 2, 2, 2]
    store.fill(0)
    assert store.snapshot() == [0, 0, 0, 0]
    with pytest.raises(ValueError):
        store.load([1, 2, 3])  # wrong length


@pytest.mark.parametrize("backend", BACKENDS)
def test_fill_preserves_identity(backend):
    # Externs keep direct references to their stores; clear() must not
    # swap the object out from under them.
    store = make_store(4, backend=backend)
    alias = store
    store.fill(9)
    assert alias[0] == 9


@pytest.mark.parametrize("backend", BACKENDS)
def test_reductions(backend):
    store = make_store(5, backend=backend)
    store.load([0, 4, 0, 1, 3])
    assert store.nonzero_count() == 3
    assert store.sum_values() == 8
    assert store.max_value() == 4


@pytest.mark.parametrize("backend", BACKENDS)
def test_reductions_with_nonzero_default(backend):
    store = make_store(4, default=2, backend=backend)
    store[1] = 0
    store[2] = 5
    assert store.nonzero_count() == 3  # two defaults + the 5
    assert store.sum_values() == 2 + 0 + 5 + 2
    assert store.max_value() == 5


@pytest.mark.parametrize("backend", BACKENDS)
def test_describe_row(backend):
    store = make_store(6, backend=backend, name="probe")
    store[2] = 1
    row = store.describe()
    assert row["name"] == "probe"
    assert row["kind"] == backend
    assert row["size"] == 6
    assert row["populated"] == 1


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("target", BACKENDS)
def test_to_state_round_trips_across_backends(backend, target):
    store = make_store(5, default=1, backend=backend, name="mig")
    store[0] = 9
    store[3] = 0
    rebuilt = StateStore.from_state(store.to_state(), backend=target)
    assert rebuilt.kind == target
    assert rebuilt.snapshot() == store.snapshot()
    assert rebuilt.name == "mig"
    assert rebuilt.default == 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_pickle_round_trip_and_reregistration(backend):
    store = make_store(4, backend=backend, name="pkl")
    store[1] = 7
    clone = pickle.loads(pickle.dumps(store, protocol=4))
    assert clone.snapshot() == store.snapshot()
    assert clone.kind == backend
    assert clone.name == "pkl"
    assert any(s is clone for s in registered_stores())


# ----------------------------------------------------------------------
# DictStore: sparsity semantics
# ----------------------------------------------------------------------
def test_dict_store_reads_do_not_insert():
    store = DictStore(1 << 16, name="flows")
    for i in range(0, 1 << 16, 997):
        assert store[i] == 0
    assert store.populated() == 0


def test_dict_store_default_write_evicts():
    store = DictStore(8, default=0, name="flows")
    store[3] = 5
    assert store.populated() == 1
    store[3] = 0  # writing the default frees the cell
    assert store.populated() == 0
    assert store[3] == 0


def test_dict_store_len_is_logical_size():
    store = DictStore(32)
    store[0] = 1
    assert len(store) == 32
    assert store.populated() == 1


# ----------------------------------------------------------------------
# ShadowStore: copy-on-write snapshots
# ----------------------------------------------------------------------
def test_shadow_snapshot_is_shared_and_o1_when_clean():
    store = ShadowStore(4, name="cow")
    store[1] = 5
    first = store.snapshot()
    assert first == [0, 5, 0, 0]
    # No writes since: the same frozen generation comes back.
    assert store.snapshot() is first
    assert store.snapshots_taken == 2


def test_shadow_writes_go_to_overlay_until_snapshot():
    store = ShadowStore(4)
    frozen = store.snapshot()
    store[2] = 9
    assert store.dirty_count() == 1
    assert frozen[2] == 0  # the old generation is untouched
    assert store[2] == 9
    folded = store.snapshot()
    assert folded[2] == 9
    assert store.dirty_count() == 0


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(STORE_ENV, "dict")
    assert isinstance(make_store(4), DictStore)


def test_explicit_backend_beats_env(monkeypatch):
    monkeypatch.setenv(STORE_ENV, "dict")
    assert isinstance(make_store(4, backend="shadowed"), ShadowStore)


def test_default_backend_is_dense(monkeypatch):
    monkeypatch.delenv(STORE_ENV, raising=False)
    assert isinstance(make_store(4), DenseStore)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown state backend"):
        make_store(4, backend="mmap")


def test_negative_size_rejected():
    with pytest.raises(ValueError, match="size"):
        make_store(-1)


# ----------------------------------------------------------------------
# Process-wide registry
# ----------------------------------------------------------------------
def test_registry_tracks_live_stores_only():
    store = make_store(4, name="zz-registry-probe")
    assert any(s is store for s in registered_stores())
    assert total_state_cells() >= 4
    names = [row["name"] for row in store_manifest()]
    assert "zz-registry-probe" in names
    del store
    gc.collect()
    assert not any(
        row["name"] == "zz-registry-probe" for row in store_manifest()
    )


def test_registry_output_is_name_sorted():
    _a = make_store(1, name="aaa-sort")
    _b = make_store(1, name="zzz-sort")
    names = [s.name for s in registered_stores()]
    assert names == sorted(names)
    del _a, _b
