"""Unit tests for the self-similar traffic generator."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRng
from repro.sim.units import MILLISECONDS
from repro.workloads.selfsimilar import ParetoOnOffSource, SelfSimilarTraffic


class TestParetoSource:
    def test_shape_validation(self):
        rng = SeededRng(1)
        with pytest.raises(ValueError):
            ParetoOnOffSource(rng, shape=1.0, mean_on_ps=10, mean_off_ps=10)
        with pytest.raises(ValueError):
            ParetoOnOffSource(rng, shape=2.5, mean_on_ps=10, mean_off_ps=10)

    def test_alternates_on_off(self):
        source = ParetoOnOffSource(
            SeededRng(2), shape=1.5, mean_on_ps=1_000, mean_off_ps=1_000
        )
        states = [source.is_on(t) for t in range(0, 100_000, 100)]
        assert any(states) and not all(states)

    def test_duty_cycle_tracks_means(self):
        source = ParetoOnOffSource(
            SeededRng(3), shape=1.6, mean_on_ps=1_000, mean_off_ps=3_000
        )
        on = sum(1 for t in range(0, 10_000_000, 50) if source.is_on(t))
        total = 10_000_000 // 50
        # Expected ~25% ON; Pareto variance is huge, allow a wide band.
        assert 0.05 < on / total < 0.6


class TestSelfSimilarTraffic:
    def run_gen(self, duration_ps=5 * MILLISECONDS, **kwargs):
        sim = Simulator()
        sent = []
        gen = SelfSimilarTraffic(sim, sent.append, **kwargs)
        gen.start(at_ps=0)
        sim.run(until_ps=duration_ps)
        return gen, sent

    def test_generates_traffic(self):
        gen, sent = self.run_gen(sources=8, per_source_pps=100_000.0)
        assert sent
        assert 0 < gen.duty_cycle() < 1

    def test_flow_identities_rotate(self):
        gen, sent = self.run_gen(sources=8, per_source_pps=100_000.0)
        sports = {pkt.five_tuple().sport for pkt in sent}
        assert len(sports) > 1

    def test_burstier_than_poisson(self):
        """The variance-time signature: self-similar traffic keeps high
        variance when aggregated over larger windows; Poisson smooths."""
        from repro.workloads.base import FlowSpec
        from repro.workloads.poisson import PoissonTraffic

        def window_cv(times, window_ps, duration_ps):
            bins = [0] * (duration_ps // window_ps + 1)
            for t in times:
                bins[t // window_ps] += 1
            usable = bins[:-1]
            mean = sum(usable) / len(usable)
            if mean == 0:
                return 0.0
            var = sum((b - mean) ** 2 for b in usable) / len(usable)
            return var / mean  # index of dispersion

        duration = 20 * MILLISECONDS
        gen, sent = self.run_gen(
            duration_ps=duration, sources=12, per_source_pps=50_000.0, seed=5
        )
        ss_times = [pkt.ts_created_ps for pkt in sent]

        sim = Simulator()
        poisson_sent = []
        mean_rate = len(ss_times) / (duration / 1e12)
        poisson = PoissonTraffic(
            sim,
            poisson_sent.append,
            FlowSpec(1, 2, 3, 4),
            mean_pps=max(1.0, mean_rate),
            seed=5,
        )
        poisson.start(at_ps=0)
        sim.run(until_ps=duration)
        poisson_times = [pkt.ts_created_ps for pkt in poisson_sent]

        window = 2 * MILLISECONDS
        assert window_cv(ss_times, window, duration) > 3 * window_cv(
            poisson_times, window, duration
        )

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SelfSimilarTraffic(sim, lambda p: None, sources=0)
        with pytest.raises(ValueError):
            SelfSimilarTraffic(sim, lambda p: None, per_source_pps=0)

    def test_deterministic_by_seed(self):
        _gen1, sent1 = self.run_gen(sources=4, seed=9)
        _gen2, sent2 = self.run_gen(sources=4, seed=9)
        assert [p.ts_created_ps for p in sent1] == [p.ts_created_ps for p in sent2]
