"""Unit tests for the baseline PSA switch (paper Figure 1)."""

import pytest

from repro.arch.baseline import BaselinePsaSwitch
from repro.arch.description import UnsupportedEventError
from repro.arch.events import EventType
from repro.arch.program import P4Program, handler
from repro.packet.builder import make_udp_packet
from repro.pisa.externs.register import SharedRegister
from repro.sim.kernel import Simulator


class Forwarder(P4Program):
    """Forward everything out a fixed port; count egress runs."""

    def __init__(self, out_port=1, recirculate_once=False):
        super().__init__()
        self.out_port = out_port
        self.recirculate_once = recirculate_once
        self.ingress_runs = 0
        self.egress_runs = 0
        self.recirc_runs = 0

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx, pkt, meta):
        self.ingress_runs += 1
        if self.recirculate_once:
            self.recirculate_once = False
            meta.request_recirculation()
            return
        meta.send_to_port(self.out_port)

    @handler(EventType.RECIRCULATED_PACKET)
    def recirculated(self, ctx, pkt, meta):
        self.recirc_runs += 1
        meta.send_to_port(self.out_port)

    @handler(EventType.EGRESS_PACKET)
    def egress(self, ctx, pkt, meta):
        self.egress_runs += 1


def make_switch(program=None):
    sim = Simulator()
    switch = BaselinePsaSwitch(sim)
    if program is not None:
        switch.load_program(program)
    return sim, switch


def test_forwarding_through_both_pipelines():
    program = Forwarder(out_port=2)
    sim, switch = make_switch(program)
    sent = []
    switch.set_tx_callback(lambda pkt, port: sent.append((pkt.pkt_id, port)))
    pkt = make_udp_packet(1, 2)
    switch.receive(pkt, 0)
    sim.run()
    assert sent == [(pkt.pkt_id, 2)]
    assert program.ingress_runs == 1
    assert program.egress_runs == 1
    assert switch.rx_packets == 1


def test_pipeline_latency_is_applied():
    program = Forwarder()
    sim, switch = make_switch(program)
    times = []
    switch.set_tx_callback(lambda pkt, port: times.append(sim.now_ps))
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    # Two pipeline traversals (8 stages @ 5 ns) plus serialization.
    assert times[0] >= 2 * switch.ingress_pipeline.latency_ps


def test_drop_in_ingress():
    class Dropper(P4Program):
        @handler(EventType.INGRESS_PACKET)
        def ingress(self, ctx, pkt, meta):
            meta.drop()

    sim, switch = make_switch(Dropper())
    sent = []
    switch.set_tx_callback(lambda pkt, port: sent.append(pkt))
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    assert sent == []
    assert switch.dropped_by_program == 1


def test_no_egress_spec_means_drop():
    class Silent(P4Program):
        @handler(EventType.INGRESS_PACKET)
        def ingress(self, ctx, pkt, meta):
            pass  # never sets egress_spec

    sim, switch = make_switch(Silent())
    sent = []
    switch.set_tx_callback(lambda pkt, port: sent.append(pkt))
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    assert sent == []
    assert switch.dropped_by_program == 1


def test_recirculation_runs_recirculated_handler():
    program = Forwarder(recirculate_once=True)
    sim, switch = make_switch(program)
    sent = []
    switch.set_tx_callback(lambda pkt, port: sent.append(pkt))
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    assert program.recirc_runs == 1
    assert switch.recirculations == 1
    assert len(sent) == 1


def test_recirculation_loop_is_bounded():
    class Spinner(P4Program):
        @handler(EventType.INGRESS_PACKET)
        def ingress(self, ctx, pkt, meta):
            meta.request_recirculation()

        @handler(EventType.RECIRCULATED_PACKET)
        def recirc(self, ctx, pkt, meta):
            meta.request_recirculation()

    sim, switch = make_switch(Spinner())
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    assert switch.recirculations == BaselinePsaSwitch.MAX_RECIRCULATIONS
    assert switch.dropped_by_program == 1


def test_cpu_punt():
    class Punter(P4Program):
        @handler(EventType.INGRESS_PACKET)
        def ingress(self, ctx, pkt, meta):
            meta.send_to_cpu()

    sim, switch = make_switch(Punter())
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    assert len(switch.cpu_notifications) == 1


def test_event_program_rejected():
    class NeedsEvents(P4Program):
        @handler(EventType.ENQUEUE)
        def on_enqueue(self, ctx, event):
            pass

    sim, switch = make_switch()
    with pytest.raises(UnsupportedEventError):
        switch.load_program(NeedsEvents())


def test_shared_state_rejected_on_single_threaded_model():
    class SharedState(P4Program):
        def __init__(self):
            super().__init__()
            self.reg = SharedRegister(4, name="shared")

        @handler(EventType.INGRESS_PACKET)
        def ingress(self, ctx, pkt, meta):
            pass

    sim, switch = make_switch()
    with pytest.raises(UnsupportedEventError) as excinfo:
        switch.load_program(SharedState())
    assert "shared" in str(excinfo.value)


def test_tm_events_are_suppressed_not_delivered():
    program = Forwarder()
    sim, switch = make_switch(program)
    switch.set_tx_callback(lambda pkt, port: None)
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    assert switch.events_suppressed[EventType.ENQUEUE] == 1
    assert switch.events_suppressed[EventType.DEQUEUE] == 1
    assert switch.events_fired[EventType.ENQUEUE] == 0


def test_dead_link_drops_arrivals():
    program = Forwarder()
    sim, switch = make_switch(program)
    switch.set_link_status(0, False)
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    assert switch.rx_packets == 0


def test_timer_unsupported():
    sim, switch = make_switch(Forwarder())
    with pytest.raises(UnsupportedEventError):
        switch.configure_timer(0, 1_000)


def test_control_event_unsupported():
    sim, switch = make_switch(Forwarder())
    with pytest.raises(UnsupportedEventError):
        switch.control_event({"x": 1})


def test_require_program():
    sim, switch = make_switch()
    with pytest.raises(RuntimeError):
        switch.require_program()
