"""Unit tests for physical stages, the allocator, and Pipeline."""

import pytest

from repro.packet.builder import make_udp_packet
from repro.pisa.metadata import StandardMetadata
from repro.pisa.pipeline import Pipeline
from repro.pisa.stage import Stage, StageAllocator
from repro.pisa.table import ExactTable


class TestStage:
    def test_placement(self):
        stage = Stage(0, memory_ports=2)
        table = ExactTable("fwd")
        stage.place_table(table)
        stage.place_extern("reg", object())
        assert "fwd" in stage.tables
        assert "reg" in stage.externs

    def test_duplicate_placement_rejected(self):
        stage = Stage(0)
        stage.place_table(ExactTable("fwd"))
        with pytest.raises(ValueError):
            stage.place_table(ExactTable("fwd"))
        stage.place_extern("reg", object())
        with pytest.raises(ValueError):
            stage.place_extern("reg", object())

    def test_invalid_ports(self):
        with pytest.raises(ValueError):
            Stage(0, memory_ports=0)


class TestStageAllocator:
    def test_first_fit_tables(self):
        allocator = StageAllocator(stage_count=2, tables_per_stage=2)
        stages = [allocator.allocate_table(ExactTable(f"t{i}")) for i in range(4)]
        assert [stage.index for stage in stages] == [0, 0, 1, 1]

    def test_overflow_raises(self):
        allocator = StageAllocator(stage_count=1, tables_per_stage=1)
        allocator.allocate_table(ExactTable("a"))
        with pytest.raises(OverflowError):
            allocator.allocate_table(ExactTable("b"))

    def test_extern_allocation(self):
        allocator = StageAllocator(stage_count=2, externs_per_stage=1)
        first = allocator.allocate_extern("r0", object())
        second = allocator.allocate_extern("r1", object())
        assert first.index == 0
        assert second.index == 1
        with pytest.raises(OverflowError):
            allocator.allocate_extern("r2", object())

    def test_validation(self):
        with pytest.raises(ValueError):
            StageAllocator(stage_count=0)


class TestPipeline:
    def test_latency_math(self):
        pipeline = Pipeline("p", lambda pkt, meta: None, stage_count=8, clock_mhz=200.0)
        assert pipeline.cycle_ps == 5_000
        assert pipeline.latency_ps == 40_000

    def test_process_invokes_control_and_counts(self):
        seen = []
        pipeline = Pipeline("p", lambda pkt, meta: seen.append(pkt.pkt_id))
        pkt = make_udp_packet(1, 2)
        pipeline.process(pkt, StandardMetadata())
        assert seen == [pkt.pkt_id]
        assert pipeline.packets_processed == 1

    def test_invalid_stage_count(self):
        with pytest.raises(ValueError):
            Pipeline("p", lambda pkt, meta: None, stage_count=0)
