"""Unit tests for the clock-cycle pipeline simulator (§4)."""

import pytest

from repro.state.cyclesim import CyclePipelineSim, CycleSimConfig


def test_config_validation():
    with pytest.raises(ValueError):
        CycleSimConfig(cycles=0)
    with pytest.raises(ValueError):
        CycleSimConfig(num_queues=0)
    with pytest.raises(ValueError):
        CycleSimConfig(overspeed=0.9)  # pipeline slower than line rate
    with pytest.raises(ValueError):
        CycleSimConfig(port_disable_fraction=1.0)
    with pytest.raises(ValueError):
        CycleSimConfig(enqueue_rate=1.5)


def test_packet_fraction_math():
    config = CycleSimConfig(overspeed=2.0, port_disable_fraction=0.5)
    assert config.packet_fraction == pytest.approx(0.25)


def test_deterministic_by_seed():
    a = CyclePipelineSim(CycleSimConfig(cycles=5_000, seed=7)).run()
    b = CyclePipelineSim(CycleSimConfig(cycles=5_000, seed=7)).run()
    assert a.staleness.mean_error == b.staleness.mean_error
    assert a.drained_ops == b.drained_ops
    c = CyclePipelineSim(CycleSimConfig(cycles=5_000, seed=8)).run()
    assert (a.drained_ops, a.packet_cycles) != (c.drained_ops, c.packet_cycles)


def test_cycle_conservation():
    result = CyclePipelineSim(CycleSimConfig(cycles=10_000)).run()
    assert result.packet_cycles + result.idle_cycles == 10_000


def test_no_port_conflicts_by_construction():
    result = CyclePipelineSim(
        CycleSimConfig(cycles=20_000, overspeed=1.0, enqueue_rate=0.5, dequeue_rate=0.5)
    ).run()
    assert result.port_conflicts == 0


def test_pending_bounded_by_entry_count():
    result = CyclePipelineSim(
        CycleSimConfig(cycles=20_000, num_queues=32, overspeed=1.05)
    ).run()
    assert result.max_pending_ops <= 32


def test_full_line_rate_never_drains():
    result = CyclePipelineSim(CycleSimConfig(cycles=5_000, overspeed=1.0)).run()
    assert result.idle_cycles == 0
    assert result.drained_ops == 0


def test_overspeed_reduces_staleness():
    slow = CyclePipelineSim(CycleSimConfig(cycles=30_000, overspeed=1.05)).run()
    fast = CyclePipelineSim(CycleSimConfig(cycles=30_000, overspeed=2.0)).run()
    assert fast.staleness.mean_error < slow.staleness.mean_error
    assert fast.staleness.mean_lag_cycles < slow.staleness.mean_lag_cycles


def test_summary_row_prints():
    result = CyclePipelineSim(CycleSimConfig(cycles=1_000)).run()
    row = result.summary_row()
    assert "overspeed" in row and "max_pending" in row
