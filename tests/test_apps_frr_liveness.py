"""Unit tests for fast re-route and liveness monitoring."""

import pytest

from app_harness import H0_IP, H1_IP, single_switch

from repro.apps.frr import FastRerouteProgram, StaticRouteProgram
from repro.apps.liveness import LivenessMonitor
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext
from repro.packet.builder import make_liveness_echo, make_udp_packet
from repro.packet.headers import LivenessEcho
from repro.pisa.metadata import StandardMetadata
from repro.sim.units import MICROSECONDS


class FakeCtx(ProgramContext):
    def __init__(self):
        self.generated = []
        self.notifications = []
        self._now = 0

    @property
    def now_ps(self):
        return self._now

    def configure_timer(self, timer_id, period_ps):
        pass

    def generate_packet(self, pkt):
        self.generated.append(pkt)

    def notify_control_plane(self, message):
        self.notifications.append(message)


class TestFastReroute:
    def test_protected_route_validation(self):
        frr = FastRerouteProgram()
        with pytest.raises(ValueError):
            frr.install_protected_route(1, primary=2, backup=2)

    def test_link_down_flips_affected_routes_only(self):
        frr = FastRerouteProgram()
        frr.install_protected_route(0xA, primary=1, backup=2)
        frr.install_protected_route(0xB, primary=3, backup=2)
        ctx = FakeCtx()
        frr.on_link_status(
            ctx, Event(EventType.LINK_STATUS, 0, meta={"port": 1, "up": 0})
        )
        assert frr.routes[0xA] == 2  # failed over
        assert frr.routes[0xB] == 3  # untouched
        assert len(frr.failovers) == 1
        assert frr.failovers[0].rerouted_destinations == 1

    def test_link_up_reverts(self):
        frr = FastRerouteProgram()
        frr.install_protected_route(0xA, primary=1, backup=2)
        ctx = FakeCtx()
        frr.on_link_status(ctx, Event(EventType.LINK_STATUS, 0, meta={"port": 1, "up": 0}))
        frr.on_link_status(ctx, Event(EventType.LINK_STATUS, 0, meta={"port": 1, "up": 1}))
        assert frr.routes[0xA] == 1
        assert len(frr.reverts) == 1

    def test_unprotected_destination_stays_on_dead_port(self):
        frr = FastRerouteProgram()
        frr.install_route(0xC, 1)  # no backup
        ctx = FakeCtx()
        frr.on_link_status(ctx, Event(EventType.LINK_STATUS, 0, meta={"port": 1, "up": 0}))
        assert frr.routes[0xC] == 1

    def test_end_to_end_failover_on_switch(self):
        frr = FastRerouteProgram()
        network, switch, sink = single_switch(frr, install_routes=False)
        frr.install_protected_route(H1_IP, primary=1, backup=0)
        frr.install_route(H0_IP, 0)
        switch.set_link_status(1, False)
        network.run()
        assert frr.routes[H1_IP] == 0

    def test_static_program_only_changes_via_control(self):
        static = StaticRouteProgram()
        static.install_routes({0xA: 1})
        assert static.handler_for(EventType.LINK_STATUS) is None
        static.control_update(0xA, 2)
        assert static.routes[0xA] == 2
        assert static.control_updates == 1


class TestLiveness:
    def make(self, **kwargs):
        defaults = dict(
            switch_id=1, neighbor_ports=[0], period_ps=10 * MICROSECONDS,
            misses_allowed=3, monitor_port=1,
        )
        defaults.update(kwargs)
        return LivenessMonitor(**defaults)

    def test_validation(self):
        with pytest.raises(ValueError):
            LivenessMonitor(switch_id=1, neighbor_ports=[])
        with pytest.raises(ValueError):
            LivenessMonitor(switch_id=1, neighbor_ports=[0], misses_allowed=0)

    def test_timer_sends_requests(self):
        monitor = self.make()
        ctx = FakeCtx()
        monitor.on_load(ctx)
        monitor.on_timer(ctx, Event(EventType.TIMER, 0))
        assert monitor.requests_sent == 1
        echo = ctx.generated[0].require(LivenessEcho)
        assert echo.kind == LivenessEcho.KIND_REQUEST
        assert ctx.generated[0].meta["probe_out_port"] == 0

    def test_request_bounced_as_reply(self):
        monitor = self.make()
        ctx = FakeCtx()
        request = make_liveness_echo(
            LivenessEcho.KIND_REQUEST, origin=2, target=0, nonce=7
        )
        meta = StandardMetadata(ingress_port=0)
        monitor.ingress(ctx, request, meta)
        assert meta.egress_spec == 0  # bounced back out the arrival port
        echo = request.require(LivenessEcho)
        assert echo.kind == LivenessEcho.KIND_REPLY
        assert monitor.replies_sent == 1

    def test_reply_refreshes_deadline(self):
        monitor = self.make()
        ctx = FakeCtx()
        monitor.on_load(ctx)
        ctx._now = 5 * MICROSECONDS
        reply = make_liveness_echo(LivenessEcho.KIND_REPLY, origin=2, target=1, nonce=7)
        monitor.ingress(ctx, reply, StandardMetadata(ingress_port=0))
        assert monitor.last_reply.read(0) == 5 * MICROSECONDS

    def test_missed_deadline_marks_dead_and_notifies(self):
        monitor = self.make()
        ctx = FakeCtx()
        monitor.on_load(ctx)
        ctx._now = 50 * MICROSECONDS  # 5 periods of silence
        monitor.on_timer(ctx, Event(EventType.TIMER, 0))
        assert len(monitor.failures) == 1
        assert monitor.failures[0].port == 0
        assert monitor.notifications_sent == 1
        notify = ctx.generated[-1].require(LivenessEcho)
        assert notify.kind == LivenessEcho.KIND_NOTIFY

    def test_no_duplicate_failure_reports(self):
        monitor = self.make()
        ctx = FakeCtx()
        monitor.on_load(ctx)
        ctx._now = 50 * MICROSECONDS
        monitor.on_timer(ctx, Event(EventType.TIMER, 0))
        ctx._now = 60 * MICROSECONDS
        monitor.on_timer(ctx, Event(EventType.TIMER, 0))
        assert len(monitor.failures) == 1

    def test_recovery_detected_on_new_reply(self):
        monitor = self.make()
        ctx = FakeCtx()
        monitor.on_load(ctx)
        ctx._now = 50 * MICROSECONDS
        monitor.on_timer(ctx, Event(EventType.TIMER, 0))
        reply = make_liveness_echo(LivenessEcho.KIND_REPLY, origin=2, target=1, nonce=9)
        monitor.ingress(ctx, reply, StandardMetadata(ingress_port=0))
        assert monitor.alive.read(0) == 1
        assert len(monitor.recoveries) == 1

    def test_notify_without_monitor_port_goes_to_cpu(self):
        monitor = self.make(monitor_port=None)
        ctx = FakeCtx()
        monitor.on_load(ctx)
        ctx._now = 50 * MICROSECONDS
        monitor.on_timer(ctx, Event(EventType.TIMER, 0))
        assert ctx.notifications
        assert ctx.notifications[0]["failed_port"] == 0

    def test_detection_delay_helper(self):
        monitor = self.make()
        ctx = FakeCtx()
        monitor.on_load(ctx)
        ctx._now = 45 * MICROSECONDS
        monitor.on_timer(ctx, Event(EventType.TIMER, 0))
        assert monitor.detection_delay_ps(10 * MICROSECONDS) == 35 * MICROSECONDS
        assert monitor.detection_delay_ps(60 * MICROSECONDS) is None


class TestLinkFlapEventOrdering:
    """A flapping link must order its down/up events deterministically
    against in-flight packet events — identically on both schedulers."""

    def _flap_trace(self, scheduler):
        from repro.experiments.factories import make_sume_switch
        from repro.net.host import Host
        from repro.net.network import Network
        from repro.obs import RecordingObserver, observing
        from repro.sim.kernel import Simulator

        observer = RecordingObserver()
        with observing(observer):
            sim = Simulator(scheduler=scheduler)
            network = Network(sim)
            factory = make_sume_switch()
            s0 = network.add_switch(factory(sim, "s0", 3))
            s1 = network.add_switch(factory(sim, "s1", 2))
            h0 = network.add_host(Host(sim, "h0", H0_IP))
            h1 = network.add_host(Host(sim, "h1", H1_IP))
            network.connect(h0, 0, s0, 0, latency_ps=500_000)
            network.connect(s0, 1, s1, 0, latency_ps=500_000)
            network.connect(s1, 1, h1, 0, latency_ps=500_000)
            frr = FastRerouteProgram()
            frr.install_protected_route(H1_IP, primary=1, backup=2)
            frr.install_route(H0_IP, 0)
            s0.load_program(frr)
            transit = FastRerouteProgram()
            transit.install_routes({H1_IP: 1, H0_IP: 0})
            s1.load_program(transit)
            # Packets in flight straddling every link transition: odd
            # send spacing versus flap instants forces interleavings.
            from repro.packet.builder import make_udp_packet

            for i in range(40):
                sim.call_at(
                    100_000 + i * 130_000,
                    h0.send,
                    make_udp_packet(H0_IP, H1_IP, payload_len=64),
                )
            link = network.link_between("s0", "s1")
            assert link is not None
            link.fail_at(1_500_000)
            link.recover_at(3_100_000)
            link.fail_at(4_200_000)
            link.recover_at(5_500_000)
            network.run()
        return observer.normalized()

    def test_flap_interleaves_link_and_packet_events(self):
        trace = self._flap_trace("heap")
        kinds = [record[2] for record in trace]
        assert kinds.count("link_status_change") >= 4  # 2 downs + 2 ups at s0
        assert "ingress_packet" in kinds
        # Transitions arrive in strict down/up alternation at s0.
        s0_links = [
            record[5]
            for record in trace
            if record[2] == "link_status_change"
            and record[0] == "publish"
            and record[1] == "s0.bus"
        ]
        ups = [dict(meta)["up"] for meta in s0_links]
        assert ups == [0, 1, 0, 1]

    def test_flap_order_reproducible_on_heap(self):
        assert self._flap_trace("heap") == self._flap_trace("heap")

    def test_flap_order_identical_across_schedulers(self):
        heap = self._flap_trace("heap")
        wheel = self._flap_trace("wheel")
        assert heap == wheel
