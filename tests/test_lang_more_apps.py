"""End-to-end tests: further applications written in the DSL.

Demonstrates that the language covers more than the microburst example:
heavy-hitter detection with a timer-cleared register, an ECN-style
marker, and a liveness-style periodic prober.
"""

import pytest

from app_harness import H0_IP, H1_IP, single_switch

from repro.lang import compile_program
from repro.packet.builder import make_udp_packet
from repro.sim.units import MICROSECONDS, MILLISECONDS

HEAVY_HITTER_SOURCE = """
program heavy_hitters;

shared_register<32>(256) counts;
const THRESHOLD = 5;
const WINDOW_PS = 1000000000;   // 1 ms

init {
    configure_timer(0, WINDOW_PS);
}

on ingress_packet {
    var flowID = flow_hash(256);
    var count = counts.add(flowID, 1);
    if (count == THRESHOLD) {
        mark(flowID);            // report once per window
    }
    forward_by_ip();
}

on timer_expiration {
    counts.clear();              // the data-plane reset
}
"""

QUEUE_WATCH_SOURCE = """
program queue_watch;

shared_register<32>(1) occupancy;
const MARK_ABOVE = 2000;

on ingress_packet {
    if (occupancy.read(0) > MARK_ABOVE) {
        mark(occupancy.read(0));   // would set ECN here
    }
    forward_by_ip();
}

on buffer_enqueue {
    occupancy.write(0, event.buffer_bytes);
}

on buffer_dequeue {
    occupancy.write(0, event.buffer_bytes);
}
"""


def test_heavy_hitter_program_detects_and_resets():
    program = compile_program(HEAVY_HITTER_SOURCE)
    network, switch, sink = single_switch(program)
    h0 = network.hosts["h0"]
    # One elephant (10 packets), several mice (2 packets each).
    for i in range(10):
        network.sim.call_at(
            1_000 + i * 10_000,
            h0.send,
            make_udp_packet(H0_IP, H1_IP, sport=7, dport=7),
        )
    for mouse in range(3):
        for i in range(2):
            network.sim.call_at(
                5_000 + mouse * 1_000 + i * 10_000,
                h0.send,
                make_udp_packet(H0_IP, H1_IP, sport=100 + mouse, dport=9),
            )
    network.run(until_ps=int(0.9 * MILLISECONDS))  # inside one window
    assert len(program.marks) == 1  # only the elephant, only once
    # After the timer window the register is clear.
    network.sim.call_at(int(1.5 * MILLISECONDS), lambda: None)
    network.run(until_ps=2 * MILLISECONDS)
    assert program.registers["counts"].nonzero_count() == 0


def test_queue_watch_program_sees_buffer_events():
    program = compile_program(QUEUE_WATCH_SOURCE)
    network, switch, sink = single_switch(program)
    switch.tm.set_port_rate(1, 0.1)  # force a backlog
    h0 = network.hosts["h0"]
    for i in range(8):
        network.sim.call_at(
            1_000 + i * 5_000,
            h0.send,
            make_udp_packet(H0_IP, H1_IP, payload_len=958),
        )
    network.run(until_ps=2_000 * MICROSECONDS)
    assert program.marks  # occupancy crossed the mark threshold
    assert max(value for (value,) in program.marks) > 2_000
    # Occupancy register ends at zero once everything drained.
    assert program.registers["occupancy"].read(0) == 0


def test_compiled_programs_reject_wrong_architecture():
    """A DSL program needing buffer events cannot load on baseline PSA."""
    from repro.arch.description import UnsupportedEventError
    from repro.experiments.factories import make_baseline_switch
    from repro.net.topology import build_linear

    program = compile_program(QUEUE_WATCH_SOURCE)
    network = build_linear(make_baseline_switch(), switch_count=1)
    with pytest.raises(UnsupportedEventError):
        network.switches["s0"].load_program(program)
