"""Integration tests: every experiment runner executes end-to-end.

Short-duration versions of the benchmark experiments, asserting the
qualitative shape of each result (who wins, roughly by how much) so a
regression anywhere in the stack — kernel, packets, PISA, TM,
architectures, network, apps — surfaces here.
"""

import pytest

from repro.sim.units import MILLISECONDS


def test_microburst_comparison():
    from repro.experiments.microburst_exp import (
        run_event_driven,
        run_snappy_baseline,
        state_reduction_factor,
    )

    event = run_event_driven(duration_ps=8 * MILLISECONDS)
    snappy = run_snappy_baseline(duration_ps=8 * MILLISECONDS)
    assert event.culprit_detected
    assert state_reduction_factor(event, snappy) >= 4.0
    assert event.false_positive_flows == 0


def test_hula_vs_ecmp():
    from repro.experiments.hula_exp import run_load_balance

    hula = run_load_balance("hula", duration_ps=8 * MILLISECONDS)
    ecmp = run_load_balance("ecmp", duration_ps=8 * MILLISECONDS)
    assert ecmp.imbalance > 1.8
    assert hula.imbalance < 1.3
    with pytest.raises(ValueError):
        run_load_balance("magic")


def test_frr_vs_control_plane():
    from repro.experiments.frr_exp import run_failover

    frr = run_failover("frr", duration_ps=120 * MILLISECONDS)
    control = run_failover("control-plane", duration_ps=200 * MILLISECONDS)
    assert frr.packets_lost <= 5
    assert control.packets_lost > 100 * max(1, frr.packets_lost)
    with pytest.raises(ValueError):
        run_failover("carrier-pigeon")


def test_liveness_detection():
    from repro.experiments.liveness_exp import run_liveness

    result = run_liveness()
    assert result.detection_delay_ps is not None
    assert result.notifications_at_monitor == 1


def test_cms_reset_modes():
    from repro.experiments.cms_exp import run_cms_reset

    timer = run_cms_reset("timer", duration_ps=8 * MILLISECONDS)
    control = run_cms_reset("control", duration_ps=8 * MILLISECONDS)
    assert timer.precision > control.precision
    assert control.controller_busy_fraction > 0.9
    assert timer.controller_busy_fraction == 0.0


def test_merger_load_points():
    from repro.experiments.merger_exp import run_merger_load

    enabled = run_merger_load(0.5, True, duration_ps=1 * MILLISECONDS)
    disabled = run_merger_load(0.5, False, duration_ps=1 * MILLISECONDS)
    assert enabled.events_dropped == 0
    assert disabled.mean_wait_ns > enabled.mean_wait_ns
    with pytest.raises(ValueError):
        run_merger_load(0.0)


def test_staleness_sweeps():
    from repro.experiments.staleness_exp import (
        run_aggregated,
        run_naive_single_array,
        sweep_overspeed,
    )

    results = sweep_overspeed([1.1, 2.0], cycles=10_000)
    # At short horizons the value error is noisy; the drain lag is the
    # robust monotone signal (the long-horizon bench asserts both).
    assert (
        results[0].staleness.mean_lag_cycles
        > 3 * results[1].staleness.mean_lag_cycles
    )
    naive = run_naive_single_array(cycles=10_000)
    assert naive.conflict_cycles > 0
    aggregated = run_aggregated(cycles=10_000)
    assert aggregated.port_conflicts == 0


def test_emulation_points():
    from repro.experiments.emulation_exp import run_emulation_point

    native = run_emulation_point("sume", 200_000.0, duration_ps=2 * MILLISECONDS)
    emulated = run_emulation_point(
        "tofino-emulated", 200_000.0, duration_ps=2 * MILLISECONDS
    )
    assert native.events_lost == 0
    assert emulated.mean_lag_ns > native.mean_lag_ns
    with pytest.raises(ValueError):
        run_emulation_point("abacus")


def test_aqm_schemes():
    from repro.experiments.aqm_exp import jain_fairness, run_aqm

    fred = run_aqm("fred", duration_ps=8 * MILLISECONDS)
    tail = run_aqm("drop-tail", duration_ps=8 * MILLISECONDS)
    assert fred.fairness > tail.fairness
    assert jain_fairness([1.0, 1.0, 1.0]) == pytest.approx(1.0)
    assert jain_fairness([1.0, 0.0, 0.0]) == pytest.approx(1 / 3)
    assert jain_fairness([]) == 1.0


def test_ndp_incast():
    from repro.experiments.ndp_exp import run_incast

    ndp = run_incast("ndp", waves=2, duration_ps=8 * MILLISECONDS)
    tail = run_incast("tail-drop", waves=2, duration_ps=8 * MILLISECONDS)
    assert ndp.loss_visibility > 0.9
    assert tail.loss_visibility == 0.0


def test_policing_schemes():
    from repro.experiments.policing_exp import run_policing

    timer = run_policing("timer", duration_ps=8 * MILLISECONDS)
    meter = run_policing("meter", duration_ps=8 * MILLISECONDS)
    for result in (timer, meter):
        over_rate = result.flows[-1]
        assert over_rate.delivered_gbps < 0.6 * over_rate.offered_gbps


def test_flow_rate_estimators():
    from repro.experiments.flow_rate_exp import run_flow_rate

    window = run_flow_rate("window", duration_ps=10 * MILLISECONDS,
                           stop_burst_at_ps=5 * MILLISECONDS)
    ewma = run_flow_rate("ewma", duration_ps=10 * MILLISECONDS,
                         stop_burst_at_ps=5 * MILLISECONDS)
    assert window.stopped_flow_residual_gbps < 0.1
    assert ewma.stopped_flow_residual_gbps > 1.0


def test_netcache_adaptation():
    from repro.experiments.netcache_exp import run_netcache

    with_timer = run_netcache(True, duration_ps=16 * MILLISECONDS,
                              shift_at_ps=8 * MILLISECONDS)
    without = run_netcache(False, duration_ps=16 * MILLISECONDS,
                           shift_at_ps=8 * MILLISECONDS)
    assert with_timer.post_shift_hit_ratio > without.post_shift_hit_ratio


def test_int_volume():
    from repro.experiments.int_exp import run_int

    aggregate = run_int("aggregate", duration_ps=10 * MILLISECONDS, waves=2)
    postcards = run_int("postcards", duration_ps=10 * MILLISECONDS, waves=2)
    assert aggregate.reports_received < postcards.reports_received / 50


def test_event_catalog():
    from repro.experiments.events_exp import run_catalog_demo, support_matrix

    result = run_catalog_demo()
    assert result.all_fired()
    matrix = support_matrix()
    assert len(matrix) == 4


def test_architecture_traces():
    from repro.experiments.psa_fig_exp import run_architecture

    baseline = run_architecture("baseline", packets=50)
    logical = run_architecture("logical", packets=50)
    sume = run_architecture("sume", packets=50)
    assert baseline.buffer_events_visible() == 0
    assert logical.buffer_events_visible() == 100
    assert sume.buffer_events_visible() == 100
    assert sume.mean_event_wait_ps > logical.mean_event_wait_ps
    with pytest.raises(ValueError):
        run_architecture("quantum")


def test_programmable_scheduling():
    from repro.experiments.scheduling_exp import run_scheduling

    wfq = run_scheduling("wfq", duration_ps=10 * MILLISECONDS)
    fifo = run_scheduling("fifo", duration_ps=10 * MILLISECONDS)
    assert 2.3 < wfq.measured_ratio < 3.7
    assert 0.7 < fifo.measured_ratio < 1.4
    with pytest.raises(ValueError):
        run_scheduling("lottery")


def test_ecn_signal_quality():
    from repro.experiments.ecn_exp import run_ecn

    multi = run_ecn("multi-bit", duration_ps=10 * MILLISECONDS)
    single = run_ecn("single-bit", duration_ps=10 * MILLISECONDS)
    assert multi.mean_abs_error_bytes < single.mean_abs_error_bytes / 5
    with pytest.raises(ValueError):
        run_ecn("zero-bit")


def test_reliable_transfer_over_failover():
    from repro.experiments.reliable_exp import run_reliable_transfer

    frr = run_reliable_transfer("frr", total_packets=5_000,
                                duration_ps=250 * MILLISECONDS)
    assert frr.completed
    assert frr.retransmissions < 50
    with pytest.raises(ValueError):
        run_reliable_transfer("smoke-signals")


def test_netchain_repair():
    from repro.experiments.netchain_exp import run_netchain

    event_driven = run_netchain("event-driven", duration_ps=100 * MILLISECONDS,
                                fail_at_ps=20 * MILLISECONDS)
    assert event_driven.writes_lost <= 3
    assert event_driven.read_matches_last_ack
    with pytest.raises(ValueError):
        run_netchain("telepathy")


def test_pie_aqm():
    from repro.experiments.aqm_exp import run_aqm

    pie = run_aqm("pie", duration_ps=10 * MILLISECONDS)
    tail = run_aqm("drop-tail", duration_ps=10 * MILLISECONDS)
    assert pie.aqm_drops > 0
    assert pie.overflow_drops < tail.overflow_drops


def test_state_migration():
    from repro.experiments.migration_exp import BUDGET_BYTES, run_migration

    with_migration = run_migration(True, duration_ps=30 * MILLISECONDS)
    without = run_migration(False, duration_ps=30 * MILLISECONDS)
    assert with_migration.delivered_bytes <= 1.05 * BUDGET_BYTES
    assert without.delivered_bytes >= 1.5 * BUDGET_BYTES


def test_multipipe_replication():
    from repro.state.replication import run_multipipe

    tight = run_multipipe(sync_period_cycles=8, cycles=8_000)
    never = run_multipipe(sync_period_cycles=None, cycles=8_000)
    assert never.mean_read_error > 5 * tight.mean_read_error


def test_consistency_contention():
    from repro.state.consistency import run_contention

    atomic = run_contention(0, cycles=10_000)
    delayed = run_contention(4, cycles=10_000)
    assert atomic.lost_updates == 0
    assert delayed.lost_updates > 0


def test_table2_rows_without_experiments():
    from repro.experiments.table2_exp import build_table2

    rows = build_table2(run_experiments=False)
    assert len(rows) == 5
    assert all(row.events_used for row in rows)
