"""Tests for the pluggable observability layer (repro.obs)."""

import io
import json

from repro.arch.bus import EventBus
from repro.arch.event_driven import LogicalEventSwitch
from repro.arch.events import Event, EventType
from repro.arch.program import P4Program, handler
from repro.cli import main
from repro.experiments.psa_fig_exp import run_architecture
from repro.obs import (
    CallbackProfiler,
    DispatchLatencyHistogram,
    EventCounters,
    JsonlTraceSink,
    RecordingObserver,
    observing,
    read_events_trace,
)
from repro.packet.builder import make_udp_packet
from repro.packet.trace import TraceReader, TraceReplayer, TraceWriter
from repro.sim.kernel import Simulator


def timer_event(t_ps=0, timer_id=1):
    return Event(kind=EventType.TIMER, time_ps=t_ps, meta={"timer_id": timer_id})


# ----------------------------------------------------------------------
# EventCounters
# ----------------------------------------------------------------------
def test_counters_aggregate_across_buses():
    sim = Simulator()
    counters = EventCounters()
    bus_a, bus_b = EventBus(sim, name="a"), EventBus(sim, name="b")
    bus_a.add_observer(counters)
    bus_b.add_observer(counters)
    bus_a.publish(timer_event())
    bus_b.publish(timer_event())
    bus_b.set_admission(lambda event: False)
    bus_b.publish(timer_event())
    assert counters.published[EventType.TIMER] == 3
    assert counters.suppressed[EventType.TIMER] == 1
    assert counters.nonzero_kinds() == [EventType.TIMER]
    assert counters.total_published() == 3


def test_counters_track_handled_and_dropped():
    sim = Simulator()
    counters = EventCounters()
    bus = EventBus(sim)
    bus.add_observer(counters)
    bus.set_dispatcher(lambda event: True)
    bus.dispatch(timer_event())
    bus.set_dispatcher(lambda event: False)
    bus.dispatch(timer_event())
    bus.drop(timer_event())
    snapshot = counters.as_dict()["timer_expiration"]
    assert snapshot == {
        "published": 0,
        "suppressed": 0,
        "handled": 1,
        "dropped": 1,
    }


# ----------------------------------------------------------------------
# DispatchLatencyHistogram
# ----------------------------------------------------------------------
def test_histogram_mean_and_max():
    histogram = DispatchLatencyHistogram()
    histogram.on_dispatch(None, timer_event(), 0, True)
    histogram.on_dispatch(None, timer_event(), 100, True)
    assert histogram.mean_ps(EventType.TIMER) == 50.0
    assert histogram.mean_ps() == 50.0
    assert histogram.max_ps[EventType.TIMER] == 100
    assert histogram.total_count() == 2
    assert histogram.observed_kinds() == [EventType.TIMER]


def test_histogram_percentiles_are_bucket_bounds():
    histogram = DispatchLatencyHistogram()
    for _ in range(99):
        histogram.on_dispatch(None, timer_event(), 0, True)
    histogram.on_dispatch(None, timer_event(), 1000, True)
    # Zero-latency dispatches land in bucket 0, whose upper bound is 0 ps.
    assert histogram.percentile_ps(50) == 0
    assert histogram.percentile_ps(99) == 0
    # 1000 ps has bit_length 10, so its bucket's upper bound is 2**10-1.
    assert histogram.percentile_ps(100) == 1023


def test_histogram_empty():
    histogram = DispatchLatencyHistogram()
    assert histogram.mean_ps() == 0.0
    assert histogram.percentile_ps(99) == 0
    assert histogram.summary_rows()[-1] == "(no dispatches observed)"


# ----------------------------------------------------------------------
# JsonlTraceSink
# ----------------------------------------------------------------------
def test_jsonl_sink_round_trip():
    sim = Simulator()
    stream = io.StringIO()
    sink = JsonlTraceSink(stream)
    bus = EventBus(sim, name="roundtrip")
    bus.add_observer(sink)
    event = timer_event(t_ps=0, timer_id=7)
    bus.publish(event, route=False)
    sim.call_at(500, bus.dispatch, event)
    sim.run()
    sink.close()
    stream.seek(0)
    records = read_events_trace(stream)
    assert [record["phase"] for record in records] == ["publish", "dispatch"]
    assert records[0]["admitted"] is True
    assert records[0]["bus"] == "roundtrip"
    assert records[0]["meta"] == {"timer_id": 7}
    assert records[1]["latency_ps"] == 500
    assert [record["seq"] for record in records] == [0, 1]


def test_jsonl_sink_can_exclude_dispatch():
    sim = Simulator()
    stream = io.StringIO()
    sink = JsonlTraceSink(stream, include_dispatch=False)
    bus = EventBus(sim)
    bus.add_observer(sink)
    event = timer_event()
    bus.publish(event, route=False)
    bus.delivered(event, handled=False)
    stream.seek(0)
    records = read_events_trace(stream)
    assert [record["phase"] for record in records] == ["publish"]


class Forwarder(P4Program):
    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx, pkt, meta):
        meta.send_to_port(1)


def test_packet_trace_side_channel_replays():
    """Packets captured alongside the event trace replay byte-exactly."""
    sim = Simulator()
    switch = LogicalEventSwitch(sim)
    switch.load_program(Forwarder())
    switch.set_tx_callback(lambda pkt, port: None)
    capture = io.BytesIO()
    sink = JsonlTraceSink(io.StringIO(), packet_trace=TraceWriter(capture))
    switch.bus.add_observer(sink)
    for i in range(3):
        sim.call_at((i + 1) * 1000, switch.receive, make_udp_packet(1, 2), 0)
    sim.run()
    sink.close()

    capture.seek(0)
    records = TraceReader(capture).read_all()
    # Every admitted packet-carrying publish was captured.
    assert len(records) >= 3

    replay_sim = Simulator()
    replayed = []
    replayer = TraceReplayer(replay_sim, records, replayed.append)
    assert replayer.schedule() == len(records)
    replay_sim.run()
    assert len(replayed) == len(records)
    assert replayed[0].payload_len == make_udp_packet(1, 2).payload_len


# ----------------------------------------------------------------------
# Determinism (satellite: same seed ⇒ identical trace)
# ----------------------------------------------------------------------
def _sume_trace(packets=40):
    recorder = RecordingObserver()
    with observing(recorder):
        run_architecture("sume", packets=packets)
    return recorder


def test_same_seed_produces_identical_event_trace():
    first = _sume_trace().normalized()
    second = _sume_trace().normalized()
    assert len(first) > 100
    assert first == second


def test_determinism_covers_same_timestamp_ties():
    """The trace must exercise (and stably order) same-timestamp events."""
    trace = _sume_trace().normalized()
    timestamps = [entry[3] for entry in trace]
    assert len(timestamps) != len(set(timestamps)), (
        "expected same-timestamp events; tie-breaking is not exercised"
    )


def test_recording_observer_clear():
    recorder = RecordingObserver()
    recorder.on_publish(EventBus(Simulator()), timer_event(), True)
    assert recorder.records
    recorder.clear()
    assert recorder.records == []


# ----------------------------------------------------------------------
# CallbackProfiler (kernel tap)
# ----------------------------------------------------------------------
def test_callback_profiler_counts_by_qualname():
    sim = Simulator()
    profiler = CallbackProfiler.attach(sim)
    hits = []
    def tick():
        hits.append(sim.now_ps)
    sim.call_at(10, tick)
    sim.call_at(20, tick)
    sim.run()
    assert profiler.total() == 2
    (name, count), = profiler.top(1)
    assert "tick" in name
    assert count == 2
    profiler.detach(sim)
    sim.call_at(30, tick)
    sim.run()
    assert profiler.total() == 2


# ----------------------------------------------------------------------
# CLI subcommands
# ----------------------------------------------------------------------
def test_cli_events_stats(capsys):
    assert main(["events-stats", "--source", "catalog"]) == 0
    out = capsys.readouterr().out
    assert "EventBus counters (catalog)" in out
    assert "event type(s) observed" in out
    assert "timer_expiration" in out


def test_cli_events_trace(tmp_path, capsys):
    out_path = tmp_path / "trace.jsonl"
    assert main(["events-trace", "--source", "catalog",
                 "--out", str(out_path), "--limit", "2"]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    records = read_events_trace(str(out_path))
    assert len(records) > 10
    assert all("phase" in record for record in records)
    # The printed preview is valid JSON.
    preview = [line for line in out.splitlines() if line.startswith("{")]
    assert len(preview) == 2
    for line in preview:
        json.loads(line)
