"""Unit tests for counter and meter externs."""

import pytest

from repro.pisa.externs.counter import Counter, CounterKind
from repro.pisa.externs.meter import Meter, MeterColor
from repro.sim.units import SECONDS


class TestCounter:
    def test_counts_packets_and_bytes(self):
        counter = Counter(4)
        counter.count(1, 100)
        counter.count(1, 50)
        assert counter.read(1) == (2, 150)
        assert counter.read(0) == (0, 0)

    def test_packets_only_kind(self):
        counter = Counter(2, kind=CounterKind.PACKETS)
        counter.count(0, 1_000)
        assert counter.read(0) == (1, 0)

    def test_bytes_only_kind(self):
        counter = Counter(2, kind=CounterKind.BYTES)
        counter.count(0, 1_000)
        assert counter.read(0) == (0, 1_000)

    def test_bounds(self):
        counter = Counter(2)
        with pytest.raises(IndexError):
            counter.count(2)
        with pytest.raises(IndexError):
            counter.read(-1)

    def test_read_all_and_totals(self):
        counter = Counter(3)
        counter.count(0, 10)
        counter.count(2, 20)
        assert counter.read_all() == [(1, 10), (0, 0), (1, 20)]
        assert counter.total_packets() == 2
        assert counter.total_bytes() == 30

    def test_clear(self):
        counter = Counter(2)
        counter.count(0, 5)
        counter.clear()
        assert counter.total_packets() == 0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Counter(0)


class TestMeter:
    def test_burst_passes_then_red(self):
        # 1 Gb/s committed, 1500B burst, no excess.
        meter = Meter(1, cir_bps=1e9, cbs_bytes=1_500)
        assert meter.execute(0, 1_000, now_ps=0) is MeterColor.GREEN
        assert meter.execute(0, 1_000, now_ps=0) is MeterColor.RED

    def test_tokens_refill_over_time(self):
        meter = Meter(1, cir_bps=1e9, cbs_bytes=1_500)
        assert meter.execute(0, 1_500, now_ps=0) is MeterColor.GREEN
        # 1 Gb/s = 125 bytes/µs → after 12 µs, 1500 bytes have refilled.
        assert meter.execute(0, 1_500, now_ps=12 * 1_000_000) is MeterColor.GREEN

    def test_refill_caps_at_burst(self):
        meter = Meter(1, cir_bps=1e9, cbs_bytes=1_500)
        meter.execute(0, 1_500, now_ps=0)
        # A long silence cannot accumulate more than the burst.
        assert meter.tokens(0, now_ps=1 * SECONDS) == pytest.approx(1_500)

    def test_yellow_from_excess_bucket(self):
        meter = Meter(1, cir_bps=1e9, cbs_bytes=1_000, ebs_bytes=1_000)
        assert meter.execute(0, 1_000, now_ps=0) is MeterColor.GREEN
        assert meter.execute(0, 1_000, now_ps=0) is MeterColor.YELLOW
        assert meter.execute(0, 1_000, now_ps=0) is MeterColor.RED

    def test_long_run_rate_conformance(self):
        # Offer 2x the committed rate; about half should be green.
        meter = Meter(1, cir_bps=1e9, cbs_bytes=3_000)
        green = 0
        offered = 0
        t = 0
        for _ in range(2_000):
            if meter.execute(0, 1_000, now_ps=t) is MeterColor.GREEN:
                green += 1
            offered += 1
            t += 4 * 1_000_000  # 1000B every 4 µs = 2 Gb/s offered
        assert 0.45 <= green / offered <= 0.55

    def test_independent_indices(self):
        meter = Meter(2, cir_bps=1e9, cbs_bytes=1_000)
        assert meter.execute(0, 1_000, 0) is MeterColor.GREEN
        assert meter.execute(1, 1_000, 0) is MeterColor.GREEN

    def test_bounds_and_validation(self):
        meter = Meter(1, cir_bps=1e9, cbs_bytes=100)
        with pytest.raises(IndexError):
            meter.execute(1, 10, 0)
        with pytest.raises(ValueError):
            Meter(1, cir_bps=0, cbs_bytes=100)
        with pytest.raises(ValueError):
            Meter(1, cir_bps=1e9, cbs_bytes=0)
        with pytest.raises(ValueError):
            Meter(0, cir_bps=1e9, cbs_bytes=100)
