"""Unit tests for packet queues and the shared buffer."""

import pytest

from repro.packet.builder import make_udp_packet
from repro.tm.buffer import SharedBuffer
from repro.tm.queues import PacketQueue


def pkt(size_payload=0):
    # 458B payload + 42B headers = 500B total.
    return make_udp_packet(1, 2, payload_len=size_payload)


class TestPacketQueue:
    def test_fifo_order(self):
        queue = PacketQueue(10_000)
        first, second = pkt(), pkt()
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_byte_accounting(self):
        queue = PacketQueue(10_000)
        p = pkt(458)  # 500B total
        queue.push(p)
        assert queue.depth_bytes == 500
        queue.pop()
        assert queue.depth_bytes == 0
        assert queue.empty

    def test_fits_respects_capacity(self):
        queue = PacketQueue(600)
        queue.push(pkt(458))  # 500B
        assert not queue.fits(pkt(458))
        assert queue.fits(pkt(0))  # 64B still fits

    def test_push_beyond_capacity_raises(self):
        queue = PacketQueue(100)
        with pytest.raises(OverflowError):
            queue.push(pkt(458))

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PacketQueue(100).pop()

    def test_peek_does_not_remove(self):
        queue = PacketQueue(1_000)
        p = pkt()
        queue.push(p)
        assert queue.peek() is p
        assert len(queue) == 1
        assert PacketQueue(10).peek() is None

    def test_stats_track_watermarks(self):
        queue = PacketQueue(10_000)
        queue.push(pkt(458))
        queue.push(pkt(458))
        queue.pop()
        assert queue.stats.enqueued_packets == 2
        assert queue.stats.dequeued_packets == 1
        assert queue.stats.max_depth_bytes == 1_000
        assert queue.stats.max_depth_packets == 2

    def test_drop_accounting(self):
        queue = PacketQueue(100)
        queue.account_drop(pkt(458))
        assert queue.stats.dropped_packets == 1
        assert queue.stats.dropped_bytes == 500

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PacketQueue(0)


class TestSharedBuffer:
    def test_admit_and_release(self):
        buffer = SharedBuffer(1_000)
        p = pkt(458)
        buffer.admit(p)
        assert buffer.occupancy_bytes == 500
        buffer.release(p)
        assert buffer.occupancy_bytes == 0
        assert buffer.empty

    def test_fits_and_overflow(self):
        buffer = SharedBuffer(600)
        buffer.admit(pkt(458))
        assert not buffer.fits(pkt(458))
        with pytest.raises(OverflowError):
            buffer.admit(pkt(458))

    def test_release_more_than_held_raises(self):
        buffer = SharedBuffer(1_000)
        with pytest.raises(ValueError):
            buffer.release(pkt(458))

    def test_high_water_mark(self):
        buffer = SharedBuffer(10_000)
        a, b = pkt(458), pkt(458)
        buffer.admit(a)
        buffer.admit(b)
        buffer.release(a)
        assert buffer.max_occupancy_bytes == 1_000
        assert buffer.occupancy_bytes == 500

    def test_reject_counter(self):
        buffer = SharedBuffer(100)
        buffer.reject()
        assert buffer.rejected_packets == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SharedBuffer(0)
