"""Unit tests for the microburst detectors (event-driven and Snappy)."""

import pytest

from app_harness import H0_IP, H1_IP, single_switch

from repro.apps.microburst import MicroburstDetector
from repro.apps.snappy import SnappyDetector
from repro.packet.builder import make_udp_packet
from repro.packet.hashing import ip_pair_hash
from repro.sim.units import MICROSECONDS


def burst_into(network, count, payload=1400, gap_ps=100_000):
    h0 = network.hosts["h0"]
    for i in range(count):
        network.sim.call_at(
            1_000 + i * gap_ps,
            h0.send,
            make_udp_packet(H0_IP, H1_IP, payload_len=payload),
        )


class TestMicroburstDetector:
    def test_validation(self):
        with pytest.raises(ValueError):
            MicroburstDetector(num_regs=0)
        with pytest.raises(ValueError):
            MicroburstDetector(flow_thresh_bytes=0)
        with pytest.raises(ValueError):
            MicroburstDetector(action="explode")

    def test_detects_when_occupancy_exceeds_threshold(self):
        detector = MicroburstDetector(num_regs=64, flow_thresh_bytes=3_000)
        network, switch, sink = single_switch(detector)
        switch.tm.set_port_rate(1, 0.5)  # slow egress → queue builds
        burst_into(network, 10, gap_ps=10_000)
        network.run(until_ps=2_000 * MICROSECONDS)
        flow_id = ip_pair_hash(H0_IP, H1_IP, 64)
        assert flow_id in detector.detected_flows()
        assert detector.first_detection_ps(flow_id) is not None

    def test_no_detection_below_threshold(self):
        detector = MicroburstDetector(num_regs=64, flow_thresh_bytes=1 << 30)
        network, switch, sink = single_switch(detector)
        burst_into(network, 10)
        network.run(until_ps=3_000 * MICROSECONDS)
        assert detector.detections == []
        assert sink.packets == 10

    def test_occupancy_returns_to_zero_after_drain(self):
        detector = MicroburstDetector(num_regs=64, flow_thresh_bytes=1 << 30)
        network, switch, sink = single_switch(detector)
        burst_into(network, 5)
        network.run(until_ps=5_000 * MICROSECONDS)
        assert detector.flow_buf_size.nonzero_count() == 0

    def test_drop_action_drops_culprit_packets(self):
        detector = MicroburstDetector(
            num_regs=64, flow_thresh_bytes=2_000, action="drop"
        )
        network, switch, sink = single_switch(detector)
        switch.tm.set_port_rate(1, 0.1)
        burst_into(network, 20, gap_ps=5_000)
        network.run(until_ps=5_000 * MICROSECONDS)
        assert switch.dropped_by_program > 0
        assert sink.packets < 20

    def test_deprioritize_action(self):
        detector = MicroburstDetector(
            num_regs=64, flow_thresh_bytes=2_000, action="deprioritize"
        )
        network, switch, sink = single_switch(detector)
        switch.tm.set_port_rate(1, 0.1)
        burst_into(network, 20, gap_ps=5_000)
        network.run(until_ps=5_000 * MICROSECONDS)
        assert detector.detections  # flagged, but nothing dropped
        assert switch.dropped_by_program == 0

    def test_non_ip_dropped(self):
        from repro.packet.headers import Ethernet
        from repro.packet.packet import Packet

        detector = MicroburstDetector(num_regs=64)
        network, switch, sink = single_switch(detector)
        switch.receive(Packet(headers=[Ethernet()], payload_len=50), 0)
        network.run()
        assert sink.packets == 0

    def test_state_bits_is_single_register(self):
        detector = MicroburstDetector(num_regs=256)
        assert detector.state_bits() == 256 * 32


class TestCmsMicroburst:
    def test_validation(self):
        from repro.apps.microburst import CmsMicroburstDetector

        with pytest.raises(ValueError):
            CmsMicroburstDetector(flow_thresh_bytes=0)

    def test_detects_culprit_with_less_state(self):
        from repro.apps.microburst import CmsMicroburstDetector

        detector = CmsMicroburstDetector(width=64, depth=2, flow_thresh_bytes=3_000)
        # Versus a register provisioned for the default flow space, the
        # sketch (sized to the *buffered* flows) is much smaller.
        register_version = MicroburstDetector(flow_thresh_bytes=3_000)
        assert detector.state_bits() < register_version.state_bits() / 4
        network, switch, sink = single_switch(detector)
        switch.tm.set_port_rate(1, 0.5)
        burst_into(network, 10, gap_ps=10_000)
        network.run(until_ps=2_000 * MICROSECONDS)
        assert detector.detected_flows()
        # Occupancy drains back to zero in the sketch too.
        assert detector.sketch.total() == 0

    def test_signed_updates_never_underestimate(self):
        from repro.pisa.externs.sketch import CountMinSketch

        sketch = CountMinSketch(64, 2)
        sketch.add_signed(b"a", 500)
        sketch.add_signed(b"b", 300)
        sketch.add_signed(b"a", -200)
        assert sketch.query(b"a") >= 300
        assert sketch.query(b"b") >= 300

    def test_negative_net_rejected(self):
        from repro.pisa.externs.sketch import CountMinSketch

        sketch = CountMinSketch(64, 2)
        sketch.add_signed(b"a", 100)
        with pytest.raises(ValueError):
            sketch.add_signed(b"a", -200)


class TestSnappyDetector:
    def test_validation(self):
        with pytest.raises(ValueError):
            SnappyDetector(snapshot_count=1)
        with pytest.raises(ValueError):
            SnappyDetector(window_ps=0)
        with pytest.raises(ValueError):
            SnappyDetector(line_rate_gbps=0)

    def test_state_is_snapshot_count_times_larger(self):
        event_driven = MicroburstDetector(num_regs=512)
        snappy = SnappyDetector(num_regs=512, snapshot_count=4)
        assert snappy.state_bits() >= 4 * event_driven.state_bits()

    def test_window_rotation(self):
        snappy = SnappyDetector(num_regs=16, snapshot_count=3, window_ps=1_000)
        snappy._rotate_if_needed(now_ps=0)
        snappy.snapshots[int(snappy.window_meta.read(0))].write(0, 99)
        snappy._rotate_if_needed(now_ps=5_000)  # several windows pass
        # After full rotation the old snapshot was cleared.
        total = sum(s.read(0) for s in snappy.snapshots)
        assert total == 0

    def test_detects_heavy_arrivals_in_egress(self):
        snappy = SnappyDetector(
            num_regs=64, flow_thresh_bytes=3_000, snapshot_count=4,
            window_ps=500 * MICROSECONDS,
        )
        network, switch, sink = single_switch(snappy, arch="baseline")
        switch.tm.set_port_rate(1, 0.5)
        burst_into(network, 10, gap_ps=10_000)
        network.run(until_ps=2_000 * MICROSECONDS)
        flow_id = ip_pair_hash(H0_IP, H1_IP, 64)
        assert flow_id in snappy.detected_flows()
