"""Module-level scenario runners for the job-service tests.

Entry points must be importable by name inside worker *processes*
(``"tests.serve_helpers:crash_once"``), so these live in a real module
rather than inside test functions.
"""

from __future__ import annotations

import os
from typing import Dict


def quick(value: int = 1) -> Dict[str, int]:
    """The fastest possible job; returns its input."""
    return {"value": value}


def crash_once(sentinel: str = "") -> Dict[str, object]:
    """Kill the worker process on the first attempt, succeed on retry.

    ``os._exit`` bypasses the worker's exception handling entirely — the
    parent sees a dead process (``WorkerCrashed``), not a job traceback,
    which is exactly the distinction the service's retry logic keys on.
    The sentinel file records that the first attempt happened.
    """
    if sentinel and not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as fh:
            fh.write("first attempt\n")
        os._exit(23)
    return {"survived": True}


def crash_always() -> None:
    """Kill the worker process on every attempt."""
    os._exit(24)


def boom() -> None:
    """Fail the job (not the worker) with a scripted exception."""
    raise RuntimeError("scripted job failure")
