"""The job service: protocol round-trips, admission, crashes, preemption.

Satellite guarantees under test:

* submit/status/result/cancel round-trips over the service's handle
  path and over a real unix-socket server,
* queue saturation — submissions beyond the bound are refused
  synchronously, never silently dropped,
* a worker process crash (``WorkerCrashed``) respawns the worker and
  retries the job once; a second crash fails it; a job *exception* is a
  failure without a retry,
* a running phased job preempts into an in-memory checkpoint on cancel
  and resumes from it to the same result an uninterrupted run prints.
"""

import asyncio
import os
import subprocess
import sys
import time

import pytest

from repro import scenarios
from repro.scenarios import ScenarioSpec
from repro.serve.protocol import (
    ProtocolError,
    decode,
    encode,
    error_reply,
    event_message,
    ok_reply,
)
from repro.serve.service import JobService

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

#: A phased scenario small enough for tests (2 ms of simulated time).
FAST_PHASED = {"duration_ps": 2_000_000_000}


def _register_helpers(tmp_path) -> dict:
    """Register the helper runners; returns their scenario names."""
    names = {
        "quick": "test/quick",
        "crash_once": "test/crash-once",
        "crash_always": "test/crash-always",
        "boom": "test/boom",
    }
    sentinel = str(tmp_path / "crash-once.sentinel")
    scenarios.load_all()
    for fn, name in names.items():
        params = {"sentinel": sentinel} if fn == "crash_once" else {}
        spec = ScenarioSpec(
            name=name, runner=f"tests.serve_helpers:{fn}", params=params
        )
        if name in scenarios.names():
            continue
        scenarios.register(spec)
    return names


def _service_run(coro_fn, **knobs):
    """Run an async test body against a started service."""

    async def _run():
        service = JobService(**knobs)
        await service.start()
        try:
            return await coro_fn(service)
        finally:
            await service.close()

    return asyncio.run(_run())


async def _wait_done(events: asyncio.Queue, job_id: str) -> dict:
    while True:
        event = await asyncio.wait_for(events.get(), timeout=300)
        if event.get("event") == "done" and event.get("job") == job_id:
            return event


# ----------------------------------------------------------------------
# Protocol basics
# ----------------------------------------------------------------------
def test_protocol_encode_decode_round_trip():
    message = {"op": "submit", "scenario": "x", "params": {"a": 1}}
    line = encode(message)
    assert line.endswith("\n")
    assert decode(line) == message
    with pytest.raises(ProtocolError, match="not JSON"):
        decode("{nope")
    with pytest.raises(ProtocolError, match="JSON object"):
        decode("[1, 2]")
    assert ok_reply(x=1) == {"ok": True, "x": 1}
    assert error_reply("nope")["ok"] is False
    assert event_message("telemetry", job="j")["event"] == "telemetry"


# ----------------------------------------------------------------------
# Round-trips against the service core
# ----------------------------------------------------------------------
def test_submit_status_result_round_trip(tmp_path):
    names = _register_helpers(tmp_path)

    async def body(service):
        events = asyncio.Queue()
        reply = await service.handle(
            {"op": "submit", "scenario": names["quick"], "params": {}},
            events=events,
        )
        assert reply["ok"] and reply["state"] == "queued"
        job_id = reply["job"]
        await _wait_done(events, job_id)
        status = await service.handle({"op": "status", "job": job_id})
        assert status["job"]["state"] == "done"
        result = await service.handle({"op": "result", "job": job_id})
        assert result["ok"]
        assert result["result"]["rows"] == {"value": ["1"]}
        listing = await service.handle({"op": "jobs"})
        assert [job["job"] for job in listing["jobs"]] == [job_id]
        return True

    assert _service_run(body, workers=1)


def test_submission_admission_errors(tmp_path):
    _register_helpers(tmp_path)

    async def body(service):
        reply = await service.handle({"op": "submit", "scenario": "nope"})
        assert not reply["ok"] and "registered scenarios" in reply["error"]
        assert "table2/rows" in reply["registered"]
        reply = await service.handle(
            {
                "op": "submit",
                "scenario": "microburst/event-driven",
                "params": {"bogus_knob": 1},
            }
        )
        assert not reply["ok"] and "unknown override" in reply["error"]
        reply = await service.handle({"op": "status", "job": "job-999"})
        assert not reply["ok"] and "no such job" in reply["error"]
        reply = await service.handle({"op": "bogus-op"})
        assert not reply["ok"] and "unknown op" in reply["error"]
        return True

    assert _service_run(body, workers=1)


def test_queue_saturation_refuses_not_drops(tmp_path):
    names = _register_helpers(tmp_path)

    async def body(service):
        events = asyncio.Queue()
        # Occupy the single worker with a phased job...
        first = await service.handle(
            {
                "op": "submit",
                "scenario": "microburst/event-driven",
                "params": FAST_PHASED,
            },
            events=events,
        )
        assert first["ok"]
        await asyncio.sleep(0.3)  # let the worker dequeue it
        # ...fill the queue to its bound...
        second = await service.handle(
            {"op": "submit", "scenario": names["quick"]}, events=events
        )
        assert second["ok"]
        # ...and the next submission is refused, not enqueued.
        third = await service.handle({"op": "submit", "scenario": names["quick"]})
        assert not third["ok"] and "queue full" in third["error"]
        await _wait_done(events, first["job"])
        await _wait_done(events, second["job"])
        # Queue drained: submissions are admitted again.
        fourth = await service.handle(
            {"op": "submit", "scenario": names["quick"]}, events=events
        )
        assert fourth["ok"]
        await _wait_done(events, fourth["job"])
        return True

    assert _service_run(body, workers=1, queue_limit=1, windows=4)


def test_worker_crash_respawns_and_retries(tmp_path):
    names = _register_helpers(tmp_path)

    async def body(service):
        events = asyncio.Queue()
        reply = await service.handle(
            {"op": "submit", "scenario": names["crash_once"]}, events=events
        )
        job_id = reply["job"]
        done = await _wait_done(events, job_id)
        assert done["state"] == "done"  # survived via retry
        status = await service.handle({"op": "status", "job": job_id})
        assert status["job"]["attempts"] == 1
        result = await service.handle({"op": "result", "job": job_id})
        assert result["result"]["rows"] == {"survived": ["True"]}
        # The pool is healthy afterwards: the respawned worker runs jobs.
        reply = await service.handle(
            {"op": "submit", "scenario": names["quick"]}, events=events
        )
        assert (await _wait_done(events, reply["job"]))["state"] == "done"
        return True

    assert _service_run(body, workers=1)


def test_worker_crashing_every_attempt_fails_the_job(tmp_path):
    names = _register_helpers(tmp_path)

    async def body(service):
        events = asyncio.Queue()
        reply = await service.handle(
            {"op": "submit", "scenario": names["crash_always"]}, events=events
        )
        job_id = reply["job"]
        done = await _wait_done(events, job_id)
        assert done["state"] == "failed"
        status = await service.handle({"op": "status", "job": job_id})
        assert status["job"]["attempts"] == 2  # initial + one retry
        assert "worker crashed" in status["job"]["error"]
        result = await service.handle({"op": "result", "job": job_id})
        assert not result["ok"]
        return True

    assert _service_run(body, workers=1)


def test_job_exception_fails_without_retry(tmp_path):
    names = _register_helpers(tmp_path)

    async def body(service):
        events = asyncio.Queue()
        reply = await service.handle(
            {"op": "submit", "scenario": names["boom"]}, events=events
        )
        job_id = reply["job"]
        done = await _wait_done(events, job_id)
        assert done["state"] == "failed"
        status = await service.handle({"op": "status", "job": job_id})
        assert status["job"]["attempts"] == 0  # a job error is not a crash
        assert "scripted job failure" in status["job"]["error"]
        return True

    assert _service_run(body, workers=1)


def test_cancel_queued_and_preempt_running(tmp_path):
    _register_helpers(tmp_path)

    async def body(service):
        events = asyncio.Queue()
        running = await service.handle(
            {
                "op": "submit",
                "scenario": "microburst/event-driven",
                "params": FAST_PHASED,
            },
            events=events,
        )
        queued = await service.handle(
            {
                "op": "submit",
                "scenario": "microburst/event-driven",
                "params": FAST_PHASED,
            },
            events=events,
        )
        # Cancel the queued job before any worker touches it.
        reply = await service.handle({"op": "cancel", "job": queued["job"]})
        assert reply["ok"] and reply["job"]["state"] == "cancelled"
        # Preempt the running job after its first telemetry window.
        while True:
            event = await asyncio.wait_for(events.get(), timeout=300)
            if (
                event.get("event") == "telemetry"
                and event.get("job") == running["job"]
            ):
                break
        reply = await service.handle({"op": "cancel", "job": running["job"]})
        assert reply["ok"]
        done = await _wait_done(events, running["job"])
        assert done["state"] == "preempted"
        status = await service.handle({"op": "status", "job": running["job"]})
        assert status["job"]["has_checkpoint"]
        preempted_at = status["job"]["last_telemetry"]["now_ps"]
        assert 0 < preempted_at < FAST_PHASED["duration_ps"]
        # Resume: the checkpoint finishes to the same result a straight
        # run produces.
        reply = await service.handle(
            {"op": "resume", "job": running["job"]}, events=events
        )
        assert reply["ok"]
        done = await _wait_done(events, running["job"])
        assert done["state"] == "done"
        resumed = await service.handle({"op": "result", "job": running["job"]})

        straight = await service.handle(
            {
                "op": "submit",
                "scenario": "microburst/event-driven",
                "params": FAST_PHASED,
            },
            events=events,
        )
        await _wait_done(events, straight["job"])
        reference = await service.handle({"op": "result", "job": straight["job"]})
        assert resumed["result"]["rows"] == reference["result"]["rows"]
        return True

    assert _service_run(body, workers=1, windows=4)


# ----------------------------------------------------------------------
# The full stack: socket server + blocking client
# ----------------------------------------------------------------------
def test_socket_server_end_to_end(tmp_path):
    from repro.serve.client import ServiceClient

    socket_path = str(tmp_path / "serve.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--socket",
            socket_path,
            "--workers",
            "1",
            "--windows",
            "4",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        deadline = time.time() + 60
        while not os.path.exists(socket_path):
            assert proc.poll() is None, proc.stderr.read()
            assert time.time() < deadline, "socket never appeared"
            time.sleep(0.1)
        with ServiceClient(socket_path) as client:
            hello = client.expect("hello")
            assert hello["protocol"] == 1 and hello["workers"] == 1
            catalog = client.expect("scenarios", tag="paper")
            assert any(
                item["name"] == "microburst/event-driven"
                for item in catalog["scenarios"]
            )
            reply = client.expect(
                "submit",
                scenario="microburst/event-driven",
                params=FAST_PHASED,
            )
            job_id = reply["job"]
            assert client.wait(job_id) == "done"
            telemetry = client.telemetry(job_id)
            assert len(telemetry) == 4
            assert telemetry[-1]["progress"] == 1.0
            assert telemetry[0]["now_ps"] < telemetry[-1]["now_ps"]
            result = client.expect("result", job=job_id)
            assert "result" in result["result"]["rows"] or result["result"]["rows"]
            client.expect("shutdown")
        proc.wait(timeout=30)
        assert proc.returncode == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
