"""Tests for the PR-2 fast paths.

Covers the scheduler-backend equivalence contract (heap vs. calendar
wheel), table lookup-cache invalidation, the packet-layer memoization,
the metadata free-list, the zero-allocation no-observer dispatch path,
``Simulator.reset()`` observer detachment, the process-parallel sweep
runner, and the benchmark-trajectory harness behind ``repro bench``.
"""

import pytest

from repro.arch.events import EventType
from repro.packet.builder import make_udp_packet
from repro.packet.headers import Header, HeaderField
from repro.packet.parser import standard_parser
from repro.pisa.action import DROP, FORWARD, NO_ACTION
from repro.pisa.metadata import MetadataPool, StandardMetadata
from repro.pisa.table import ExactTable, LpmTable
from repro.sim.kernel import SCHEDULER_BACKENDS, Simulator


# ----------------------------------------------------------------------
# Scheduler equivalence: heap and wheel produce byte-identical traces
# ----------------------------------------------------------------------
def _kernel_trace(scheduler):
    """Drive one scripted schedule and record the executed-event trace.

    The script exercises same-timestamp ties across priorities and
    seqnos, cancellation before execution, cancellation *from a
    callback*, same-timestamp scheduling from inside a callback (the
    wheel's live drain window), and a bounded run.
    """
    sim = Simulator(scheduler=scheduler)
    trace = []
    sim.add_execution_observer(
        lambda ev: trace.append(("exec", sim.now_ps, ev.time_ps, ev.priority, ev.seqno))
    )

    def note(label):
        trace.append(("cb", sim.now_ps, label))

    # Same-timestamp ties: distinct priorities and scheduling order.
    sim.call_at(100, note, "tie-a", priority=5)
    sim.call_at(100, note, "tie-b", priority=0)
    sim.call_at(100, note, "tie-c", priority=5)

    # Cancellation before the run starts.
    doomed = sim.call_at(150, note, "never")
    doomed.cancel()

    # A callback that cancels a later event and schedules at its own
    # timestamp (mid-bucket insertion for the wheel backend).
    victim = sim.call_at(300, note, "victim")

    def cancel_and_chain():
        note("chain")
        victim.cancel()
        sim.call_at(sim.now_ps, note, "same-ts", priority=1)
        sim.call_after(50, note, "later")

    sim.call_at(200, cancel_and_chain)
    sim.call_at(300, note, "survivor", priority=-1)

    # Bounded run splits the schedule across two drains.
    sim.run(until_ps=210)
    sim.call_after(5, note, "post-bound")
    sim.run()
    trace.append(("final", sim.now_ps, sim.events_executed, sim.pending_events))
    return trace


def test_heap_and_wheel_traces_identical():
    heap = _kernel_trace("heap")
    wheel = _kernel_trace("wheel")
    assert heap == wheel
    labels = [entry[2] for entry in heap if entry[0] == "cb"]
    assert "never" not in labels and "victim" not in labels
    assert labels[:3] == ["tie-b", "tie-a", "tie-c"]  # (priority, seqno) order


@pytest.mark.parametrize("scheduler", SCHEDULER_BACKENDS)
def test_backends_cover_both_names(scheduler):
    assert Simulator(scheduler=scheduler).scheduler == scheduler


def test_sume_experiment_trace_identical_across_backends(monkeypatch):
    """Full-experiment determinism: the PR-1 recorder sees byte-identical
    normalized bus traces whichever kernel backend runs underneath."""
    from repro.experiments.psa_fig_exp import run_architecture
    from repro.obs import RecordingObserver, observing
    from repro.sim import kernel

    def bus_trace(scheduler):
        monkeypatch.setenv(kernel.SCHEDULER_ENV, scheduler)
        recorder = RecordingObserver()
        with observing(recorder):
            run_architecture("sume", packets=30)
        return recorder.normalized()

    heap = bus_trace("heap")
    wheel = bus_trace("wheel")
    assert len(heap) > 50
    assert heap == wheel


# ----------------------------------------------------------------------
# Table lookup caches
# ----------------------------------------------------------------------
def test_exact_table_cache_invalidated_on_insert_and_remove():
    table = ExactTable("t")
    default = NO_ACTION.bind()
    table.set_default(default)
    key = (7,)
    assert table.apply(key) is default  # miss, now cached
    assert table.apply(key) is default  # served from cache
    fwd = FORWARD.bind(port=3)
    table.insert(key, fwd)
    assert table.apply(key) is fwd  # insert invalidated the cached miss
    table.remove(key)
    assert table.apply(key) is default
    assert table.hit_count == 1
    assert table.miss_count == 3


def test_exact_table_cache_invalidated_on_default_change():
    table = ExactTable("t")
    key = (1,)
    first_default = table.apply(key)
    new_default = DROP.bind()
    table.set_default(new_default)
    assert table.apply(key) is new_default
    assert table.apply(key) is not first_default


def test_exact_table_cache_eviction_keeps_correctness():
    table = ExactTable("t", max_entries=4096)
    for i in range(table.CACHE_LIMIT + 50):
        table.insert((i,), FORWARD.bind(port=i % 4))
    for i in range(table.CACHE_LIMIT + 50):
        assert table.apply((i,)).params["port"] == i % 4
    assert len(table._cache) <= table.CACHE_LIMIT
    # Re-applying an evicted key still resolves correctly.
    assert table.apply((0,)).params["port"] == 0


def test_lpm_cache_longest_prefix_invalidation():
    table = LpmTable("rt", width_bits=32)
    short = FORWARD.bind(port=1)
    table.insert(0x0A000000, 8, short)  # 10.0.0.0/8
    value = 0x0A0B0C0D
    assert table.apply_value(value) is short  # cached
    long = FORWARD.bind(port=2)
    table.insert(0x0A0B0C00, 24, long)  # 10.11.12.0/24
    # The cached /8 result must not shadow the newly longest prefix.
    assert table.apply_value(value) is long
    table.remove(0x0A0B0C00, 24)
    assert table.apply_value(value) is short
    default = table.default_action
    table.remove(0x0A000000, 8)
    assert table.apply_value(value) is default


def test_lpm_cache_default_action_invalidation():
    table = LpmTable("rt")
    assert table.apply_value(5) is table.default_action
    new_default = DROP.bind()
    table.set_default(new_default)
    assert table.apply_value(5) is new_default


# ----------------------------------------------------------------------
# Packet-layer fast paths
# ----------------------------------------------------------------------
def test_header_width_memoized_per_class():
    class Narrow(Header):
        NAME = "narrow"
        FIELDS = (HeaderField("a", 8),)

    class Wide(Narrow):
        NAME = "wide"
        FIELDS = (HeaderField("a", 8), HeaderField("b", 16))

    assert Narrow.width_bytes() == 1
    # The subclass must not inherit the parent's cached totals.
    assert Wide.width_bytes() == 3
    assert Narrow.width_bits() == 8 and Wide.width_bits() == 24


def test_header_len_cache_invalidated_by_push_pop():
    from repro.packet.headers import Ipv4, Udp

    pkt = make_udp_packet(1, 2, payload_len=10)
    base = pkt.header_len
    udp = pkt.pop(Udp)
    assert pkt.header_len == base - Udp.width_bytes()
    # pop-then-push back to the original length must still recompute.
    popped = pkt.pop(Ipv4)
    pkt.push(udp)
    assert pkt.header_len == base - Ipv4.width_bytes()
    pkt.push(popped)
    assert pkt.header_len == base


def test_parser_memoized_parse_returns_independent_packets():
    from repro.packet.parser import Deparser

    parser = standard_parser()
    data = Deparser().deparse(make_udp_packet(0x01020304, 0x05060708, payload_len=100))
    first = parser.parse(data)
    second = parser.parse(data)  # memo hit
    assert first.headers == second.headers
    assert first.payload_len == second.payload_len == 100
    assert all(a is not b for a, b in zip(first.headers, second.headers))
    # Mutating one parse result must not leak into the next.
    second.headers[0].set(dst=0xFFFF)
    third = parser.parse(data)
    assert third.headers[0].dst != 0xFFFF


# ----------------------------------------------------------------------
# Metadata free-list
# ----------------------------------------------------------------------
def test_metadata_pool_recycles_and_detaches_user_meta():
    pool = MetadataPool()
    meta = pool.acquire(ingress_port=3, packet_length=64)
    meta.send_to_port(1)
    meta.enq_meta["flow"] = 9
    aliased = meta.enq_meta
    pool.release(meta)
    again = pool.acquire(ingress_port=0, packet_length=128)
    assert again is meta  # recycled shell
    assert again.egress_spec is None and again.packet_length == 128
    assert again.enq_meta == {} and again.enq_meta is not aliased
    assert aliased == {"flow": 9}  # the handed-off dict was not clobbered


def test_metadata_pool_limit():
    pool = MetadataPool(limit=1)
    a, b = StandardMetadata(), StandardMetadata()
    pool.release(a)
    pool.release(b)  # beyond the limit: dropped, not pooled
    assert len(pool) == 1


def test_switch_reuses_metadata_shells():
    from repro.apps.microburst import MicroburstDetector
    from repro.experiments.factories import make_sume_switch
    from repro.net.topology import build_linear

    network = build_linear(make_sume_switch(), switch_count=1)
    program = MicroburstDetector(num_regs=16, flow_thresh_bytes=1 << 30)
    program.install_routes({0x0A00_0002: 1, 0x0A00_0001: 0})
    switch = network.switches["s0"]
    switch.load_program(program)
    network.hosts["h1"].add_sink(lambda pkt: None)
    h0 = network.hosts["h0"]
    for i in range(20):
        network.sim.call_at(
            1_000 + i * 200_000,
            h0.send,
            make_udp_packet(0x0A00_0001, 0x0A00_0002, payload_len=64),
        )
    network.run()
    # Far fewer shells than pipeline traversals were ever constructed.
    assert len(switch.meta_pool) >= 1


# ----------------------------------------------------------------------
# Zero-allocation no-observer dispatch
# ----------------------------------------------------------------------
def test_packet_dispatch_skips_event_construction_without_observers(monkeypatch):
    from repro.arch import base as base_mod
    from repro.arch.bus import BusObserver
    from repro.arch.sume import SumeEventSwitch

    sim = Simulator()
    switch = SumeEventSwitch(sim)

    class Boom:
        def __init__(self, *args, **kwargs):
            raise AssertionError("Event constructed on the no-observer path")

    monkeypatch.setattr(base_mod, "Event", Boom)
    pkt = make_udp_packet(1, 2)
    meta = StandardMetadata()
    assert not switch.bus._observers
    # No program loaded: still must not build an Event.
    switch._dispatch_packet_event(EventType.INGRESS_PACKET, pkt, meta)
    before = switch.bus.fired[EventType.INGRESS_PACKET]
    assert before == 0  # no-program path returns before counting

    class NullProgram:
        def handler_for(self, kind):
            return None

        def shared_registers(self):
            return []

    switch.program = NullProgram()
    switch._dispatch_packet_event(EventType.INGRESS_PACKET, pkt, meta)
    assert switch.bus.fired[EventType.INGRESS_PACKET] == 1
    assert switch.bus.handled[EventType.INGRESS_PACKET] == 0

    # With an observer attached the instrumented path (which builds the
    # Event) must be taken again.
    switch.bus.add_observer(BusObserver())
    with pytest.raises(AssertionError, match="no-observer path"):
        switch._dispatch_packet_event(EventType.INGRESS_PACKET, pkt, meta)


# ----------------------------------------------------------------------
# Simulator.reset() detaches execution observers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheduler", SCHEDULER_BACKENDS)
def test_reset_detaches_execution_observers(scheduler):
    sim = Simulator(scheduler=scheduler)
    seen = []
    sim.add_execution_observer(seen.append)
    sim.call_at(10, lambda: None)
    sim.run()
    assert len(seen) == 1
    sim.reset()
    assert sim.now_ps == 0 and sim.pending_events == 0
    sim.call_at(10, lambda: None)
    sim.run()
    assert len(seen) == 1  # the reused simulator kept no old observers


# ----------------------------------------------------------------------
# Parallel sweep runner
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _kwargs_point(base, bump=0):
    return base + bump


def test_run_points_serial_and_parallel_agree():
    from repro.experiments.parallel import run_points

    points = list(range(12))
    serial = run_points(_square, points, workers=1)
    fanned = run_points(_square, points, workers=2)
    assert serial == fanned == [x * x for x in points]


def test_run_tasks_preserves_input_order():
    from repro.experiments.parallel import run_tasks

    tasks = [(_kwargs_point, (i,), {"bump": 100}) for i in range(6)]
    assert run_tasks(tasks, workers=2) == [100 + i for i in range(6)]


# ----------------------------------------------------------------------
# Benchmark-trajectory harness + `repro bench`
# ----------------------------------------------------------------------
def test_bench_collect_write_read_compare(tmp_path):
    from repro.experiments import bench

    data = bench.collect("unit", rounds=1)
    assert set(data["benchmarks"]) == {
        "kernel",
        "switch",
        "switch_cached",
        "switch_compiled",
        "switch_fastpath",
        "switch_sharded",
    }
    assert data["host_speed"]["score"] > 0
    kern = data["benchmarks"]["kernel"]
    assert kern["events"] == bench.KERNEL_EVENTS
    assert kern["events_per_sec"] > 0
    assert data["benchmarks"]["switch"]["packets"] == bench.SWITCH_PACKETS
    assert data["benchmarks"]["switch_cached"]["packets"] == bench.SWITCH_PACKETS

    path = tmp_path / "BENCH_unit.json"
    bench.write_snapshot(data, str(path))
    loaded = bench.read_snapshot(str(path))
    assert loaded == data

    assert bench.compare(loaded, loaded) == []
    slower = {
        "benchmarks": {
            "kernel": {"wall_s_min": kern["wall_s_min"] * 2.0},
        }
    }
    problems = bench.compare(loaded, slower, max_regression=0.25)
    assert len(problems) == 1 and problems[0].startswith("kernel:")
    # Faster (or merely within threshold) passes.
    assert bench.compare(slower, loaded, max_regression=0.25) == []


def test_bench_cli_writes_snapshot_and_gates(tmp_path, capsys):
    from repro.cli import main
    from repro.experiments import bench

    out = tmp_path / "BENCH_t.json"
    assert main(["bench", "--label", "t", "--rounds", "1", "--out", str(out)]) == 0
    snapshot = bench.read_snapshot(str(out))
    assert snapshot["label"] == "t"

    # Gate against an impossible baseline: must fail with exit 1.
    impossible = dict(snapshot)
    impossible["benchmarks"] = {
        name: dict(entry, wall_s_min=entry["wall_s_min"] / 100.0)
        for name, entry in snapshot["benchmarks"].items()
    }
    base_path = tmp_path / "BENCH_base.json"
    bench.write_snapshot(impossible, str(base_path))
    out2 = tmp_path / "BENCH_t2.json"
    assert (
        main(
            [
                "bench",
                "--label",
                "t2",
                "--rounds",
                "1",
                "--out",
                str(out2),
                "--compare",
                str(base_path),
            ]
        )
        == 1
    )
    captured = capsys.readouterr().out
    assert "REGRESSIONS" in captured


def test_bench_missing_rounds_warn_vs_fail():
    from repro.experiments import bench

    current = {"benchmarks": {"kernel": {}, "switch": {}, "switch_compiled": {}}}
    old = ("old", {"benchmarks": {"kernel": {}, "switch": {}}})
    newer = ("newer", {"benchmarks": {"kernel": {}, "switch_compiled": {}}})
    # A round missing from ONE baseline is a warning...
    warnings = bench.missing_round_warnings(current, [old, newer])
    assert len(warnings) == 2
    assert "switch_compiled" in warnings[0] and "switch" in warnings[1]
    # ...but still covered by the other, so not a failure.
    assert bench.missing_round_failures(current, [old, newer]) == []
    # A round covered by NO baseline is ungated: a hard failure.
    failures = bench.missing_round_failures(current, [old])
    assert len(failures) == 1 and "switch_compiled" in failures[0]
    # No baselines at all claims no gating — nothing to fail.
    assert bench.missing_round_failures(current, []) == []


def test_bench_cli_fails_on_fully_ungated_round(tmp_path, capsys):
    from repro.cli import main
    from repro.experiments import bench

    out = tmp_path / "BENCH_cur.json"
    assert main(["bench", "--label", "cur", "--rounds", "1", "--out", str(out)]) == 0
    snapshot = bench.read_snapshot(str(out))

    # A generous baseline (10x slower) that simply lacks one round: no
    # timing regression is possible, but the missing round must still
    # turn the exit code nonzero — it is gated by nothing.
    generous = dict(snapshot)
    generous["benchmarks"] = {
        name: dict(entry, wall_s_min=entry["wall_s_min"] * 10.0)
        for name, entry in snapshot["benchmarks"].items()
        if name != "switch_sharded"
    }
    base_path = tmp_path / "BENCH_base.json"
    bench.write_snapshot(generous, str(base_path))
    out2 = tmp_path / "BENCH_cur2.json"
    code = main(
        [
            "bench",
            "--label",
            "cur2",
            "--rounds",
            "1",
            "--out",
            str(out2),
            "--compare",
            str(base_path),
        ]
    )
    captured = capsys.readouterr().out
    assert "REGRESSIONS" not in captured
    assert "UNGATED BENCHMARKS" in captured
    assert "switch_sharded" in captured
    assert code == 1
