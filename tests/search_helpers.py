"""Module-level scenario runners for the search-harness tests.

Entry points must be importable by name inside worker *processes*
(``"tests.search_helpers:landscape"``), so these live in a real module
rather than inside test functions.  They are deliberately simulation-
free: search mechanics (strategies, determinism, crash retry, objective
edge cases) are what is under test, not the simulator.
"""

from __future__ import annotations

import os
from typing import Dict


def landscape(x: float = 0.0, y: int = 0, style: str = "bowl") -> Dict[str, float]:
    """A cheap deterministic objective landscape with a known optimum.

    ``score`` peaks at 10.0 for ``(x=3, y=2)`` and falls off
    quadratically; ``cost`` is its negation so min-mode searches have a
    target too.  ``style`` exists to give searches a categorical knob.
    """
    score = 10.0 - (x - 3.0) ** 2 - (y - 2) ** 2
    if style == "ridge":
        score -= 1.0
    return {"score": score, "cost": -score, "x_seen": float(x)}


def flat(x: float = 0.0) -> Dict[str, float]:
    """Every point scores the same — exercises tie-break stability."""
    return {"score": 1.0, "x_seen": float(x)}


def nan_metric(x: float = 0.0) -> Dict[str, float]:
    """A metric that is NaN for x >= 0 (an invalid, never-winning trial)."""
    return {"score": float("nan") if x >= 0 else -x}


def sparse_metric(x: float = 0.0) -> Dict[str, float]:
    """A result that simply lacks the metric objectives usually want."""
    return {"other": x}


def crash_worker(x: float = 0.0, sentinel: str = "") -> Dict[str, float]:
    """Kill the worker process on the first trial ever run, then behave.

    ``os._exit`` bypasses the worker loop's exception handling — the
    parent sees a dead process (``WorkerCrashed``), not a trial
    traceback, which is exactly the path the search pool's respawn +
    retry logic keys on.  The sentinel file records the first attempt.
    """
    if sentinel and not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as fh:
            fh.write("first attempt\n")
        os._exit(23)
    return {"score": x}
