"""The search harness: domains, objectives, strategies, runner, reports.

Satellite guarantees under test:

* seed determinism — the same ``SearchSpec`` produces byte-identical
  ``SEARCH_*.json`` artifacts across runs (and across inline vs pooled
  execution),
* objective edge cases — a missing metric or a NaN result is a recorded
  trial error, never a winner, and ties break toward the earlier trial,
* a worker process crash mid-trial respawns the worker and retries the
  trial once,
* a search submitted through the job service is equivalent to the
  inline run (same artifact, same best-trial fingerprint),
* the host-speed-normalized bench gate and the skipped-round summary
  notes (the PR's CI satellites).
"""

import dataclasses
import json
import os

import pytest

from repro import scenarios
from repro.experiments import bench
from repro.scenarios import ScenarioSpec
from repro.search import (
    ChoiceDomain,
    ObjectiveError,
    RangeDomain,
    SearchError,
    SearchSpec,
    ascii_frontier,
    compare,
    domain_from_dict,
    evaluate,
    extract_metrics,
    leaderboard,
    make_strategy,
    parse_domain,
    read_artifact,
    run_search,
    sanitize_metrics,
    trial_fingerprint,
    write_artifact,
)
from repro.search.strategies import best_scored

#: Declared knobs of the test landscape scenario.
LANDSCAPE = "search-test/landscape"


def _register_helpers() -> None:
    scenarios.load_all()
    for name, runner, params in (
        (LANDSCAPE, "landscape", {"x": 0.0, "y": 0, "style": "bowl"}),
        ("search-test/flat", "flat", {"x": 0.0}),
        ("search-test/nan", "nan_metric", {"x": 0.0}),
        ("search-test/sparse", "sparse_metric", {"x": 0.0}),
        ("search-test/crash", "crash_worker", {"x": 0.0, "sentinel": ""}),
    ):
        if name in scenarios.names():
            continue
        scenarios.register(
            ScenarioSpec(
                name=name,
                runner=f"tests.search_helpers:{runner}",
                params=params,
            )
        )


def _landscape_spec(**overrides) -> SearchSpec:
    _register_helpers()
    fields = dict(
        scenario=LANDSCAPE,
        objective="score",
        domains={
            "x": RangeDomain(0.0, 6.0, steps=4),
            "y": RangeDomain(0, 4, steps=5, integer=True),
        },
        strategy="grid",
        budget=20,
        seed=11,
        label="t",
    )
    fields.update(overrides)
    return SearchSpec(**fields)


# ----------------------------------------------------------------------
# Domains
# ----------------------------------------------------------------------
class TestDomains:
    def test_choice_grid_sample_mutate(self):
        from repro.sim.rng import SeededRng

        domain = ChoiceDomain(values=("a", "b", "c"))
        assert domain.grid_points() == ["a", "b", "c"]
        rng = SeededRng(3, "t")
        assert domain.sample(rng) in ("a", "b", "c")
        assert domain.mutate("a", rng) in ("a", "b", "c")
        with pytest.raises(SearchError, match="at least one value"):
            ChoiceDomain(values=())

    def test_range_grid_endpoints_and_integer_dedup(self):
        linear = RangeDomain(0.0, 1.0, steps=3)
        assert linear.grid_points() == [0.0, 0.5, 1.0]
        integer = RangeDomain(1, 3, steps=5, integer=True)
        assert integer.grid_points() == [1, 2, 3]  # rounded, de-duplicated

    def test_log_range_is_log_spaced(self):
        domain = RangeDomain(1.0, 100.0, steps=3, log=True)
        points = domain.grid_points()
        assert points[0] == pytest.approx(1.0)
        assert points[1] == pytest.approx(10.0)
        assert points[2] == pytest.approx(100.0)
        with pytest.raises(SearchError, match="low > 0"):
            RangeDomain(0.0, 10.0, log=True)

    def test_range_validation(self):
        with pytest.raises(SearchError, match="low < high"):
            RangeDomain(2.0, 1.0)
        with pytest.raises(SearchError, match="steps"):
            RangeDomain(0.0, 1.0, steps=1)

    def test_mutate_stays_in_interval(self):
        from repro.sim.rng import SeededRng

        domain = RangeDomain(0.0, 1.0)
        rng = SeededRng(5, "m")
        for index in range(50):
            value = domain.mutate(0.95, rng.child(str(index)))
            assert 0.0 <= value <= 1.0

    def test_parse_domain_forms(self):
        assert parse_domain("choice:red,7,true").values == ("red", 7, True)
        ranged = parse_domain("range:1:9:5")
        assert (ranged.low, ranged.high, ranged.steps) == (1.0, 9.0, 5)
        assert not ranged.integer and not ranged.log
        assert parse_domain("irange:1:9").integer
        assert parse_domain("log:0.1:10").log
        with pytest.raises(SearchError, match="unknown kind"):
            parse_domain("banana:1:2")
        with pytest.raises(SearchError, match="lo:hi"):
            parse_domain("range:1")

    def test_domain_dict_round_trip(self):
        for domain in (
            ChoiceDomain(values=(1, "two")),
            RangeDomain(0.5, 2.0, steps=7, log=True),
            RangeDomain(1, 10, integer=True),
        ):
            assert domain_from_dict(domain.to_dict()) == domain
        with pytest.raises(SearchError, match="unknown domain kind"):
            domain_from_dict({"kind": "nope"})


# ----------------------------------------------------------------------
# SearchSpec
# ----------------------------------------------------------------------
class TestSearchSpec:
    def test_validation(self):
        with pytest.raises(SearchError, match="strategy"):
            _landscape_spec(strategy="anneal")
        with pytest.raises(SearchError, match="mode"):
            _landscape_spec(mode="uppish")
        with pytest.raises(SearchError, match="at least one parameter domain"):
            _landscape_spec(domains={})
        with pytest.raises(SearchError, match="both domains and fixed"):
            _landscape_spec(fixed={"x": 1.0})
        with pytest.raises(SearchError, match="budget"):
            _landscape_spec(budget=0)

    def test_validate_rejects_undeclared_knobs(self):
        spec = _landscape_spec(domains={"nonsense": RangeDomain(0.0, 1.0)})
        with pytest.raises(SearchError, match="undeclared knob.*nonsense"):
            spec.validate()
        _landscape_spec().validate()  # declared knobs pass

    def test_dict_round_trip_rejects_unknown_keys(self):
        spec = _landscape_spec(fixed={"style": "ridge"}, strategy="evolve")
        assert SearchSpec.from_dict(spec.to_dict()) == spec
        bad = spec.to_dict()
        bad["surprise"] = 1
        with pytest.raises(SearchError, match="unknown search spec key"):
            SearchSpec.from_dict(bad)


# ----------------------------------------------------------------------
# Objectives
# ----------------------------------------------------------------------
@dataclasses.dataclass
class _Nested:
    inner: dict


@dataclasses.dataclass
class _Result:
    fairness: float
    drops: int
    flows: list
    ok: bool
    nested: _Nested


class TestObjective:
    def test_extract_metrics_flattens(self):
        result = _Result(
            fairness=0.9,
            drops=3,
            flows=[1, 2, 5],
            ok=True,
            nested=_Nested(inner={"depth": 2.5}),
        )
        metrics = extract_metrics(result)
        assert metrics == {
            "fairness": 0.9,
            "drops": 3,
            "flows.len": 3,
            "ok": 1,
            "nested.inner.depth": 2.5,
        }
        assert extract_metrics(7.5) == {"value": 7.5}
        assert extract_metrics({"a": {"b": 1}}) == {"a.b": 1}

    def test_sanitize_replaces_non_finite(self):
        safe = sanitize_metrics(
            {"nan": float("nan"), "inf": float("inf"), "ok": 1.5}
        )
        assert safe == {"inf": "inf", "nan": "nan", "ok": 1.5}
        json.dumps(safe, allow_nan=False)  # strict-JSON clean

    def test_evaluate_expressions(self):
        metrics = {"fairness": 0.8, "drops": 10.0}
        assert evaluate("fairness", metrics) == pytest.approx(0.8)
        value = evaluate("fairness - 0.01 * drops", metrics)
        assert value == pytest.approx(0.7)
        assert evaluate("max(fairness, 0.9)", metrics) == pytest.approx(0.9)
        assert evaluate("1 if drops > 5 else 0", metrics) == 1.0

    def test_missing_metric_lists_available(self):
        with pytest.raises(ObjectiveError, match="available: drops, fairness"):
            evaluate("latency", {"fairness": 1.0, "drops": 0})

    def test_non_finite_results_are_errors(self):
        with pytest.raises(ObjectiveError, match="non-finite"):
            evaluate("score", {"score": float("nan")})
        with pytest.raises(ObjectiveError, match="division by zero"):
            evaluate("1 / drops", {"drops": 0})

    def test_whitelist_rejects_unsafe_constructs(self):
        for expression in (
            "__import__('os')",
            "metrics['x']",
            "a.b",
            "'text'",
            "[1, 2]",
            "min(x, default=1)",
        ):
            with pytest.raises(ObjectiveError):
                evaluate(expression, {"x": 1.0, "a": 2.0, "metrics": 3.0})

    def test_tie_break_prefers_earlier_trial(self):
        tied = [({"x": 1}, 5.0, 4), ({"x": 2}, 5.0, 1), ({"x": 3}, 5.0, 2)]
        assert best_scored(tied, "max")[2] == 1
        assert best_scored(tied, "min")[2] == 1
        assert best_scored([({"x": 1}, None, 0)] + tied, "max")[2] == 1


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
class TestStrategies:
    def test_grid_is_the_cartesian_product(self):
        spec = _landscape_spec(budget=50)
        batch = make_strategy(spec).ask()
        assert len(batch) == 4 * 5
        assert batch[0] == {"x": 0.0, "y": 0}
        assert len({json.dumps(p, sort_keys=True) for p in batch}) == 20

    def test_grid_truncates_to_budget(self):
        spec = _landscape_spec(budget=7)
        strategy = make_strategy(spec)
        assert len(strategy.ask()) == 7
        assert strategy.truncated
        assert strategy.ask() == []

    def test_random_and_evolve_propose_deterministically(self):
        for strategy_name in ("random", "evolve"):
            spec = _landscape_spec(
                strategy=strategy_name, budget=10, population=4, generations=2
            )
            first = make_strategy(spec)
            second = make_strategy(spec)
            while True:
                batch_a, batch_b = first.ask(), second.ask()
                assert batch_a == batch_b
                if not batch_a:
                    break
                scored = [
                    (params, float(i), i) for i, params in enumerate(batch_a)
                ]
                first.tell(scored)
                second.tell(scored)

    def test_evolve_keeps_elite_and_respects_budget(self):
        spec = _landscape_spec(
            strategy="evolve", budget=7, population=4, generations=3
        )
        strategy = make_strategy(spec)
        gen0 = strategy.ask()
        assert len(gen0) == 4
        scored = [(params, float(i), i) for i, params in enumerate(gen0)]
        strategy.tell(scored)
        gen1 = strategy.ask()
        assert len(gen1) == 3  # budget 7 caps the second generation
        assert gen1[0] == gen0[-1]  # elitism: best-so-far survives verbatim
        strategy.tell([(p, 0.0, i + 4) for i, p in enumerate(gen1)])
        assert strategy.ask() == []
        assert strategy.truncated


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class TestRunSearch:
    def test_artifacts_are_byte_identical_across_runs(self, tmp_path):
        for strategy_name in ("grid", "random", "evolve"):
            spec = _landscape_spec(
                strategy=strategy_name, budget=8, population=4, generations=2
            )
            paths = []
            for attempt in ("a", "b"):
                data = run_search(spec, workers=0, host=False)
                path = str(tmp_path / f"SEARCH_{strategy_name}_{attempt}.json")
                write_artifact(data, path)
                paths.append(path)
            with open(paths[0], "rb") as fa, open(paths[1], "rb") as fb:
                assert fa.read() == fb.read(), strategy_name

    def test_pool_matches_inline_exactly(self):
        spec = _landscape_spec(strategy="random", budget=6)
        pooled = run_search(spec, workers=2, host=False)
        inline = run_search(spec, workers=0, host=False)
        assert pooled == inline

    def test_grid_finds_the_known_optimum(self):
        spec = _landscape_spec(budget=50)
        data = run_search(spec, workers=0, host=False)
        assert data["best"]["params"] == {"x": 2.0, "y": 2}
        assert data["best"]["objective"] == pytest.approx(9.0)
        assert data["best"]["error"] is None
        indices = [point["index"] for point in data["frontier"]]
        assert indices == sorted(indices)

    def test_evolve_improves_on_generation_zero(self):
        spec = _landscape_spec(
            strategy="evolve", budget=40, population=8, generations=5, seed=3
        )
        data = run_search(spec, workers=0, host=False)
        gen0_best = max(
            t["objective"] for t in data["trials"] if t["generation"] == 0
        )
        assert data["best"]["objective"] >= gen0_best

    def test_min_mode_targets_the_valley(self):
        spec = _landscape_spec(objective="cost", mode="min", budget=50)
        data = run_search(spec, workers=0, host=False)
        assert data["best"]["params"] == {"x": 2.0, "y": 2}
        assert data["best"]["objective"] == pytest.approx(-9.0)

    def test_flat_landscape_ties_break_to_first_trial(self):
        _register_helpers()
        spec = SearchSpec(
            scenario="search-test/flat",
            objective="score",
            domains={"x": RangeDomain(0.0, 1.0, steps=4)},
            budget=4,
        )
        data = run_search(spec, workers=0, host=False)
        assert data["best"]["index"] == 0
        assert len(data["frontier"]) == 1

    def test_nan_and_missing_metrics_are_trial_errors(self):
        _register_helpers()
        nan_spec = SearchSpec(
            scenario="search-test/nan",
            objective="score",
            domains={"x": RangeDomain(-2.0, 2.0, steps=3)},
            budget=3,
        )
        data = run_search(nan_spec, workers=0, host=False)
        errors = [t for t in data["trials"] if t["error"]]
        assert len(errors) == 2  # x = 0 and x = 2 produce NaN
        assert all("non-finite" in t["error"] for t in errors)
        assert all(t["metrics"]["score"] == "nan" for t in errors)
        assert data["best"]["params"] == {"x": -2.0}

        sparse_spec = SearchSpec(
            scenario="search-test/sparse",
            objective="score",
            domains={"x": RangeDomain(0.0, 1.0, steps=2)},
            budget=2,
        )
        data = run_search(sparse_spec, workers=0, host=False)
        assert data["best"] is None
        assert data["frontier"] == []
        assert all("no metric 'score'" in t["error"] for t in data["trials"])

    def test_worker_crash_respawns_and_retries(self, tmp_path):
        _register_helpers()
        sentinel = str(tmp_path / "crash.sentinel")
        spec = SearchSpec(
            scenario="search-test/crash",
            objective="score",
            domains={"x": RangeDomain(0.0, 3.0, steps=4)},
            fixed={"sentinel": sentinel},
            budget=4,
        )
        data = run_search(spec, workers=2, host=True)
        assert os.path.exists(sentinel)
        assert data["host"]["crash_retries"] >= 1
        assert all(t["error"] is None for t in data["trials"])
        assert data["best"]["objective"] == pytest.approx(3.0)

    def test_artifact_io_round_trip_and_schema_check(self, tmp_path):
        spec = _landscape_spec(budget=4)
        data = run_search(spec, workers=0, host=True)
        assert set(data["host"]) == {
            "host_speed",
            "wall_s_total",
            "wall_s_trials",
            "fresh_builds",
            "forked",
            "crash_retries",
            "workers",
        }
        path = str(tmp_path / "SEARCH_t.json")
        write_artifact(data, path)
        assert read_artifact(path) == data
        bad = str(tmp_path / "bad.json")
        with open(bad, "w", encoding="utf-8") as fh:
            json.dump({"schema": 9}, fh)
        with pytest.raises(SearchError, match="not a schema-1 search artifact"):
            read_artifact(bad)

    def test_fingerprint_is_stable_and_param_sensitive(self):
        fp = trial_fingerprint("s", {"a": 1}, {"m": 2.0})
        assert fp == trial_fingerprint("s", {"a": 1}, {"m": 2.0})
        assert fp != trial_fingerprint("s", {"a": 2}, {"m": 2.0})


# ----------------------------------------------------------------------
# Service submission
# ----------------------------------------------------------------------
class TestServiceSearch:
    def test_service_submitted_search_matches_inline(self):
        from repro.serve.client import submit_inline

        spec = _landscape_spec(strategy="evolve", budget=8, population=4,
                               generations=2)
        inline = run_search(spec, workers=0, host=False)
        record = submit_inline("search/run", {"search": spec.to_dict()})
        assert record["state"] == "done"
        artifact = record["result"]["value"]
        assert artifact == inline
        assert (
            artifact["best"]["fingerprint"] == inline["best"]["fingerprint"]
        )


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
class TestReports:
    def test_leaderboard_ranks_and_flags_failures(self):
        spec = _landscape_spec(budget=6)
        data = run_search(spec, workers=0, host=False)
        lines = leaderboard(data, top=3)
        assert "rank" in lines[1]
        assert len(lines) >= 5
        first = lines[2]
        assert first.lstrip().startswith("1")

    def test_ascii_frontier_shapes(self):
        spec = _landscape_spec(budget=12)
        data = run_search(spec, workers=0, host=False)
        chart = ascii_frontier(data, width=20, height=4)
        assert any("#" in line for line in chart)
        assert "trial 0 .." in chart[-1]
        empty = {"trials": [], "frontier": []}
        assert ascii_frontier(empty) == [
            "(no successful trials; nothing to chart)"
        ]

    def test_compare_detects_mode_aware_regressions(self):
        spec = _landscape_spec(budget=20)
        good = run_search(spec, workers=0, host=False)
        worse_spec = _landscape_spec(
            budget=4, domains={"x": RangeDomain(4.5, 6.0, steps=2),
                               "y": RangeDomain(0, 4, steps=2, integer=True)}
        )
        worse = run_search(worse_spec, workers=0, host=False)
        lines, problems = compare(good, worse, max_regression=0.05)
        assert problems and "regressed" in problems[0]
        lines, problems = compare(worse, good, max_regression=0.0)
        assert not problems  # improvements never gate
        assert any("best objective" in line for line in lines)

    def test_compare_refuses_mismatched_searches(self):
        a = run_search(_landscape_spec(budget=2), workers=0, host=False)
        b = run_search(
            _landscape_spec(budget=2, objective="cost", mode="min"),
            workers=0,
            host=False,
        )
        _lines, problems = compare(a, b)
        assert any("disagree on objective" in p for p in problems)

    def test_search_stats_rollup(self):
        from repro.obs import SearchStats

        spec = _landscape_spec(budget=4)
        data = run_search(spec, workers=0, host=True)
        stats = SearchStats.from_artifact(data)
        assert stats.trials == 4 and stats.failed == 0
        assert "trials: 4" in stats.summary_rows()[0]
        assert stats.as_dict()["crash_retries"] == 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestSearchCli:
    def test_cli_run_report_compare(self, tmp_path, capsys):
        from repro.cli import main

        _register_helpers()
        out_a = str(tmp_path / "SEARCH_a.json")
        out_b = str(tmp_path / "SEARCH_b.json")
        argv = [
            "search", "--scenario", LANDSCAPE, "--objective", "score",
            "--domain", "x=range:0:6:4", "--domain", "y=irange:0:4:5",
            "--strategy", "grid", "--budget", "30", "--label", "cli",
            "--omit-host", "--workers", "0",
        ]
        assert main(argv + ["--out", out_a]) == 0
        assert main(argv + ["--out", out_b]) == 0
        with open(out_a, "rb") as fa, open(out_b, "rb") as fb:
            assert fa.read() == fb.read()
        assert main(["search", "--report", out_a, "--top", "3"]) == 0
        assert main(["search", "--compare", out_a, out_b]) == 0
        capsys.readouterr()

    def test_cli_rejects_bad_specs(self, capsys):
        from repro.cli import main

        _register_helpers()
        code = main(
            [
                "search", "--scenario", LANDSCAPE, "--objective", "score",
                "--domain", "zz=range:0:1",
            ]
        )
        assert code == 2
        assert "undeclared knob" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Bench gate satellites (host normalization + skipped rounds)
# ----------------------------------------------------------------------
def _snapshot(label, walls, score=None):
    data = {
        "schema": 1,
        "label": label,
        "python": "3.12.0",
        "scheduler": "heap",
        "benchmarks": {
            name: {
                "rounds": 1,
                "wall_s_min": wall,
                "wall_s_mean": wall,
                "wall_s_all": [wall],
                "events": 100,
                "events_per_sec": 100 / wall,
            }
            for name, wall in walls.items()
        },
    }
    if score is not None:
        data["host_speed"] = {
            "iters": 1,
            "rounds": 3,
            "wall_s_min": 1.0,
            "score": score,
        }
    return data


class TestBenchGateSatellites:
    def test_host_normalized_gate_forgives_slow_hosts(self):
        baseline = _snapshot("seed", {"kernel": 1.0}, score=1000.0)
        current = _snapshot("ci", {"kernel": 1.4}, score=700.0)
        raw = bench.compare(baseline, current, max_regression=0.25)
        assert raw and "1.40x" in raw[0]
        normalized = bench.compare(
            baseline, current, max_regression=0.25, host_normalize=True
        )
        assert normalized == []  # 1.4 s x (700/1000) = 0.98 s vs 1.0 s

    def test_host_normalized_gate_still_catches_code_regressions(self):
        baseline = _snapshot("seed", {"kernel": 1.0}, score=1000.0)
        current = _snapshot("ci", {"kernel": 1.4}, score=1000.0)
        problems = bench.compare(
            baseline, current, max_regression=0.25, host_normalize=True
        )
        assert problems and "host-normalized" in problems[0]

    def test_normalize_without_scores_falls_back_to_raw(self):
        baseline = _snapshot("seed", {"kernel": 1.0})
        current = _snapshot("ci", {"kernel": 1.4})
        problems = bench.compare(
            baseline, current, max_regression=0.25, host_normalize=True
        )
        assert problems and "host-normalized" not in problems[0]

    def test_delta_markdown_shows_raw_and_normalized(self):
        baseline = _snapshot("seed", {"kernel": 1.0}, score=1000.0)
        current = _snapshot("ci", {"kernel": 1.4}, score=700.0)
        table = bench.delta_markdown(
            current, [("seed", baseline)], max_regression=0.25, normalize=True
        )
        row = next(line for line in table if line.startswith("| kernel"))
        assert "+40.0% / -2.0%" in row
        assert "⚠" not in row  # the normalized delta is within the gate
        assert any("raw / host-speed-normalized" in line for line in table)

    def test_skipped_round_notes_list_baseline_only_rounds(self):
        baseline = _snapshot("seed", {"kernel": 1.0, "legacy": 2.0})
        current = _snapshot("ci", {"kernel": 1.0})
        notes = bench.skipped_round_notes(current, [("seed", baseline)])
        assert len(notes) == 1 and "legacy" in notes[0]
        table = bench.delta_markdown(current, [("seed", baseline)])
        assert any("legacy" in line and "absent" in line for line in table)
        assert bench.skipped_round_notes(baseline, [("ci", current)]) != notes
