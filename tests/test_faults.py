"""Tests for the seeded fault-injection subsystem (repro.faults)."""

import json

import pytest

from repro.faults.chaos import (
    APP_NAMES,
    PLAN_NAMES,
    run_cell,
    run_grid,
    summary_rows,
    violation_count,
)
from repro.faults.injector import Degradation, FaultInjector, _reinstall_routes
from repro.faults.monitors import (
    FlowCacheCoherenceMonitor,
    PacketConservationMonitor,
    ReconvergenceMonitor,
)
from repro.faults.plan import BUILTIN_PLANS, FaultPlan, FaultSpec, get_plan
from repro.faults.scenarios import SCENARIOS, build_scenario
from repro.obs.faultlog import FaultLog
from repro.sim.rng import SeededRng


class TestFaultPlan:
    def test_builtin_plans_validate(self):
        for name in BUILTIN_PLANS:
            plan = get_plan(name)
            assert plan.name == name
            assert plan.specs
            assert set(plan.kinds()) <= {
                "link_flap",
                "link_degrade",
                "switch_stall",
                "switch_crash",
                "control_churn",
                "buffer_burst",
            }

    def test_unknown_plan_raises(self):
        with pytest.raises(ValueError):
            get_plan("nosuchplan")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="volcano")
        with pytest.raises(ValueError):
            FaultSpec(kind="link_flap", start_frac=0.8, end_frac=0.2)
        with pytest.raises(ValueError):
            FaultSpec(kind="link_flap", flaps=0)
        with pytest.raises(ValueError):
            FaultSpec(kind="link_degrade", loss=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(kind="link_degrade", loss=0.7, corrupt=0.5)

    def test_window_and_checkpoint_placement(self):
        spec = FaultSpec(kind="switch_crash", start_frac=0.4, end_frac=0.8)
        start, end = spec.window_ps(1_000_000)
        assert (start, end) == (400_000, 800_000)
        assert spec.checkpoint_ps(1_000_000) == 200_000  # default start/2
        pinned = FaultSpec(
            kind="switch_crash", start_frac=0.4, end_frac=0.8, checkpoint_frac=0.1
        )
        assert pinned.checkpoint_ps(1_000_000) == 100_000

    def test_plan_is_immutable(self):
        plan = get_plan("linkflap")
        with pytest.raises(AttributeError):
            plan.name = "other"
        assert isinstance(plan, FaultPlan)


class TestDegradation:
    def test_deterministic_draws(self):
        a = Degradation(SeededRng(5, "deg"), loss=0.3, corrupt=0.2, jitter_ps=1000)
        b = Degradation(SeededRng(5, "deg"), loss=0.3, corrupt=0.2, jitter_ps=1000)
        verdicts_a = [a.judge(None) for _ in range(200)]
        verdicts_b = [b.judge(None) for _ in range(200)]
        assert verdicts_a == verdicts_b
        assert a.judged == 200
        assert a.dropped > 0 and a.corrupted > 0
        assert a.dropped + a.corrupted < 200

    def test_zero_rates_pass_everything(self):
        deg = Degradation(SeededRng(1, "deg"), loss=0.0, corrupt=0.0, jitter_ps=0)
        assert all(deg.judge(None) == ("ok", 0) for _ in range(50))
        assert deg.dropped == 0 and deg.corrupted == 0 and deg.delay_added_ps == 0


class TestFaultLog:
    def test_record_and_summaries(self):
        log = FaultLog()
        assert log.count() == 0
        assert log.last_time_ps() == -1
        log.record(100, "p", "link_flap", "link_down", "l0")
        log.record(300, "p", "control_churn", "churn_storm", "control")
        assert log.count() == 2
        assert log.last_time_ps() == 300
        assert log.kinds() == ["control_churn", "link_flap"]
        assert len(log.summary_rows()) >= 2


class TestFaultInjector:
    def _run(self, plan_name, app="frr", seed=11):
        plan = get_plan(plan_name)
        scenario = build_scenario(app, seed, flow_cache=True)
        log = FaultLog()
        injector = FaultInjector(
            scenario, plan, SeededRng(seed, f"t/{plan_name}"), log=log
        )
        injector.arm()
        scenario.network.run(until_ps=scenario.duration_ps)
        return scenario, injector, log

    def test_arm_twice_raises(self):
        plan = get_plan("linkflap")
        scenario = build_scenario("frr", 1, flow_cache=True)
        injector = FaultInjector(scenario, plan, SeededRng(1, "t"))
        injector.arm()
        with pytest.raises(RuntimeError):
            injector.arm()

    def test_same_seed_same_fault_log(self):
        _, _, log_a = self._run("storm", seed=13)
        _, _, log_b = self._run("storm", seed=13)
        assert log_a.records == log_b.records
        assert log_a.count() > 0

    def test_stall_drops_ingress_and_suppresses_timers(self):
        scenario, _, log = self._run("stall", app="liveness")
        switch = scenario.resolve_switch("")
        assert switch.stalled is False  # unstalled by the end of the window
        assert switch.stalled_rx_drops > 0 or switch.stalled_timer_misses > 0
        assert [r["action"] for r in log.records if r["kind"] == "switch_stall"] == [
            "stall",
            "unstall",
        ]

    def test_crash_restores_checkpointed_state(self):
        scenario, injector, log = self._run("crash")
        actions = [r["action"] for r in log.records if r["kind"] == "switch_crash"]
        assert actions == ["checkpoint", "crash", "restore"]
        switch = scenario.resolve_switch("")
        assert switch.stalled is False
        assert injector._snapshots  # checkpoint was taken

    def test_restore_without_checkpoint_raises(self):
        plan = get_plan("crash")
        scenario = build_scenario("frr", 2, flow_cache=True)
        injector = FaultInjector(scenario, plan, SeededRng(2, "t"))
        switch = scenario.resolve_switch("")
        with pytest.raises(RuntimeError):
            injector._restore(0, switch)

    def test_churn_bumps_generations_and_invalidates(self):
        scenario, _, log = self._run("churn")
        assert scenario.control.table_updates > 0
        coherence = FlowCacheCoherenceMonitor(scenario.caches())
        assert coherence.check(churned=True) == []
        totals = coherence.totals()
        assert totals["invalidations"] > 0

    def test_reinstall_routes_preserves_values(self):
        scenario = build_scenario("frr", 3, flow_cache=True)
        _name, program = scenario.churn_targets[0]
        before = dict(program.routes.items())
        _reinstall_routes(program)
        assert dict(program.routes.items()) == before

    def test_degrade_keeps_conservation_exact(self):
        scenario, injector, _ = self._run("linkdegrade")
        assert PacketConservationMonitor(scenario.network).check() == []
        degradation = injector.degradations[0]
        assert degradation.judged > 0
        assert degradation.dropped + degradation.corrupted > 0


class TestMonitors:
    def test_reconvergence_math(self):
        scenario = build_scenario("frr", 4, flow_cache=True)
        monitor = ReconvergenceMonitor(scenario.network.sim, scenario.sink)
        monitor.arrivals[:] = [100, 250, 900]
        assert monitor.reconvergence_ps(200) == 50
        assert monitor.reconvergence_ps(901) is None
        assert monitor.reconvergence_ps(-1) is None
        assert monitor.max_gap_ps() == 650

    def test_coherence_monitor_empty_caches(self):
        monitor = FlowCacheCoherenceMonitor([])
        assert monitor.check(churned=True) == []


class TestScenarios:
    @pytest.mark.parametrize("app", sorted(SCENARIOS))
    def test_builders_run_clean(self, app):
        scenario = build_scenario(app, 6, flow_cache=True)
        scenario.network.run(until_ps=scenario.duration_ps)
        assert PacketConservationMonitor(scenario.network).check() == []
        fingerprint = scenario.fingerprint([])
        assert fingerprint["delivered"] == 0
        assert "switches_crc" in fingerprint

    def test_resolvers(self):
        scenario = build_scenario("frr", 6, flow_cache=True)
        assert scenario.resolve_link("").name
        assert scenario.resolve_switch("").name == scenario.default_switch
        a_name, b_name = scenario.default_link
        named = scenario.resolve_link(f"{a_name}-{b_name}")
        assert named is scenario.resolve_link("")

    def test_flow_cache_toggle(self):
        cached = build_scenario("frr", 6, flow_cache=True)
        plain = build_scenario("frr", 6, flow_cache=False)
        assert cached.caches()
        assert not plain.caches()


class TestChaosGrid:
    def test_cell_is_clean_and_byte_stable(self):
        a = run_cell("linkflap", "frr", 7)
        b = run_cell("linkflap", "frr", 7)
        assert a["ok"] is True
        assert a["violations"] == []
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_grid_writes_jsonl(self, tmp_path):
        out = tmp_path / "verdicts.jsonl"
        records = run_grid(["stall"], ["liveness"], [9], out_path=str(out))
        assert len(records) == 1
        lines = out.read_text().splitlines()
        assert json.loads(lines[0]) == records[0]
        assert violation_count(records) == 0
        rows = summary_rows(records)
        assert any("stall" in row for row in rows)

    def test_axes_are_canonical(self):
        assert PLAN_NAMES == tuple(sorted(BUILTIN_PLANS))
        assert APP_NAMES == tuple(sorted(SCENARIOS))
