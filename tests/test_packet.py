"""Unit tests for the Packet container."""

import pytest

from repro.packet.builder import make_tcp_packet, make_udp_packet
from repro.packet.headers import Ethernet, Ipv4, Tcp, Udp
from repro.packet.packet import FiveTuple, Packet


def test_lengths_account_headers_and_payload():
    pkt = Packet(headers=[Ethernet(), Ipv4()], payload_len=100)
    assert pkt.header_len == 34
    assert pkt.total_len == 134
    assert pkt.wire_len == 154  # + preamble/IFG


def test_negative_payload_rejected():
    with pytest.raises(ValueError):
        Packet(payload_len=-1)


def test_packet_ids_are_unique():
    a, b = Packet(), Packet()
    assert a.pkt_id != b.pkt_id


def test_get_require_has():
    pkt = make_tcp_packet(1, 2)
    assert pkt.has(Tcp)
    assert not pkt.has(Udp)
    assert pkt.get(Udp) is None
    assert pkt.require(Tcp) is pkt.get(Tcp)
    with pytest.raises(KeyError):
        pkt.require(Udp)


def test_push_prepends_pop_removes():
    pkt = Packet(headers=[Ipv4()])
    pkt.push(Ethernet())
    assert type(pkt.headers[0]) is Ethernet
    popped = pkt.pop(Ethernet)
    assert type(popped) is Ethernet
    assert not pkt.has(Ethernet)
    with pytest.raises(KeyError):
        pkt.pop(Ethernet)


def test_five_tuple_tcp():
    pkt = make_tcp_packet(0x0A000001, 0x0A000002, sport=1234, dport=80)
    ftuple = pkt.five_tuple()
    assert ftuple == FiveTuple(0x0A000001, 0x0A000002, 6, 1234, 80)


def test_five_tuple_udp_and_none():
    pkt = make_udp_packet(1, 2, sport=10, dport=20)
    assert pkt.five_tuple().proto == 17
    assert Packet(headers=[Ethernet()]).five_tuple() is None


def test_five_tuple_bytes_encoding():
    ftuple = FiveTuple(0x01020304, 0x05060708, 6, 0x0A0B, 0x0C0D)
    assert ftuple.as_bytes() == bytes(
        [1, 2, 3, 4, 5, 6, 7, 8, 6, 0x0A, 0x0B, 0x0C, 0x0D]
    )


def test_clone_is_deep_and_fresh_id():
    pkt = make_tcp_packet(1, 2)
    pkt.meta["key"] = 1
    dup = pkt.clone()
    assert dup.pkt_id != pkt.pkt_id
    assert dup.meta == pkt.meta
    dup.require(Ipv4).set(ttl=1)
    assert pkt.require(Ipv4).ttl != 1
    dup.meta["key"] = 2
    assert pkt.meta["key"] == 1


def test_minimum_frame_padding():
    pkt = make_udp_packet(1, 2, payload_len=0)
    assert pkt.total_len == 64  # padded to the Ethernet minimum
    big = make_udp_packet(1, 2, payload_len=1400)
    assert big.total_len == 14 + 20 + 8 + 1400


def test_trace_notes():
    pkt = Packet()
    pkt.note("hello")
    assert pkt.trace == ["hello"]


def test_slots_layout_has_no_dict():
    # The hot-path layout contract: every field lives in a slot, so
    # attribute access never falls through to a per-instance __dict__
    # (and typos fail loudly instead of creating stray attributes).
    pkt = make_tcp_packet(1, 2)
    assert not hasattr(pkt, "__dict__")
    assert not hasattr(pkt.headers[0], "__dict__")
    with pytest.raises(AttributeError):
        pkt.no_such_field = 1
    with pytest.raises(AttributeError):
        pkt.headers[0].no_such_field = 1


def test_packet_pickle_round_trip():
    import pickle

    pkt = make_tcp_packet(0x0A00_0001, 0x0A00_0002, payload_len=321)
    pkt.meta["l3_nh"] = 7
    pkt.priority = 3
    pkt.queue_id = 2
    pkt.ingress_port = 1
    pkt.note("checkpointed")
    clone = pickle.loads(pickle.dumps(pkt))
    assert clone is not pkt
    assert clone.__getstate__() == pkt.__getstate__()
    assert [
        (type(h).__name__, h.field_values()) for h in clone.headers
    ] == [(type(h).__name__, h.field_values()) for h in pkt.headers]
    assert clone.total_len == pkt.total_len
    assert clone.five_tuple() == pkt.five_tuple()
    # The restored packet is live, not a frozen snapshot.
    clone.headers[1].set(ttl=clone.headers[1].ttl - 1)
    assert clone.headers[1].ttl == pkt.headers[1].ttl - 1


def test_header_pickle_round_trip():
    import pickle

    ip = Ipv4(src=1, dst=2, ttl=9, dscp=5, protocol=17)
    clone = pickle.loads(pickle.dumps(ip))
    assert clone.field_values() == ip.field_values()
    assert type(clone) is Ipv4
    clone.set(ttl=8)
    assert ip.ttl == 9  # copies are independent
