"""Unit tests for the data-plane hash functions."""

import pytest
from hypothesis import given, strategies as st

from repro.packet.builder import make_udp_packet
from repro.packet.hashing import (
    crc16,
    crc32,
    flow_hash,
    fold_hash,
    ip_pair_hash,
    tuple_hash,
)
from repro.packet.packet import FiveTuple, Packet


def test_crc32_known_value():
    # The classic CRC-32 check value for "123456789".
    assert crc32(b"123456789") == 0xCBF43926


def test_crc16_known_value():
    # CRC-16/X-25 (reflected CCITT with inverted in/out) of "123456789".
    assert crc16(b"123456789") == 0x906E


def test_crc_is_deterministic_and_seed_sensitive():
    assert crc32(b"abc") == crc32(b"abc")
    assert crc32(b"abc") != crc32(b"abd")
    assert crc32(b"abc", seed=0) != crc32(b"abc")


def test_fold_hash_range():
    for value in (0, 1, 12345, 2**32 - 1):
        assert 0 <= fold_hash(value, 7) < 7
    with pytest.raises(ValueError):
        fold_hash(1, 0)


def test_flow_hash_same_flow_same_bucket():
    a = make_udp_packet(0x0A000001, 0x0A000002, sport=5, dport=6)
    b = make_udp_packet(0x0A000001, 0x0A000002, sport=5, dport=6, payload_len=900)
    assert flow_hash(a, 1024) == flow_hash(b, 1024)


def test_flow_hash_none_for_non_ip():
    from repro.packet.headers import Ethernet

    assert flow_hash(Packet(headers=[Ethernet()]), 64) is None


def test_salt_selects_independent_functions():
    ftuple = FiveTuple(1, 2, 17, 3, 4)
    buckets = 1 << 16
    values = {tuple_hash(ftuple, buckets, salt=s) for s in range(8)}
    assert len(values) >= 7  # collisions possible but rare


def test_ip_pair_hash_ignores_ports():
    assert ip_pair_hash(1, 2, 64) == ip_pair_hash(1, 2, 64)
    # Direction matters (src++dst concatenation).
    assert ip_pair_hash(1, 2, 1 << 20) != ip_pair_hash(2, 1, 1 << 20)


@given(st.binary(max_size=64), st.integers(1, 4096))
def test_fold_hash_always_in_range_property(data, buckets):
    assert 0 <= fold_hash(crc32(data), buckets) < buckets


@given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
def test_ip_pair_hash_distributes(src, dst):
    index = ip_pair_hash(src, dst, 1024)
    assert 0 <= index < 1024
