"""Unit and property tests for protocol headers."""

import pytest
from hypothesis import given, strategies as st

from repro.packet.headers import (
    Ethernet,
    Header,
    HeaderField,
    HulaProbe,
    IntReport,
    Ipv4,
    KeyValue,
    LivenessEcho,
    Tcp,
    Udp,
    ipv4_checksum,
)

ALL_HEADERS = [Ethernet, Ipv4, Tcp, Udp, HulaProbe, LivenessEcho, IntReport, KeyValue]


@pytest.mark.parametrize("cls", ALL_HEADERS)
def test_widths_are_byte_aligned(cls):
    assert cls.width_bits() % 8 == 0
    assert cls.width_bytes() == cls.width_bits() // 8


def test_known_header_sizes():
    assert Ethernet.width_bytes() == 14
    assert Ipv4.width_bytes() == 20
    assert Tcp.width_bytes() == 20
    assert Udp.width_bytes() == 8


def test_defaults_applied():
    ip = Ipv4()
    assert ip.version == 4
    assert ip.ihl == 5
    assert ip.ttl == 64
    assert Tcp().data_offset == 5


def test_pack_unpack_roundtrip_simple():
    eth = Ethernet(dst=0x0200_0000_0001, src=0x0200_0000_0002, ethertype=0x0800)
    assert Ethernet.unpack(eth.pack()) == eth


def test_pack_is_network_order():
    eth = Ethernet(dst=0x0102_0304_0506, src=0, ethertype=0x0800)
    data = eth.pack()
    assert data[:6] == bytes([1, 2, 3, 4, 5, 6])
    assert data[12:14] == b"\x08\x00"


def test_unknown_field_rejected():
    with pytest.raises(TypeError):
        Ethernet(bogus=1)


def test_out_of_range_value_rejected():
    with pytest.raises(ValueError):
        Ethernet(ethertype=1 << 16)
    with pytest.raises(ValueError):
        Ipv4(ttl=-1)


def test_non_int_value_rejected():
    with pytest.raises(TypeError):
        Ethernet(ethertype="0x800")


def test_set_mutates_in_place_with_checks():
    ip = Ipv4(ttl=64)
    ip.set(ttl=63)
    assert ip.ttl == 63
    with pytest.raises(ValueError):
        ip.set(ttl=300)
    with pytest.raises(TypeError):
        ip.set(nonexistent=1)


def test_copy_is_independent():
    ip = Ipv4(src=1, dst=2)
    dup = ip.copy()
    dup.set(src=99)
    assert ip.src == 1


def test_equality_and_hash():
    a = Udp(sport=1, dport=2, length=8)
    b = Udp(sport=1, dport=2, length=8)
    c = Udp(sport=1, dport=3, length=8)
    assert a == b
    assert hash(a) == hash(b)
    assert a != c
    assert a != "not a header"  # NotImplemented path


def test_unpack_needs_enough_bytes():
    with pytest.raises(ValueError):
        Ipv4.unpack(b"\x45\x00")


def test_ipv4_checksum_golden():
    # RFC 1071 worked example style: verify a checksum then verify that
    # packing with it yields a header whose recomputation matches.
    ip = Ipv4(src=0xC0A80001, dst=0xC0A800C7, total_len=60, ttl=64, protocol=17,
              identification=0x1C46)
    checksum = ipv4_checksum(ip)
    ip.set(checksum=checksum)
    assert ipv4_checksum(ip) == checksum
    # Flipping a field invalidates it.
    ip.set(ttl=63)
    assert ipv4_checksum(ip) != checksum


def test_field_declaration_validation():
    with pytest.raises(ValueError):
        HeaderField("bad", 0)


def test_misaligned_header_rejected_on_byte_ops():
    class Odd(Header):
        NAME = "odd"
        FIELDS = (HeaderField("x", 3),)

    with pytest.raises(ValueError):
        Odd(x=1).width_bytes()


# ----------------------------------------------------------------------
# Property: pack/unpack is the identity for every header type
# ----------------------------------------------------------------------
@st.composite
def header_instances(draw):
    cls = draw(st.sampled_from(ALL_HEADERS))
    values = {
        field.name: draw(st.integers(0, (1 << field.width_bits) - 1))
        for field in cls.FIELDS
    }
    return cls(**values)


@given(header_instances())
def test_roundtrip_property(header):
    assert type(header).unpack(header.pack()) == header


@given(header_instances())
def test_packed_length_matches_declared(header):
    assert len(header.pack()) == header.width_bytes()
