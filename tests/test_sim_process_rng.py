"""Unit tests for periodic processes and seeded randomness."""

import pytest

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.rng import SeededRng


class TestPeriodicProcess:
    def test_fires_every_period(self):
        sim = Simulator()
        fires = []
        process = PeriodicProcess(sim, 100, lambda: fires.append(sim.now_ps))
        process.start()
        sim.run(until_ps=550)
        assert fires == [100, 200, 300, 400, 500]
        assert process.fire_count == 5

    def test_start_with_offset(self):
        sim = Simulator()
        fires = []
        process = PeriodicProcess(sim, 100, lambda: fires.append(sim.now_ps))
        process.start(offset_ps=10)
        sim.run(until_ps=250)
        assert fires == [10, 110, 210]

    def test_stop_halts_firing(self):
        sim = Simulator()
        fires = []
        process = PeriodicProcess(sim, 100, lambda: fires.append(sim.now_ps))
        process.start()
        sim.call_at(250, process.stop)
        sim.run(until_ps=1_000)
        assert fires == [100, 200]
        assert not process.running

    def test_double_start_raises(self):
        sim = Simulator()
        process = PeriodicProcess(sim, 100, lambda: None)
        process.start()
        with pytest.raises(SimulationError):
            process.start()

    def test_set_period_applies_from_next_fire(self):
        sim = Simulator()
        fires = []
        process = PeriodicProcess(sim, 100, lambda: fires.append(sim.now_ps))
        process.start()
        sim.call_at(150, process.set_period, 200)
        sim.run(until_ps=700)
        # 100, 200 (already scheduled at old period), then every 200.
        assert fires == [100, 200, 400, 600]

    def test_invalid_period_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicProcess(sim, 0, lambda: None)
        process = PeriodicProcess(sim, 10, lambda: None)
        with pytest.raises(ValueError):
            process.set_period(-5)

    def test_stop_then_restart(self):
        sim = Simulator()
        fires = []
        process = PeriodicProcess(sim, 100, lambda: fires.append(sim.now_ps))
        process.start()
        sim.run(until_ps=150)
        process.stop()
        process.start()
        sim.run(until_ps=300)
        assert fires == [100, 250]


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(42)
        b = SeededRng(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = SeededRng(1)
        b = SeededRng(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_children_are_independent_of_sibling_consumption(self):
        root1 = SeededRng(7)
        left_values = [root1.child("left").random()]
        root2 = SeededRng(7)
        _ = [root2.child("right").random() for _ in range(3)]
        assert root2.child("left").random() == left_values[0]

    def test_child_names_give_distinct_streams(self):
        root = SeededRng(7)
        assert root.child("a").random() != root.child("b").random()

    def test_randint_bounds(self):
        rng = SeededRng(3)
        values = [rng.randint(2, 5) for _ in range(200)]
        assert min(values) >= 2
        assert max(values) <= 5
        assert set(values) == {2, 3, 4, 5}

    def test_zipf_skew_concentrates_head(self):
        rng = SeededRng(11)
        draws = [rng.zipf_index(100, 1.5) for _ in range(5_000)]
        head = sum(1 for d in draws if d < 5)
        tail = sum(1 for d in draws if d >= 50)
        assert head > 10 * max(1, tail)

    def test_zipf_zero_skew_is_uniformish(self):
        rng = SeededRng(11)
        draws = [rng.zipf_index(10, 0.0) for _ in range(5_000)]
        counts = [draws.count(i) for i in range(10)]
        assert min(counts) > 300  # no bucket starved

    def test_zipf_rejects_bad_n(self):
        rng = SeededRng(1)
        with pytest.raises(ValueError):
            rng.zipf_index(0, 1.0)

    def test_expovariate_mean(self):
        rng = SeededRng(5)
        samples = [rng.expovariate(2.0) for _ in range(20_000)]
        mean = sum(samples) / len(samples)
        assert abs(mean - 0.5) < 0.02
