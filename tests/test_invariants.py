"""Property-based system invariants.

Cross-cutting conservation laws that must hold under arbitrary traffic:
packets are never created or destroyed silently, buffer accounting
always balances, and the event counts agree with the datapath.
"""

from hypothesis import given, settings, strategies as st

from repro.arch.events import EventType
from repro.apps.aqm import DropTailProgram
from repro.experiments.factories import make_sume_switch
from repro.net.topology import build_linear
from repro.packet.builder import make_udp_packet
from repro.workloads.sink import PacketSink

H0_IP = 0x0A00_0001
H1_IP = 0x0A00_0002


@st.composite
def traffic_schedules(draw):
    """A list of (send time µs, payload bytes) packet injections."""
    count = draw(st.integers(1, 40))
    times = sorted(
        draw(
            st.lists(
                st.integers(1, 2_000), min_size=count, max_size=count
            )
        )
    )
    payloads = draw(
        st.lists(st.integers(0, 1_400), min_size=count, max_size=count)
    )
    return list(zip(times, payloads))


def run_schedule(schedule, queue_capacity_bytes=8 * 1024, egress_gbps=1.0):
    program = DropTailProgram()
    network = build_linear(
        make_sume_switch(queue_capacity_bytes=queue_capacity_bytes),
        switch_count=1,
    )
    program.install_route(H1_IP, 1)
    program.install_route(H0_IP, 0)
    switch = network.switches["s0"]
    switch.load_program(program)
    switch.tm.set_port_rate(1, egress_gbps)
    sink = PacketSink("h1")
    network.hosts["h1"].add_sink(sink)
    for time_us, payload in schedule:
        network.sim.call_at(
            time_us * 1_000_000,
            network.hosts["h0"].send,
            make_udp_packet(H0_IP, H1_IP, payload_len=payload),
        )
    network.run()
    return network, switch, sink


@settings(max_examples=25, deadline=None)
@given(traffic_schedules())
def test_packet_conservation(schedule):
    """sent == delivered + overflow drops, with no residue anywhere."""
    network, switch, sink = run_schedule(schedule)
    sent = len(schedule)
    assert sink.packets + switch.tm.drops_overflow == sent
    # Nothing left buffered after the run drains.
    assert switch.tm.occupancy_bytes() == 0
    # Host NICs drained too.
    assert network.hosts["h0"].sent_packets == sent


@settings(max_examples=25, deadline=None)
@given(traffic_schedules())
def test_event_counts_match_datapath(schedule):
    """Enqueue events == admissions; dequeue events == transmissions."""
    network, switch, sink = run_schedule(schedule)
    admitted = switch.tm.total_enqueued
    assert switch.events_fired[EventType.ENQUEUE] == admitted
    assert switch.events_fired[EventType.DEQUEUE] == admitted
    assert switch.events_fired[EventType.PACKET_TRANSMITTED] == admitted
    assert (
        switch.events_fired[EventType.BUFFER_OVERFLOW]
        == switch.tm.drops_overflow
    )
    # Merger conservation: everything offered was delivered (the run
    # fully drains, so nothing is left pending).
    stats = switch.merger.stats
    assert stats.piggybacked + stats.injected_events == stats.offered
    assert switch.merger.pending_count == 0


@settings(max_examples=15, deadline=None)
@given(traffic_schedules())
def test_byte_conservation(schedule):
    """Delivered bytes equal sent bytes minus dropped bytes."""
    network, switch, sink = run_schedule(schedule)
    sent_bytes = sum(max(64, payload + 42) for _t, payload in schedule)
    queue = switch.tm.ports[1].queues[0]
    assert sink.bytes == sent_bytes - queue.stats.dropped_bytes
