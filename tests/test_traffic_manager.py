"""Unit tests for the traffic manager's datapath and event hooks."""

import pytest

from repro.packet.builder import make_udp_packet
from repro.sim.kernel import Simulator
from repro.sim.units import bytes_to_time_ps
from repro.tm.traffic_manager import TrafficManager


def make_tm(sim, **kwargs):
    defaults = dict(port_count=2, queue_capacity_bytes=2_000, port_rate_gbps=10.0)
    defaults.update(kwargs)
    return TrafficManager(sim, **defaults)


def routed_pkt(port=0, payload=458, enq_meta=None, deq_meta=None):
    # 458B payload + 42B headers = 500B total, 520B on the wire.
    pkt = make_udp_packet(1, 2, payload_len=payload)
    pkt.egress_port = port
    if enq_meta:
        pkt.meta["enq_meta"] = enq_meta
    if deq_meta:
        pkt.meta["deq_meta"] = deq_meta
    return pkt


def test_enqueue_requires_egress_port():
    sim = Simulator()
    tm = make_tm(sim)
    pkt = make_udp_packet(1, 2)
    with pytest.raises(ValueError):
        tm.enqueue(pkt)


def test_packet_transits_and_reaches_egress_callback():
    sim = Simulator()
    tm = make_tm(sim)
    out = []
    tm.set_egress_callback(lambda pkt, port: out.append((pkt.pkt_id, port)))
    pkt = routed_pkt(port=1)
    assert tm.enqueue(pkt)
    sim.run()
    assert out == [(pkt.pkt_id, 1)]


def test_serialization_time_matches_wire_length():
    sim = Simulator()
    tm = make_tm(sim)
    done = []
    tm.set_egress_callback(lambda pkt, port: done.append(sim.now_ps))
    pkt = routed_pkt(payload=458)  # 500B total, 520B on wire
    tm.enqueue(pkt)
    sim.run()
    assert done == [bytes_to_time_ps(520, 10.0)]


def test_hooks_fire_in_order_with_metadata():
    sim = Simulator()
    tm = make_tm(sim)
    tm.set_egress_callback(lambda pkt, port: None)
    events = []
    tm.hooks.on_enqueue = lambda ev: events.append(("enq", ev.queue_depth_bytes))
    tm.hooks.on_dequeue = lambda ev: events.append(("deq", ev.queue_depth_bytes))
    tm.hooks.on_transmit = lambda ev: events.append(("tx", ev.time_ps))
    tm.hooks.on_underflow = lambda ev: events.append(("under", 0))
    pkt = routed_pkt(payload=458)
    tm.enqueue(pkt)
    sim.run()
    kinds = [kind for kind, _ in events]
    assert kinds == ["enq", "deq", "under", "tx"]
    assert events[0][1] == 500  # depth right after enqueue
    assert events[1][1] == 0  # drained immediately (idle port)


def test_user_metadata_propagates_to_hooks():
    sim = Simulator()
    tm = make_tm(sim)
    tm.set_egress_callback(lambda pkt, port: None)
    seen = {}
    tm.hooks.on_enqueue = lambda ev: seen.update(enq=dict(ev.user_meta))
    tm.hooks.on_dequeue = lambda ev: seen.update(deq=dict(ev.user_meta))
    pkt = routed_pkt(enq_meta={"flowID": 7, "pkt_len": 500},
                     deq_meta={"flowID": 7, "pkt_len": 500})
    tm.enqueue(pkt)
    sim.run()
    assert seen["enq"]["flowID"] == 7
    assert seen["deq"]["flowID"] == 7


def test_queue_overflow_drops_and_fires_hook():
    sim = Simulator()
    tm = make_tm(sim, queue_capacity_bytes=1_000, port_rate_gbps=0.001)
    drops = []
    tm.hooks.on_overflow = lambda ev: drops.append(ev.pkt.pkt_id)
    admitted = 0
    for _ in range(5):
        if tm.enqueue(routed_pkt(payload=458)):  # 500B each
            admitted += 1
    # Port is glacial, so queue holds: 1 transmitting + capacity-bound.
    assert tm.drops_overflow > 0
    assert len(drops) == tm.drops_overflow
    assert admitted + tm.drops_overflow == 5


def test_shared_buffer_limit_enforced_across_ports():
    sim = Simulator()
    tm = TrafficManager(
        sim,
        port_count=2,
        queue_capacity_bytes=10_000,
        buffer_capacity_bytes=1_200,
        port_rate_gbps=0.001,
    )
    # The first packet per port is dequeued immediately (buffer bytes
    # are released when serialization starts), so back up port 0 with
    # queued packets until the shared budget runs out.
    assert tm.enqueue(routed_pkt(port=0, payload=458))  # serializing
    assert tm.enqueue(routed_pkt(port=0, payload=458))  # queued (500B)
    assert tm.enqueue(routed_pkt(port=0, payload=458))  # queued (1000B)
    assert not tm.enqueue(routed_pkt(port=1, payload=458))  # 1500 > 1200


def test_disabled_port_holds_packets():
    sim = Simulator()
    tm = make_tm(sim)
    out = []
    tm.set_egress_callback(lambda pkt, port: out.append(pkt))
    tm.set_port_enabled(0, False)
    tm.enqueue(routed_pkt(port=0, payload=0))
    sim.run()
    assert out == []
    assert tm.port_depth_bytes(0) == 64
    tm.set_port_enabled(0, True)
    sim.run()
    assert len(out) == 1


def test_port_rate_change():
    sim = Simulator()
    tm = make_tm(sim)
    tm.set_port_rate(0, 1.0)
    done = []
    tm.set_egress_callback(lambda pkt, port: done.append(sim.now_ps))
    tm.enqueue(routed_pkt(payload=458))
    sim.run()
    assert done == [bytes_to_time_ps(520, 1.0)]
    with pytest.raises(ValueError):
        tm.set_port_rate(0, 0)


def test_multiple_queues_and_stats():
    sim = Simulator()
    tm = TrafficManager(sim, port_count=1, queues_per_port=2,
                        queue_capacity_bytes=10_000)
    tm.set_egress_callback(lambda pkt, port: None)
    pkt = routed_pkt(port=0)
    pkt.queue_id = 1
    tm.enqueue(pkt)
    sim.run()
    stats = tm.port_stats(0)
    assert stats["tx_packets"] == 1
    assert stats["busy_time_ps"] > 0


def test_queue_id_clamped_to_available_queues():
    sim = Simulator()
    tm = make_tm(sim)  # 1 queue per port
    pkt = routed_pkt(port=0)
    pkt.queue_id = 7
    assert tm.enqueue(pkt)


def test_invalid_port_raises():
    sim = Simulator()
    tm = make_tm(sim)
    with pytest.raises(IndexError):
        tm.queue_depth_bytes(5)
    pkt = routed_pkt(port=9)
    with pytest.raises(IndexError):
        tm.enqueue(pkt)


def test_back_to_back_transmissions_serialize():
    sim = Simulator()
    tm = make_tm(sim)
    finish_times = []
    tm.set_egress_callback(lambda pkt, port: finish_times.append(sim.now_ps))
    for _ in range(3):
        tm.enqueue(routed_pkt(payload=458))
    sim.run()
    per_pkt = bytes_to_time_ps(520, 10.0)
    assert finish_times == [per_pkt, 2 * per_pkt, 3 * per_pkt]
