"""Unit tests for links and hosts."""

import pytest

from repro.net.host import Host
from repro.net.link import Link
from repro.packet.builder import make_udp_packet
from repro.sim.kernel import Simulator
from repro.sim.units import bytes_to_time_ps


class FakeNode:
    """A minimal link endpoint for unit tests."""

    def __init__(self, name):
        self.name = name
        self.received = []
        self.link_events = []

    def receive(self, pkt, port):
        self.received.append((pkt, port))

    def set_link_status(self, port, up):
        self.link_events.append((port, up))


class TestLink:
    def make(self, latency=1_000):
        sim = Simulator()
        a, b = FakeNode("a"), FakeNode("b")
        link = Link(sim, a, 0, b, 1, latency_ps=latency)
        return sim, a, b, link

    def test_delivery_after_latency(self):
        sim, a, b, link = self.make(latency=5_000)
        pkt = make_udp_packet(1, 2)
        link.transmit_from(a, pkt)
        sim.run()
        assert b.received == [(pkt, 1)]
        assert sim.now_ps == 5_000
        assert link.delivered_packets == 1

    def test_bidirectional(self):
        sim, a, b, link = self.make()
        link.transmit_from(b, make_udp_packet(3, 4))
        sim.run()
        assert len(a.received) == 1
        assert a.received[0][1] == 0

    def test_foreign_sender_rejected(self):
        sim, a, b, link = self.make()
        with pytest.raises(ValueError):
            link.transmit_from(FakeNode("c"), make_udp_packet(1, 2))

    def test_down_link_loses_packets(self):
        sim, a, b, link = self.make()
        link.set_up(False)
        link.transmit_from(a, make_udp_packet(1, 2))
        sim.run()
        assert b.received == []
        assert link.lost_packets == 1

    def test_in_flight_packets_lost_on_failure(self):
        sim, a, b, link = self.make(latency=10_000)
        link.transmit_from(a, make_udp_packet(1, 2))
        sim.call_at(5_000, link.set_up, False)
        sim.run()
        assert b.received == []
        assert link.lost_packets == 1

    def test_status_change_notifies_endpoints(self):
        sim, a, b, link = self.make()
        link.set_up(False)
        assert a.link_events == [(0, False)]
        assert b.link_events == [(1, False)]
        link.set_up(False)  # no change, no duplicate event
        assert len(a.link_events) == 1

    def test_scheduled_fail_and_recover(self):
        sim, a, b, link = self.make()
        link.fail_at(1_000)
        link.recover_at(2_000)
        sim.run()
        assert a.link_events == [(0, False), (0, True)]
        assert link.up

    def test_other_end(self):
        sim, a, b, link = self.make()
        assert link.other_end(a) is b
        assert link.other_end(b) is a
        with pytest.raises(ValueError):
            link.other_end(FakeNode("x"))

    def test_negative_latency_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, FakeNode("a"), 0, FakeNode("b"), 0, latency_ps=-1)


class TestHost:
    def make_pair(self, nic_rate=10.0):
        sim = Simulator()
        host = Host(sim, "h", ip=0x0A000001, nic_rate_gbps=nic_rate)
        peer = FakeNode("peer")
        link = Link(sim, host, 0, peer, 0, latency_ps=1_000)
        host.attach_link(link)
        return sim, host, peer

    def test_send_serializes_then_transmits(self):
        sim, host, peer = self.make_pair()
        pkt = make_udp_packet(1, 2, payload_len=458)  # 520B wire
        assert host.send(pkt)
        sim.run()
        assert len(peer.received) == 1
        assert sim.now_ps == bytes_to_time_ps(520, 10.0) + 1_000
        assert host.sent_packets == 1

    def test_nic_is_fifo_and_serial(self):
        sim, host, peer = self.make_pair()
        first = make_udp_packet(1, 2)
        second = make_udp_packet(1, 2)
        host.send(first)
        host.send(second)
        sim.run()
        assert [p.pkt_id for p, _port in peer.received] == [
            first.pkt_id,
            second.pkt_id,
        ]

    def test_tx_queue_overflow(self):
        sim = Simulator()
        host = Host(sim, "h", ip=1, tx_queue_packets=2)
        peer = FakeNode("peer")
        link = Link(sim, host, 0, peer, 0)
        host.attach_link(link)
        results = [host.send(make_udp_packet(1, 2)) for _ in range(5)]
        # First starts transmitting immediately; two queue; rest dropped.
        assert results.count(True) == 3
        assert host.tx_drops == 2

    def test_sinks_receive(self):
        sim, host, peer = self.make_pair()
        seen = []
        host.add_sink(seen.append)
        pkt = make_udp_packet(9, 9)
        host.receive(pkt, 0)
        assert seen == [pkt]
        assert host.received_packets == 1

    def test_send_without_link_raises(self):
        sim = Simulator()
        host = Host(sim, "h", ip=1)
        with pytest.raises(RuntimeError):
            host.send(make_udp_packet(1, 2))

    def test_double_attach_raises(self):
        sim, host, peer = self.make_pair()
        with pytest.raises(RuntimeError):
            host.attach_link(object())

    def test_invalid_nic_rate(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Host(sim, "h", ip=1, nic_rate_gbps=0)
