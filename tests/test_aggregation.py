"""Unit and property tests for the Figure 3 aggregation register file."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.state.aggregation import AggregationRegisterFile


def test_figure3_scenario():
    """The exact picture from Figure 3: ADD 200 / 300 / SUB 100."""
    file = AggregationRegisterFile(size=4)
    # Queue 0 accumulated two 100B enqueues; main holds 300 from earlier.
    file.enqueue_update(0, 0, 300)
    file.drain(1)  # main[0] = 300
    file.enqueue_update(2, 0, 100)
    file.enqueue_update(3, 0, 100)
    assert file.enq_agg.register.read(0) == 200  # "0: ADD 200"
    assert file.main.register.read(0) == 300  # "0: 300"
    file.dequeue_update(4, 0, 100)
    assert file.deq_agg.register.read(0) == 100  # "0: SUB 100"
    # Idle cycle: everything folds into the main register.
    file.drain(5)
    assert file.main.register.read(0) == 400
    assert file.truth(0) == 400
    assert file.staleness(0) == 0


def test_same_cycle_enqueue_dequeue_and_read_no_conflicts():
    """§4's question answered: no multi-ported memory required."""
    file = AggregationRegisterFile(size=4, strict_ports=True)
    file.enqueue_update(0, 0, 64)
    file.drain(1)
    # Cycle 2: an enqueue on queue 0, a dequeue on queue 0, and a packet
    # read of queue 2 all in the same cycle — three different arrays.
    file.enqueue_update(2, 0, 64)
    file.dequeue_update(2, 0, 64)
    assert file.packet_read(2, 2) == 0
    report = file.port_report()
    assert all(r["conflict_cycles"] == 0 for r in report.values())


def test_packet_read_sees_stale_then_fresh():
    file = AggregationRegisterFile(size=2)
    file.enqueue_update(0, 1, 500)
    # Before the drain the main register still reads 0 (stale).
    assert file.packet_read(1, 1) == 0
    assert file.staleness(1) == 500
    file.drain(2)
    assert file.packet_read(3, 1) == 500
    assert file.max_staleness() == 0


def test_drain_applies_whole_backlog_of_one_index():
    file = AggregationRegisterFile(size=4)
    for cycle in range(5):
        file.enqueue_update(cycle, 3, 100)
    assert file.pending_indices == 1
    drained = file.drain(10)
    assert drained == 1
    assert file.main.register.read(3) == 500
    assert file.pending_indices == 0


def test_drain_order_is_first_touched_first():
    file = AggregationRegisterFile(size=4)
    file.enqueue_update(0, 2, 10)
    file.enqueue_update(1, 0, 10)
    file.drain(5, max_indices=1)
    assert file.main.register.read(2) == 10  # first-touched drains first
    assert file.main.register.read(0) == 0


def test_drain_lag_statistics():
    file = AggregationRegisterFile(size=2)
    file.enqueue_update(0, 0, 1)
    file.drain(10)
    assert file.max_drain_lag_cycles == 10
    assert file.mean_drain_lag_cycles() == 10.0


def test_dequeue_cannot_exceed_truth():
    file = AggregationRegisterFile(size=2)
    file.enqueue_update(0, 0, 50)
    with pytest.raises(ValueError):
        file.dequeue_update(1, 0, 100)


def test_negative_deltas_rejected():
    file = AggregationRegisterFile(size=2)
    with pytest.raises(ValueError):
        file.enqueue_update(0, 0, -1)


def test_index_bounds():
    file = AggregationRegisterFile(size=2)
    with pytest.raises(IndexError):
        file.enqueue_update(0, 2, 1)
    with pytest.raises(IndexError):
        file.packet_read(0, -1)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["enq", "deq", "drain"]),
            st.integers(0, 7),
            st.integers(1, 500),
        ),
        max_size=120,
    )
)
def test_invariants_under_random_schedules(ops):
    """Invariants of the Figure 3 design under arbitrary op orders.

    1. The main register never goes transiently negative (no 2^32 wrap),
       because drains clear both aggregation sides jointly.
    2. main + pending_net == truth for every index at all times.
    3. After draining everything, main == truth exactly.
    """
    file = AggregationRegisterFile(size=8)
    cycle = 0
    for op, index, amount in ops:
        cycle += 1
        if op == "enq":
            file.enqueue_update(cycle, index, amount)
        elif op == "deq":
            available = file.truth(index)
            if available > 0:
                file.dequeue_update(cycle, index, min(amount, available))
        else:
            file.drain(cycle, max_indices=1)
        # Invariant 1: no wraparound (values stay far below 2^31).
        for value in file.main.register.snapshot():
            assert value < (1 << 31)
        # Invariant 2: main + pending == truth.
        for i in range(8):
            pending = file.enq_agg.register.read(i) - file.deq_agg.register.read(i)
            assert file.main.register.snapshot()[i] + pending == file.truth(i)
    while file.pending_indices:
        cycle += 1
        file.drain(cycle, max_indices=1)
    assert file.max_staleness() == 0
