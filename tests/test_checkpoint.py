"""Checkpoint/restore: determinism across processes and scheduler backends.

Satellite guarantees under test:

* a restored kernel replays a byte-identical ``(time, priority, seqno)``
  execution trace, on both the ``heap`` and ``wheel`` backends and in
  every cross-backend combination (checkpoint on one, resume on the
  other),
* a microburst run checkpointed mid-simulation and resumed in a
  **fresh process** reaches the same final extern state, detections,
  and event counts as the uninterrupted run.
"""

import json
import os
import pickle
import subprocess
import sys

import pytest

from repro.sim.checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointError,
    inspect_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.sim.kernel import SCHEDULER_BACKENDS, SimulationError, Simulator

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


class Ticker:
    """A self-rescheduling callback that pickles inside checkpoints."""

    def __init__(self, period_ps: int, priority: int, tag: str) -> None:
        self.period_ps = period_ps
        self.priority = priority
        self.tag = tag
        self.fired = []
        self.sim = None

    def start(self, sim: Simulator) -> None:
        self.sim = sim
        sim.call_at(self.period_ps, self, priority=self.priority)

    def __call__(self) -> None:
        self.fired.append((self.sim.now_ps, self.tag))
        self.sim.call_after(self.period_ps, self, priority=self.priority)


class TraceRecorder:
    """Execution observer recording the exact (time, priority, seqno) order."""

    def __init__(self) -> None:
        self.records = []

    def __call__(self, event) -> None:
        self.records.append((event[0], event[1], event[2]))


def _build(scheduler: str):
    sim = Simulator(scheduler=scheduler)
    # Colliding times and priorities so the total order is non-trivial.
    tickers = [
        Ticker(30, priority=0, tag="a"),
        Ticker(30, priority=-1, tag="urgent"),
        Ticker(70, priority=0, tag="b"),
        Ticker(1, priority=5, tag="background"),
    ]
    for ticker in tickers:
        ticker.start(sim)
    return sim, tickers


@pytest.mark.parametrize("src_backend", SCHEDULER_BACKENDS)
@pytest.mark.parametrize("dst_backend", SCHEDULER_BACKENDS)
def test_restored_trace_identical_across_backends(tmp_path, src_backend, dst_backend):
    path = str(tmp_path / "kernel.ckpt")
    sim, tickers = _build(src_backend)
    sim.run(until_ps=500)
    save_checkpoint(path, sim, state=tickers)

    # Finish the original with the trace recorder attached.
    recorder = TraceRecorder()
    sim.add_execution_observer(recorder)
    sim.run(until_ps=2_000)

    # Restore (possibly onto the other backend) and finish that copy.
    sim2, tickers2, header = load_checkpoint(path, scheduler=dst_backend)
    assert header["scheduler"] == src_backend
    assert sim2.scheduler == dst_backend
    recorder2 = TraceRecorder()
    sim2.add_execution_observer(recorder2)
    sim2.run(until_ps=2_000)

    assert recorder2.records == recorder.records  # byte-identical total order
    assert sim2.now_ps == sim.now_ps
    assert sim2.events_executed == sim.events_executed
    for orig, rest in zip(tickers, tickers2):
        assert rest.fired == orig.fired
        assert rest.tag == orig.tag


@pytest.mark.parametrize("backend", SCHEDULER_BACKENDS)
def test_restore_matches_uninterrupted_run(tmp_path, backend):
    path = str(tmp_path / "kernel.ckpt")
    sim, tickers = _build(backend)
    sim.run(until_ps=333)
    save_checkpoint(path, sim, state=tickers)
    _sim2, tickers2, _header = load_checkpoint(path)
    for t in tickers2:
        t.sim.run(until_ps=1_000)
        break

    # A never-interrupted reference run over the same horizon.
    ref_sim, ref_tickers = _build(backend)
    ref_sim.run(until_ps=1_000)
    for restored, ref in zip(tickers2, ref_tickers):
        assert restored.fired == ref.fired


def test_header_contents_and_inspect(tmp_path):
    path = str(tmp_path / "kernel.ckpt")
    sim, tickers = _build("heap")
    sim.run(until_ps=100)
    written = save_checkpoint(path, sim, state=tickers, label="probe")
    header = inspect_checkpoint(path)
    assert header == written
    assert header["format"] == CHECKPOINT_MAGIC
    assert header["version"] == CHECKPOINT_VERSION
    assert header["label"] == "probe"
    assert header["scheduler"] == "heap"
    assert header["now_ps"] == sim.now_ps
    assert header["events_executed"] == sim.events_executed
    assert header["pending_events"] == sim.pending_events


def test_rejects_foreign_and_future_files(tmp_path):
    garbage = tmp_path / "garbage.ckpt"
    garbage.write_bytes(b"not a pickle at all")
    with pytest.raises(CheckpointError):
        inspect_checkpoint(str(garbage))

    wrong_magic = tmp_path / "magic.ckpt"
    with open(wrong_magic, "wb") as fh:
        pickle.dump({"format": "something-else"}, fh)
    with pytest.raises(CheckpointError, match="bad magic"):
        inspect_checkpoint(str(wrong_magic))

    future = tmp_path / "future.ckpt"
    with open(future, "wb") as fh:
        pickle.dump(
            {"format": CHECKPOINT_MAGIC, "version": CHECKPOINT_VERSION + 1}, fh
        )
    with pytest.raises(CheckpointError, match="newer"):
        inspect_checkpoint(str(future))


def test_cannot_pickle_running_simulator():
    sim = Simulator()
    failures = []

    def try_pickle() -> None:
        try:
            pickle.dumps(sim)
        except SimulationError as exc:
            failures.append(str(exc))

    sim.call_at(10, try_pickle)
    sim.run()
    assert failures and "running" in failures[0]


def test_set_scheduler_preserves_order_mid_run():
    sim, tickers = _build("heap")
    sim.run(until_ps=500)
    sim.set_scheduler("wheel")
    assert sim.scheduler == "wheel"
    sim.run(until_ps=1_500)

    ref_sim, ref_tickers = _build("heap")
    ref_sim.run(until_ps=1_500)
    for switched, ref in zip(tickers, ref_tickers):
        assert switched.fired == ref.fired


# ----------------------------------------------------------------------
# Fresh-process microburst resume (the ISSUE's acceptance demo)
# ----------------------------------------------------------------------
_PHASE1 = """
import json, sys
from repro.experiments.microburst_exp import prepare_event_driven
from repro.sim.checkpoint import save_checkpoint
from repro.sim.units import MILLISECONDS

setup = prepare_event_driven(duration_ps=6 * MILLISECONDS)
setup.network.run(until_ps=3 * MILLISECONDS)
header = save_checkpoint(sys.argv[1], setup.network.sim, state=setup)
print(json.dumps({"now_ps": header["now_ps"]}))
"""

_PHASE2 = """
import json, sys
from repro.sim.checkpoint import load_checkpoint
from repro.experiments.microburst_exp import finish_event_driven

sim, setup, header = load_checkpoint(sys.argv[1])
result = finish_event_driven(setup)
print(json.dumps({
    "now_ps": setup.network.sim.now_ps,
    "events_executed": setup.network.sim.events_executed,
    "detections": result.detections_total,
    "caught": result.culprit_detected,
    "latency_ps": result.detection_latency_ps,
    "bursts": result.bursts_sent,
    "state_sum": sum(setup.detector.flow_buf_size.snapshot()),
    "state": setup.detector.flow_buf_size.snapshot(),
}))
"""

_UNINTERRUPTED = """
import json
from repro.experiments.microburst_exp import finish_event_driven, prepare_event_driven
from repro.sim.units import MILLISECONDS

setup = prepare_event_driven(duration_ps=6 * MILLISECONDS)
result = finish_event_driven(setup)
print(json.dumps({
    "now_ps": setup.network.sim.now_ps,
    "events_executed": setup.network.sim.events_executed,
    "detections": result.detections_total,
    "caught": result.culprit_detected,
    "latency_ps": result.detection_latency_ps,
    "bursts": result.bursts_sent,
    "state_sum": sum(setup.detector.flow_buf_size.snapshot()),
    "state": setup.detector.flow_buf_size.snapshot(),
}))
"""


def _run_snippet(code: str, args, scheduler: str):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    env["REPRO_SIM_SCHEDULER"] = scheduler
    proc = subprocess.run(
        [sys.executable, "-c", code, *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.splitlines()[-1])


@pytest.mark.parametrize("scheduler", SCHEDULER_BACKENDS)
def test_microburst_resumes_identically_in_fresh_process(tmp_path, scheduler):
    ckpt = str(tmp_path / "mb.ckpt")
    _run_snippet(_PHASE1, [ckpt], scheduler)
    resumed = _run_snippet(_PHASE2, [ckpt], scheduler)
    straight = _run_snippet(_UNINTERRUPTED, [], scheduler)
    assert resumed == straight
