"""Edge-case tests: link flapping and repeated failovers."""


from repro.apps.frr import FastRerouteProgram
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext


class FakeCtx(ProgramContext):
    def __init__(self):
        self._now = 0

    @property
    def now_ps(self):
        return self._now


def link_event(port, up):
    return Event(EventType.LINK_STATUS, 0, meta={"port": port, "up": int(up)})


def test_rapid_flapping_converges_to_final_state():
    frr = FastRerouteProgram()
    frr.install_protected_route(0xA, primary=1, backup=2)
    ctx = FakeCtx()
    for _ in range(10):
        frr.on_link_status(ctx, link_event(1, False))
        frr.on_link_status(ctx, link_event(1, True))
    assert frr.routes[0xA] == 1  # ended up
    assert len(frr.failovers) == 10
    assert len(frr.reverts) == 10
    frr.on_link_status(ctx, link_event(1, False))
    assert frr.routes[0xA] == 2  # ended down


def test_unrelated_port_events_do_not_touch_routes():
    frr = FastRerouteProgram()
    frr.install_protected_route(0xA, primary=1, backup=2)
    frr.on_link_status(FakeCtx(), link_event(7, False))
    assert frr.routes[0xA] == 1
    assert frr.failovers[0].rerouted_destinations == 0


def test_backup_port_failure_is_not_cascaded():
    """If the backup port itself dies, routes pointing at it stay (no
    further backup exists); the program records zero reroutes."""
    frr = FastRerouteProgram()
    frr.install_protected_route(0xA, primary=1, backup=2)
    ctx = FakeCtx()
    frr.on_link_status(ctx, link_event(1, False))  # -> backup 2
    frr.on_link_status(ctx, link_event(2, False))  # backup dies too
    assert frr.routes[0xA] == 2  # nothing better available
    assert frr.failovers[1].rerouted_destinations == 0


def test_double_down_events_idempotent():
    frr = FastRerouteProgram()
    frr.install_protected_route(0xA, primary=1, backup=2)
    ctx = FakeCtx()
    frr.on_link_status(ctx, link_event(1, False))
    frr.on_link_status(ctx, link_event(1, False))
    assert frr.routes[0xA] == 2
    # The second event still records a failover action with 0 moved
    # (route already on backup — the 'moved' count keys off primary).
    assert len(frr.failovers) == 2
