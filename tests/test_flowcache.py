"""Flow-decision cache: correctness, invalidation, and equivalence.

The cache may only ever change *speed*, never *behavior*: every test
here drives the same workload with the cache on and off and demands
byte-identical outcomes, or exercises the versioning/purity machinery
that makes that guarantee hold.
"""

import dataclasses

import pytest

from repro.apps.common import ForwardingProgram
from repro.apps.l3fwd import L3Router
from repro.arch.events import EventType
from repro.arch.program import handler
from repro.experiments.factories import make_baseline_switch, make_sume_switch
from repro.net.topology import build_linear
from repro.packet.builder import make_udp_packet
from repro.packet.headers import Ipv4
from repro.pisa.action import Action
from repro.pisa.flowcache import (
    FLOW_CACHE_ENV,
    FlowCache,
    VersionedDict,
    env_enabled,
)
from repro.pisa.table import ExactTable, LpmTable, TernaryTable

H0_IP = 0x0A00_0001
H1_IP = 0x0A00_0002
MS = 1_000_000_000  # 1 ms in ps


@pytest.fixture(autouse=True)
def _cache_on_by_default(monkeypatch):
    # CI runs the whole suite under both REPRO_FLOW_CACHE=1 and =0; this
    # module exercises the cache itself, so pin the default ON here and
    # let individual tests override the environment as needed.
    monkeypatch.setenv(FLOW_CACHE_ENV, "1")


class PlainForwarder(ForwardingProgram):
    """Route-dict forwarding only: a fully cacheable pipeline."""

    name = "plain-fwd"

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx, pkt, meta):
        self.forward_by_ip(pkt, meta)


def _drive(factory, program, count=20, flows=1):
    """Send ``count`` packets (round-robin over ``flows`` source IPs)
    through a one-switch linear topology; returns (switch, received)."""
    network = build_linear(factory, switch_count=1)
    switch = network.switches["s0"]
    if isinstance(program, ForwardingProgram):
        program.install_routes({H1_IP: 1, H0_IP: 0})
    switch.load_program(program)
    received = []
    network.hosts["h1"].add_sink(received.append)
    h0 = network.hosts["h0"]
    for i in range(count):
        src = H0_IP + (i % flows)
        network.sim.call_at(
            1_000 + i * 200_000,
            h0.send,
            make_udp_packet(src, H1_IP, payload_len=200),
        )
    network.run()
    return switch, received


def _delivery_fingerprint(received):
    return [
        (p.payload_len, [(type(h).__name__, h.field_values()) for h in p.headers])
        for p in received
    ]


# ----------------------------------------------------------------------
# VersionedDict / env toggle
# ----------------------------------------------------------------------
def test_versioned_dict_bumps_generation_on_every_mutation():
    d = VersionedDict()
    assert d.generation == 0
    d[1] = 2
    d.update({3: 4})
    d.setdefault(5, 6)
    d.setdefault(5, 7)  # present: still bumps (conservative is correct)
    del d[1]
    d.pop(3)
    d.popitem()
    d[8] = 9
    d.clear()
    assert d.generation == 9
    assert dict(d) == {}


def test_versioned_dict_survives_pickle_with_generation():
    import pickle

    d = VersionedDict({1: 2})
    d[3] = 4
    clone = pickle.loads(pickle.dumps(d))
    assert dict(clone) == {1: 2, 3: 4}
    assert clone.generation == d.generation


def test_env_enabled_parsing(monkeypatch):
    monkeypatch.delenv(FLOW_CACHE_ENV, raising=False)
    assert env_enabled() is True
    for off in ("0", "false", "OFF", "no", ""):
        monkeypatch.setenv(FLOW_CACHE_ENV, off)
        assert env_enabled() is False
    monkeypatch.setenv(FLOW_CACHE_ENV, "1")
    assert env_enabled() is True


def test_constructor_and_env_toggles(monkeypatch):
    network = build_linear(make_baseline_switch(flow_cache=False), switch_count=1)
    assert network.switches["s0"].flow_cache is None
    monkeypatch.setenv(FLOW_CACHE_ENV, "0")
    network = build_linear(make_baseline_switch(), switch_count=1)
    assert network.switches["s0"].flow_cache is None
    monkeypatch.setenv(FLOW_CACHE_ENV, "1")
    network = build_linear(make_baseline_switch(), switch_count=1)
    assert network.switches["s0"].flow_cache is not None


# ----------------------------------------------------------------------
# Hit path: identical behavior, counted hits
# ----------------------------------------------------------------------
@pytest.mark.parametrize("factory_fn", [make_baseline_switch, make_sume_switch])
def test_pure_program_hits_and_identical_delivery(factory_fn):
    sw_on, recv_on = _drive(factory_fn(), PlainForwarder(), count=20)
    sw_off, recv_off = _drive(
        factory_fn(flow_cache=False), PlainForwarder(), count=20
    )
    assert sw_off.flow_cache is None
    assert sw_on.flow_cache.stats.hits == 19
    assert sw_on.flow_cache.stats.misses == 1
    elided = sw_on._pipeline_for_kind(EventType.INGRESS_PACKET).walks_elided
    assert elided == 19
    assert _delivery_fingerprint(recv_on) == _delivery_fingerprint(recv_off)
    # TTL was decremented through the replay path too.
    assert all(p.get(Ipv4).ttl == 63 for p in recv_on)


def test_stateful_program_is_never_short_circuited():
    from repro.apps.microburst import MicroburstDetector

    def fresh():
        return MicroburstDetector(num_regs=64, flow_thresh_bytes=1 << 30)

    sw_on, recv_on = _drive(make_sume_switch(), fresh(), count=20)
    sw_off, recv_off = _drive(make_sume_switch(flow_cache=False), fresh(), count=20)
    stats = sw_on.flow_cache.stats
    # The detector reads a shared register in ingress: uncacheable.
    assert stats.hits == 0
    assert stats.uncacheable > 0
    assert sw_on.program.packets_seen == sw_off.program.packets_seen == 20
    assert (
        sw_on.program.flow_buf_size.snapshot()
        == sw_off.program.flow_buf_size.snapshot()
    )
    assert _delivery_fingerprint(recv_on) == _delivery_fingerprint(recv_off)


def test_recordable_counter_stays_exact_through_replay():
    def fresh():
        program = L3Router()
        program.install_host_routes({H0_IP: 0, H1_IP: 1})
        return program

    sw_on, recv_on = _drive(make_baseline_switch(), fresh(), count=30)
    sw_off, recv_off = _drive(make_baseline_switch(flow_cache=False), fresh(), count=30)
    assert sw_on.flow_cache.stats.hits > 0
    # Counter.count is a blind write: replayed per cached packet.
    assert list(sw_on.program.next_hop_stats()) == list(
        sw_off.program.next_hop_stats()
    )
    assert sw_on.program.tx_counter.total_packets() == 30
    assert _delivery_fingerprint(recv_on) == _delivery_fingerprint(recv_off)


def test_lru_eviction_is_counted():
    network = build_linear(make_baseline_switch(), switch_count=1)
    switch = network.switches["s0"]
    switch.flow_cache = FlowCache(network.sim, limit=2, name="tiny")
    program = PlainForwarder()
    program.install_routes({H1_IP: 1})
    switch.load_program(program)
    network.hosts["h1"].add_sink(lambda pkt: None)
    h0 = network.hosts["h0"]
    for i in range(4):  # 4 distinct flows through a 2-entry cache
        network.sim.call_at(
            1_000 + i * 200_000,
            h0.send,
            make_udp_packet(H0_IP + i, H1_IP, payload_len=200),
        )
    network.run()
    stats = switch.flow_cache.stats
    assert stats.misses == 4
    assert stats.evictions == 2
    assert len(switch.flow_cache) == 2


# ----------------------------------------------------------------------
# Generation-vector invalidation (satellite: no stale decision ever)
# ----------------------------------------------------------------------
def _noop(pkt, meta):
    return None


class _FibForwarder(ForwardingProgram):
    """Forwarding driven by an ExactTable, so entries can be repointed."""

    name = "table-fwd"

    def __init__(self):
        super().__init__()
        self.fib = ExactTable("fib")

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx, pkt, meta):
        ip = pkt.get(Ipv4)
        self.fib.apply((ip.dst,)).execute(pkt, meta)


def _run_mid_sim_repoint(flow_cache):
    set_port = Action(
        "set_port", lambda pkt, meta, port=0: meta.send_to_port(port), ("port",)
    )
    network = build_linear(
        make_baseline_switch(flow_cache=flow_cache), switch_count=1
    )
    switch = network.switches["s0"]
    program = _FibForwarder()
    program.fib.insert((H1_IP,), set_port.bind(port=1))
    switch.load_program(program)
    to_h1, to_h0 = [], []
    network.hosts["h1"].add_sink(to_h1.append)
    network.hosts["h0"].add_sink(to_h0.append)
    h0 = network.hosts["h0"]
    for i in range(10):
        network.sim.call_at(
            1_000 + i * 2_000_000,
            h0.send,
            make_udp_packet(H0_IP, H1_IP, payload_len=200),
        )
    # Mid-simulation the control plane repoints the entry at port 0:
    # every packet processed afterwards must bounce back, even though
    # the flow's old decision sits in the cache.  (Sends are 2 µs apart
    # and the h0—s0 link adds 1 µs, so 9 µs lands between the ingress
    # of packet 3 and packet 4.)
    network.sim.call_at(
        9_000_000,
        program.fib.update_action,
        (H1_IP,),
        set_port.bind(port=0),
    )
    network.run()
    return switch, len(to_h1), len(to_h0)


def test_table_mutation_mid_sim_evicts_before_next_packet():
    switch, h1_cached, h0_cached = _run_mid_sim_repoint(True)
    _switch, h1_plain, h0_plain = _run_mid_sim_repoint(False)
    # The repoint took effect mid-run and the cache observed exactly the
    # same split as the uncached switch — no stale decision served.
    assert h0_cached > 0
    assert h1_cached > 0
    assert (h1_cached, h0_cached) == (h1_plain, h0_plain)
    assert h1_cached + h0_cached == 10
    stats = switch.flow_cache.stats
    assert stats.invalidations >= 1
    assert stats.hits >= 1


@pytest.mark.parametrize(
    "make_table,mutate",
    [
        (
            lambda: ExactTable("t"),
            [
                lambda t: t.insert((1,), Action("a", _noop).bind()),
                lambda t: t.update_action((1,), Action("b", _noop).bind()),
                lambda t: t.remove((1,)),
            ],
        ),
        (
            lambda: LpmTable("t"),
            [
                lambda t: t.insert(0x0A000000, 8, Action("a", _noop).bind()),
                lambda t: t.update_action(0x0A000000, 8, Action("b", _noop).bind()),
                lambda t: t.remove(0x0A000000, 8),
            ],
        ),
        (
            lambda: TernaryTable("t"),
            [
                lambda t: t.insert((1,), (0xFF,), 1, Action("a", _noop).bind()),
                lambda t: t.update_action((1,), (0xFF,), Action("b", _noop).bind()),
                lambda t: t.remove((1,), (0xFF,)),
            ],
        ),
    ],
    ids=["exact", "lpm", "ternary"],
)
def test_every_table_mutation_bumps_generation(make_table, mutate):
    table = make_table()
    generation = table.generation
    for op in mutate:
        op(table)
        assert table.generation > generation
        generation = table.generation
    table.set_default(Action("d", _noop).bind())
    assert table.generation > generation


def test_update_action_missing_entry_raises():
    exact = ExactTable("t")
    with pytest.raises(KeyError):
        exact.update_action((1,), Action("a", _noop).bind())
    lpm = LpmTable("t")
    with pytest.raises(KeyError):
        lpm.update_action(0x0A000000, 8, Action("a", _noop).bind())
    ternary = TernaryTable("t")
    with pytest.raises(KeyError):
        ternary.update_action((1,), (0xFF,), Action("a", _noop).bind())


# ----------------------------------------------------------------------
# Reset / checkpoint-restore: caches start cold and deterministic
# ----------------------------------------------------------------------
def test_sim_reset_clears_entries_and_counters():
    switch, _received = _drive(make_baseline_switch(), PlainForwarder(), count=10)
    cache = switch.flow_cache
    assert cache.stats.hits == 9 and len(cache) == 1
    switch.sim.reset()
    assert len(cache) == 0
    assert cache.stats.as_dict() == {
        "hits": 0,
        "misses": 0,
        "uncacheable": 0,
        "invalidations": 0,
        "evictions": 0,
    }


def test_checkpoint_restore_starts_cold_then_rebuilds(tmp_path):
    from repro.sim.checkpoint import load_checkpoint, save_checkpoint

    network = build_linear(make_baseline_switch(), switch_count=1)
    switch = network.switches["s0"]
    program = PlainForwarder()
    program.install_routes({H1_IP: 1, H0_IP: 0})
    switch.load_program(program)
    received = []
    network.hosts["h1"].add_sink(received.append)
    h0 = network.hosts["h0"]
    for i in range(10):
        network.sim.call_at(
            1_000 + i * 200_000,
            h0.send,
            make_udp_packet(H0_IP, H1_IP, payload_len=200),
        )
    network.run(until_ps=2_500_000)
    assert switch.flow_cache.stats.hits > 0

    path = str(tmp_path / "fc.ckpt")
    save_checkpoint(path, network.sim, state=network)
    sim2, network2, _header = load_checkpoint(path)
    cache2 = network2.switches["s0"].flow_cache
    # The memo is deliberately not checkpointed: restored runs start
    # cold (zero entries, zero counters) and rebuild warm.
    assert len(cache2) == 0
    assert cache2.stats.hits == 0
    received2 = []
    network2.hosts["h1"].add_sink(received2.append)
    sim2.run()
    network.run()
    assert cache2.stats.misses == 1
    assert cache2.stats.hits > 0
    assert len(received) == 10
    assert _delivery_fingerprint(received[-len(received2):]) == _delivery_fingerprint(
        received2
    )


# ----------------------------------------------------------------------
# Cache-on/off equivalence matrix over the paper's experiments
# ----------------------------------------------------------------------
def _with_cache(monkeypatch, flag, fn, *args, **kwargs):
    monkeypatch.setenv(FLOW_CACHE_ENV, flag)
    try:
        return fn(*args, **kwargs)
    finally:
        monkeypatch.delenv(FLOW_CACHE_ENV, raising=False)


@pytest.mark.parametrize("experiment", ["microburst", "hula", "netcache"])
def test_experiment_outputs_identical_with_cache_on_and_off(
    experiment, monkeypatch
):
    if experiment == "microburst":
        from repro.experiments.microburst_exp import run_event_driven

        def run():
            return dataclasses.asdict(
                run_event_driven(duration_ps=4 * MS, seed=7)
            )

    elif experiment == "hula":
        from repro.experiments.hula_exp import run_load_balance

        def run():
            return dataclasses.asdict(
                run_load_balance(duration_ps=3 * MS, seed=7)
            )

    else:
        from repro.experiments.netcache_exp import run_netcache

        def run():
            return dataclasses.asdict(
                run_netcache(
                    duration_ps=8 * MS, shift_at_ps=4 * MS, seed=7
                )
            )

    off = _with_cache(monkeypatch, "0", run)
    on = _with_cache(monkeypatch, "1", run)
    assert on == off


def test_state_summary_identical_with_cache_on_and_off():
    def fresh():
        program = L3Router()
        program.install_host_routes({H0_IP: 0, H1_IP: 1})
        return program

    sw_on, _ = _drive(make_baseline_switch(), fresh(), count=15)
    sw_off, _ = _drive(make_baseline_switch(flow_cache=False), fresh(), count=15)
    assert sw_on.state_summary() == sw_off.state_summary()


def test_observed_dispatch_still_counts_and_traces_identically():
    from repro.obs import RecordingObserver, observing

    def traced(flow_cache):
        observer = RecordingObserver()
        with observing(observer):
            switch, received = _drive(
                make_baseline_switch(flow_cache=flow_cache),
                PlainForwarder(),
                count=12,
            )
        return switch, received, observer

    sw_on, recv_on, obs_on = traced(True)
    sw_off, recv_off, obs_off = traced(False)
    assert sw_on.flow_cache.stats.hits > 0  # cache active under observers
    assert _delivery_fingerprint(recv_on) == _delivery_fingerprint(recv_off)
    assert obs_on.normalized() == obs_off.normalized()
