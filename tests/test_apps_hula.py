"""Unit tests for the HULA programs."""

import pytest

from repro.apps.hula import EcmpLeafProgram, HulaLeafProgram, HulaSpineProgram
from repro.arch.events import Event, EventType
from repro.arch.program import ProgramContext
from repro.packet.builder import make_hula_probe, make_udp_packet
from repro.packet.headers import HulaProbe
from repro.pisa.metadata import StandardMetadata


class FakeCtx(ProgramContext):
    def __init__(self):
        self.generated = []
        self.timers = []
        self._now = 0

    @property
    def now_ps(self):
        return self._now

    def configure_timer(self, timer_id, period_ps):
        self.timers.append((timer_id, period_ps))

    def generate_packet(self, pkt):
        self.generated.append(pkt)


def make_leaf(**kwargs):
    defaults = dict(tor_id=0, uplink_ports=[0, 1], tor_count=2)
    defaults.update(kwargs)
    return HulaLeafProgram(**defaults)


def test_leaf_validation():
    with pytest.raises(ValueError):
        HulaLeafProgram(tor_id=0, uplink_ports=[], tor_count=2)


def test_on_load_arms_probe_timer():
    leaf = make_leaf(probe_period_ps=12_345)
    ctx = FakeCtx()
    leaf.on_load(ctx)
    assert ctx.timers == [(0, 12_345)]


def test_timer_generates_one_probe_per_uplink():
    leaf = make_leaf()
    ctx = FakeCtx()
    leaf.on_timer(ctx, Event(kind=EventType.TIMER, time_ps=0))
    assert len(ctx.generated) == 2
    ports = {pkt.meta["probe_out_port"] for pkt in ctx.generated}
    assert ports == {0, 1}
    assert all(pkt.get(HulaProbe).tor_id == 0 for pkt in ctx.generated)


def test_probe_updates_best_hop_when_better():
    leaf = make_leaf()
    ctx = FakeCtx()
    # Initially best_util is infinite; any probe wins.
    probe_pkt = make_hula_probe(tor_id=1, path_id=0, max_util_centi=500)
    meta = StandardMetadata(ingress_port=1)
    leaf.ingress(ctx, probe_pkt, meta)
    assert leaf.best_hop.read(1) == 1
    assert leaf.best_util.read(1) == 500
    assert meta.dropped  # probes terminate at the leaf
    # A worse probe on another port does not displace it.
    worse = make_hula_probe(tor_id=1, path_id=0, max_util_centi=9_000)
    leaf.ingress(ctx, worse, StandardMetadata(ingress_port=0))
    assert leaf.best_hop.read(1) == 1


def test_probe_on_current_hop_refreshes_even_if_worse():
    leaf = make_leaf()
    ctx = FakeCtx()
    leaf.ingress(
        ctx,
        make_hula_probe(tor_id=1, path_id=0, max_util_centi=100),
        StandardMetadata(ingress_port=0),
    )
    leaf.ingress(
        ctx,
        make_hula_probe(tor_id=1, path_id=0, max_util_centi=7_000),
        StandardMetadata(ingress_port=0),
    )
    assert leaf.best_util.read(1) == 7_000  # refreshed upward


def test_probe_folds_in_local_uplink_utilization():
    leaf = make_leaf()
    ctx = FakeCtx()
    leaf.util.on_transmit(0, 9_999)
    leaf.ingress(
        ctx,
        make_hula_probe(tor_id=1, path_id=0, max_util_centi=5),
        StandardMetadata(ingress_port=0),
    )
    assert leaf.best_util.read(1) == 9_999


def test_data_follows_best_hop_with_flowlet_stickiness():
    leaf = make_leaf(flowlet_gap_ps=1_000_000)
    ctx = FakeCtx()
    leaf.install_remote(0x0B000001, 1)
    leaf.ingress(
        ctx,
        make_hula_probe(tor_id=1, path_id=0, max_util_centi=10),
        StandardMetadata(ingress_port=1),
    )
    pkt = make_udp_packet(0x0A000001, 0x0B000001, sport=5, dport=6)
    meta = StandardMetadata(ingress_port=2)
    ctx._now = 100
    leaf.ingress(ctx, pkt, meta)
    assert meta.egress_spec == 1
    # Best hop flips, but the flowlet is still live → sticks to port 1.
    leaf.best_hop.write(1, 0)
    meta2 = StandardMetadata(ingress_port=2)
    ctx._now = 200
    leaf.ingress(ctx, pkt.clone(), meta2)
    assert meta2.egress_spec == 1
    # After the flowlet gap the flow adopts the new best hop.
    meta3 = StandardMetadata(ingress_port=2)
    ctx._now = 200 + 2_000_000
    leaf.ingress(ctx, pkt.clone(), meta3)
    assert meta3.egress_spec == 0
    assert leaf.flowlet_switches == 1


def test_unknown_destination_dropped():
    leaf = make_leaf()
    ctx = FakeCtx()
    meta = StandardMetadata()
    leaf.ingress(ctx, make_udp_packet(1, 0x0D0D0D0D), meta)
    assert meta.dropped
    assert leaf.unrouted_drops == 1


def test_transmit_event_feeds_util_estimator():
    leaf = make_leaf()
    ctx = FakeCtx()
    event = Event(
        kind=EventType.PACKET_TRANSMITTED,
        time_ps=0,
        meta={"port": 1, "pkt_len": 1_000},
    )
    leaf.on_transmit(ctx, event)
    assert leaf.util.read(1) == 1_000
    # Decay halves it.
    leaf.util.decay()
    assert leaf.util.read(1) == 500


class TestSpine:
    def test_floods_probe_to_other_leaves(self):
        spine = HulaSpineProgram(leaf_ports=[0, 1, 2])
        ctx = FakeCtx()
        probe = make_hula_probe(tor_id=0, path_id=0, max_util_centi=50)
        meta = StandardMetadata(ingress_port=0)
        spine.ingress(ctx, probe, meta)
        # Original goes out the first other port; one clone generated.
        assert meta.egress_spec in (1, 2)
        assert len(ctx.generated) == 1
        assert spine.probes_forwarded == 2

    def test_stamps_downlink_utilization(self):
        spine = HulaSpineProgram(leaf_ports=[0, 1])
        ctx = FakeCtx()
        spine.util.on_transmit(0, 8_888)  # data direction toward leaf 0
        pkt = make_hula_probe(tor_id=0, path_id=0, max_util_centi=3)
        meta = StandardMetadata(ingress_port=0)
        spine.ingress(ctx, pkt, meta)
        assert pkt.require(HulaProbe).max_util_centi == 8_888

    def test_validation(self):
        with pytest.raises(ValueError):
            HulaSpineProgram(leaf_ports=[])


class TestEcmp:
    def test_hash_is_deterministic_per_flow(self):
        ecmp = EcmpLeafProgram(uplink_ports=[0, 1])
        ecmp.install_remote(0x0B000001)
        ctx = FakeCtx()
        pkt = make_udp_packet(1, 0x0B000001, sport=5, dport=6)
        chosen = set()
        for _ in range(5):
            meta = StandardMetadata()
            ecmp.ingress(ctx, pkt.clone(), meta)
            chosen.add(meta.egress_spec)
        assert len(chosen) == 1  # same flow, same uplink, always

    def test_probes_dropped(self):
        ecmp = EcmpLeafProgram(uplink_ports=[0, 1])
        meta = StandardMetadata()
        ecmp.ingress(FakeCtx(), make_hula_probe(1, 0), meta)
        assert meta.dropped
