"""Compiled pipeline specialization (:mod:`repro.pisa.compile`).

The specializer may only ever change *speed*, never *behavior*: the
interpreted pipeline walk is the reference, and every test here either
demands byte-identical outcomes with compilation on vs off — including
subprocess runs of whole experiments, so the environment toggle is
exercised exactly the way CI and users flip it — or pokes the
invalidation/fallback machinery that keeps the guarantee honest under
control-plane mutation.
"""

import json
import os
import pickle
import subprocess
import sys

import pytest

from repro.apps.l3fwd import L3Router
from repro.arch.events import EventType
from repro.experiments.factories import make_baseline_switch
from repro.net.topology import build_linear
from repro.packet.builder import make_udp_packet
from repro.pisa.compile import PIPELINE_COMPILE_ENV, env_enabled
from repro.pisa.table import ExactTable

H0_IP = 0x0A00_0001
H1_IP = 0x0A00_0002


@pytest.fixture(autouse=True)
def _compile_on_by_default(monkeypatch):
    # CI runs the whole suite under both REPRO_PIPELINE_COMPILE=1 and
    # =0; this module exercises the specializer itself, so pin the
    # default ON and let individual tests override as needed.
    monkeypatch.setenv(PIPELINE_COMPILE_ENV, "1")


def _fresh_l3():
    program = L3Router()
    program.install_host_routes({H0_IP: 0, H1_IP: 1})
    return program


def _drive(factory, program, count=20, flows=1):
    network = build_linear(factory, switch_count=1)
    switch = network.switches["s0"]
    switch.load_program(program)
    received = []
    network.hosts["h1"].add_sink(received.append)
    h0 = network.hosts["h0"]
    for i in range(count):
        src = H0_IP + (i % flows)
        network.sim.call_at(
            1_000 + i * 200_000,
            h0.send,
            make_udp_packet(src, H1_IP, payload_len=200),
        )
    network.run()
    return switch, received


def _delivery_fingerprint(received):
    return [
        (p.payload_len, [(type(h).__name__, h.field_values()) for h in p.headers])
        for p in received
    ]


# ----------------------------------------------------------------------
# Env toggle / constructor plumbing
# ----------------------------------------------------------------------
def test_env_enabled_parsing(monkeypatch):
    monkeypatch.delenv(PIPELINE_COMPILE_ENV, raising=False)
    assert env_enabled() is True
    for off in ("0", "false", "OFF", "no", ""):
        monkeypatch.setenv(PIPELINE_COMPILE_ENV, off)
        assert env_enabled() is False
    monkeypatch.setenv(PIPELINE_COMPILE_ENV, "1")
    assert env_enabled() is True


def test_constructor_and_env_toggles(monkeypatch):
    network = build_linear(make_baseline_switch(compile=False), switch_count=1)
    assert network.switches["s0"]._compiled is False
    monkeypatch.setenv(PIPELINE_COMPILE_ENV, "0")
    network = build_linear(make_baseline_switch(), switch_count=1)
    assert network.switches["s0"]._compiled is False
    monkeypatch.setenv(PIPELINE_COMPILE_ENV, "1")
    network = build_linear(make_baseline_switch(), switch_count=1)
    assert network.switches["s0"]._compiled is None  # pending until dispatch


def test_compile_waits_out_the_warmup_window():
    network = build_linear(
        make_baseline_switch(flow_cache=False, compile=True), switch_count=1
    )
    switch = network.switches["s0"]
    switch.load_program(_fresh_l3())
    h0 = network.hosts["h0"]
    # Warm-up counts dispatches (ingress + egress per packet), so a few
    # packets stay safely inside the window...
    for i in range(4):
        network.sim.call_at(
            1_000 + i * 200_000,
            h0.send,
            make_udp_packet(H0_IP, H1_IP, payload_len=200),
        )
    network.run()
    assert switch._compiled is None  # still interpreting
    # ...and a busy switch crosses it and compiles.
    for i in range(type(switch).COMPILE_WARMUP + 4):
        network.sim.call_at(
            network.sim.now_ps + 1_000 + i * 200_000,
            h0.send,
            make_udp_packet(H0_IP, H1_IP, payload_len=200),
        )
    network.run()
    assert isinstance(switch._compiled, dict)


def test_compiled_dispatch_is_generated_code():
    switch, received = _drive(make_baseline_switch(flow_cache=False), _fresh_l3())
    assert len(received) == 20
    compiled = switch._compiled
    assert isinstance(compiled, dict)
    dispatch = compiled[EventType.INGRESS_PACKET]
    source = dispatch.__repro_source__
    # The dispatch is a flat generated function, not a generic loop.
    assert "fired[KIND]" in source


# ----------------------------------------------------------------------
# Equivalence: compiled vs interpreted, in-process
# ----------------------------------------------------------------------
@pytest.mark.parametrize("flow_cache", [True, False])
def test_l3_walk_identical_compiled_vs_interpreted(flow_cache):
    sw_on, recv_on = _drive(
        make_baseline_switch(flow_cache=flow_cache, compile=True),
        _fresh_l3(),
        count=30,
        flows=3,
    )
    sw_off, recv_off = _drive(
        make_baseline_switch(flow_cache=flow_cache, compile=False),
        _fresh_l3(),
        count=30,
        flows=3,
    )
    assert sw_on._compiled and sw_off._compiled is False
    assert _delivery_fingerprint(recv_on) == _delivery_fingerprint(recv_off)
    assert sw_on.state_summary() == sw_off.state_summary()
    # Inlined table probes keep the hit/miss counters exact.
    for table in ("acl", "routes", "nexthops"):
        on_t, off_t = getattr(sw_on.program, table), getattr(sw_off.program, table)
        assert (on_t.hit_count, on_t.miss_count) == (off_t.hit_count, off_t.miss_count)
    assert list(sw_on.program.next_hop_stats()) == list(
        sw_off.program.next_hop_stats()
    )


def test_table_mutation_invalidates_compiled_walk():
    """The generation guard: a route change is visible to the next packet."""

    def run(compile):
        network = build_linear(
            make_baseline_switch(flow_cache=False, compile=compile), switch_count=1
        )
        switch = network.switches["s0"]
        program = _fresh_l3()
        switch.load_program(program)
        received = []
        network.hosts["h1"].add_sink(received.append)
        h0 = network.hosts["h0"]
        for i in range(24):
            network.sim.call_at(
                1_000 + i * 200_000,
                h0.send,
                make_udp_packet(H0_IP, H1_IP, payload_len=200),
            )
        # Mid-run control-plane mutation: remark DSCP on the H1 next hop.
        # Timed (1 µs link latency) so it lands after the COMPILE_WARMUP
        # window — the compiled walk is hot and must regenerate.
        network.sim.call_at(5_000_000, program.add_next_hop, 1, 1, 13)
        network.run()
        return switch, _delivery_fingerprint(received)

    sw_compiled, fp_compiled = run(True)
    sw_interp, fp_interp = run(False)
    assert sw_compiled._compiled
    assert fp_compiled == fp_interp
    # The mutation actually landed mid-run: later packets carry the remark.
    dscps = {headers[1][1]["dscp"] for _len, headers in fp_compiled}
    assert dscps == {0, 13}


def test_unfoldable_entry_falls_back_to_interpreter():
    """Entries the specializer can't fold must not change behavior."""

    def fresh():
        program = _fresh_l3()
        # A negative next-hop id defeats the ROUTE_TO value fold, so the
        # walk for this pipeline cannot specialize; dispatch falls back
        # to the interpreted handler.
        program.routes.insert(0x0B00_0000, 8, program.routes.lookup_value(H1_IP))
        from repro.apps.l3fwd import ROUTE_TO

        program.routes.insert(0x0C00_0000, 8, ROUTE_TO.bind(nh=-5))
        return program

    sw_on, recv_on = _drive(
        make_baseline_switch(flow_cache=False, compile=True), fresh(), count=20
    )
    sw_off, recv_off = _drive(
        make_baseline_switch(flow_cache=False, compile=False), fresh(), count=20
    )
    assert sw_on._compiled  # dispatch still compiled, walk interpreted
    assert _delivery_fingerprint(recv_on) == _delivery_fingerprint(recv_off)
    assert sw_on.state_summary() == sw_off.state_summary()


# ----------------------------------------------------------------------
# Pickling: compiled closures never enter checkpoints
# ----------------------------------------------------------------------
def test_switch_pickles_and_lazily_recompiles():
    network = build_linear(
        make_baseline_switch(flow_cache=False, compile=True), switch_count=1
    )
    switch = network.switches["s0"]
    switch.load_program(_fresh_l3())
    h0 = network.hosts["h0"]
    for i in range(20):
        network.sim.call_at(
            1_000 + i * 200_000,
            h0.send,
            make_udp_packet(H0_IP, H1_IP, payload_len=200),
        )
    network.run()
    assert switch._compiled  # hot
    clone = pickle.loads(pickle.dumps(switch))
    assert clone._compiled is None  # closures dropped, recompile pending
    assert clone.pipeline_compile is True
    assert clone.rx_packets == switch.rx_packets


def test_table_getstate_drops_lookup_memo():
    table = ExactTable("t")
    from repro.pisa.action import NO_ACTION

    table.insert((1,), NO_ACTION.bind())
    table.apply((1,))
    table.apply((2,))
    assert table._cache
    clone = pickle.loads(pickle.dumps(table))
    assert clone._cache == {}
    assert (clone.hit_count, clone.miss_count) == (1, 1)
    assert clone.generation == table.generation


# ----------------------------------------------------------------------
# Subprocess equivalence: whole experiments, env-toggled like CI
# ----------------------------------------------------------------------
_SCENARIO_SCRIPT = """
import dataclasses, json, sys

MS = 1_000_000_000
scenario = sys.argv[1]

if scenario == "microburst":
    from repro.experiments.microburst_exp import run_event_driven
    digest = dataclasses.asdict(run_event_driven(duration_ps=4 * MS, seed=7))
elif scenario == "hula":
    from repro.experiments.hula_exp import run_load_balance
    digest = dataclasses.asdict(run_load_balance(duration_ps=3 * MS, seed=7))
elif scenario == "netcache":
    from repro.experiments.netcache_exp import run_netcache
    digest = dataclasses.asdict(
        run_netcache(duration_ps=8 * MS, shift_at_ps=4 * MS, seed=7)
    )
elif scenario == "l3fwd":
    from repro.apps.l3fwd import L3Router
    from repro.experiments.factories import make_baseline_switch
    from repro.net.topology import build_linear
    from repro.packet.builder import make_udp_packet

    network = build_linear(make_baseline_switch(), switch_count=1)
    switch = network.switches["s0"]
    program = L3Router()
    program.install_host_routes({0x0A00_0001: 0, 0x0A00_0002: 1})
    switch.load_program(program)
    received = []
    network.hosts["h1"].add_sink(received.append)
    for i in range(40):
        network.sim.call_at(
            1_000 + i * 200_000,
            network.hosts["h0"].send,
            make_udp_packet(0x0A00_0001 + (i % 4), 0x0A00_0002, payload_len=200),
        )
    network.run()
    digest = {
        "delivery": [
            (p.payload_len, [(type(h).__name__, h.field_values()) for h in p.headers])
            for p in received
        ],
        "state": switch.state_summary(),
        "next_hops": list(program.next_hop_stats()),
    }
elif scenario == "fattree_sharded":
    from repro.experiments.shard_exp import ShardScenario, run_sharded

    result = run_sharded(
        ShardScenario(topology="fattree", k=4, waves=1, packets_per_sender=2),
        shards=4,
        mode="inline",
    )
    digest = {
        "digest": result.digest,
        "received": result.total_received(),
    }
else:
    raise SystemExit(f"unknown scenario {scenario!r}")

print(json.dumps(digest, sort_keys=True, default=repr))
"""

SCENARIOS = ("microburst", "hula", "netcache", "l3fwd", "fattree_sharded")


def _run_scenario(scenario, compile_flag):
    env = dict(os.environ)
    env[PIPELINE_COMPILE_ENV] = compile_flag
    env["PYTHONPATH"] = "src"
    env["PYTHONHASHSEED"] = "0"
    proc = subprocess.run(
        [sys.executable, "-c", _SCENARIO_SCRIPT, scenario],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_subprocess_fingerprints_identical_compile_on_vs_off(scenario):
    off = _run_scenario(scenario, "0")
    on = _run_scenario(scenario, "1")
    assert json.loads(off)  # sanity: the digest is substantive JSON
    assert on == off  # byte-identical stdout, not just equal objects
