"""``Simulator.fork``: in-memory snapshot isolation.

The satellite guarantees under test:

* a fork and its parent replay **byte-identical** execution traces when
  continued identically (fingerprint equality is what makes the forked
  chaos grid trustworthy),
* post-fork divergence is fully isolated — events injected into one
  copy never leak into the other, and neither do state mutations,
* the bytes-level helpers (``dumps_checkpoint``/``loads_checkpoint``)
  round-trip the same format as the file-based API, so service-side
  preemption blobs and on-disk checkpoints are interchangeable.
"""

import pickle

import pytest

from repro.sim.checkpoint import (
    CHECKPOINT_MAGIC,
    CheckpointError,
    dumps_checkpoint,
    load_checkpoint,
    loads_checkpoint,
)
from repro.sim.kernel import SCHEDULER_BACKENDS, SimulationError, Simulator

from tests.test_checkpoint import TraceRecorder, Ticker, _build


def _finish_with_trace(sim: Simulator, until_ps: int) -> list:
    recorder = TraceRecorder()
    sim.add_execution_observer(recorder)
    sim.run(until_ps=until_ps)
    return recorder.records


@pytest.mark.parametrize("backend", SCHEDULER_BACKENDS)
def test_identical_continuations_are_byte_identical(backend):
    sim, tickers = _build(backend)
    sim.run(until_ps=500)
    sim2, tickers2 = sim.fork(state=tickers)

    trace = _finish_with_trace(sim, 2_000)
    trace2 = _finish_with_trace(sim2, 2_000)

    assert trace2 == trace
    assert sim2.now_ps == sim.now_ps
    assert sim2.events_executed == sim.events_executed
    for orig, forked in zip(tickers, tickers2):
        assert forked.fired == orig.fired
    # The strongest form: the full serialized ticker state matches.
    assert pickle.dumps([t.fired for t in tickers2]) == pickle.dumps(
        [t.fired for t in tickers]
    )


@pytest.mark.parametrize("backend", SCHEDULER_BACKENDS)
def test_divergent_continuations_are_isolated(backend):
    sim, tickers = _build(backend)
    sim.run(until_ps=500)
    sim2, tickers2 = sim.fork(state=tickers)

    # Perturb only the fork: one extra ticker and a mutated period.
    intruder = Ticker(613, priority=2, tag="intruder")
    intruder.start(sim2)
    tickers2[0].period_ps = 45

    sim.run(until_ps=2_000)
    sim2.run(until_ps=2_000)

    # A pristine reference confirms the parent was untouched.
    ref_sim, ref_tickers = _build(backend)
    ref_sim.run(until_ps=2_000)
    for orig, ref in zip(tickers, ref_tickers):
        assert orig.fired == ref.fired
    # ...while the fork actually diverged.
    assert tickers2[0].fired != tickers[0].fired
    assert any(tag == "intruder" for _, tag in intruder.fired)
    assert not any(
        tag == "intruder" for t in tickers for _, tag in t.fired
    )


def test_fork_shares_no_mutable_structure():
    sim, tickers = _build("heap")
    sim.run(until_ps=200)
    sim2, tickers2 = sim.fork(state=tickers)
    assert sim2 is not sim
    assert tickers2 is not tickers
    assert all(f is not o for f, o in zip(tickers2, tickers))
    assert all(f.fired is not o.fired for f, o in zip(tickers2, tickers))
    # Each forked ticker drives the forked kernel, not the parent.
    assert all(t.sim is sim2 for t in tickers2)
    assert all(t.sim is sim for t in tickers)


def test_fork_refused_while_running():
    sim = Simulator()
    failures = []

    def try_fork() -> None:
        try:
            sim.fork()
        except SimulationError as exc:
            failures.append(str(exc))

    sim.call_at(10, try_fork)
    sim.run()
    assert failures and "running" in failures[0]


def test_bytes_helpers_round_trip_and_match_file_format(tmp_path):
    sim, tickers = _build("heap")
    sim.run(until_ps=300)
    blob = dumps_checkpoint(sim, state=tickers, label="blob")

    sim2, tickers2, header = loads_checkpoint(blob)
    assert header["format"] == CHECKPOINT_MAGIC
    assert header["label"] == "blob"
    assert header["now_ps"] == sim.now_ps
    assert sim2.events_executed == sim.events_executed

    # The blob *is* the file format: dump it to disk, load it back.
    path = tmp_path / "blob.ckpt"
    path.write_bytes(blob)
    sim3, _tickers3, header3 = load_checkpoint(str(path))
    assert header3 == header
    assert sim3.now_ps == sim2.now_ps

    # Identical continuations from bytes restore match the parent.
    trace = _finish_with_trace(sim, 1_500)
    trace2 = _finish_with_trace(sim2, 1_500)
    assert trace2 == trace
    for orig, restored in zip(tickers, tickers2):
        assert restored.fired == orig.fired


def test_loads_checkpoint_rejects_garbage():
    with pytest.raises(CheckpointError):
        loads_checkpoint(b"definitely not a checkpoint")
    with pytest.raises(CheckpointError, match="no Simulator"):
        header = pickle.dumps({"format": CHECKPOINT_MAGIC, "version": 1})
        loads_checkpoint(header + pickle.dumps({"sim": "nope"}))
