"""The documentation's code snippets actually work."""

import os
import re

from repro.lang import compile_program

DOCS = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "docs")


def _dsl_blocks(path):
    """Extract the DSL sources embedded in a markdown file."""
    with open(path) as handle:
        text = handle.read()
    blocks = re.findall(r"```(?:text|python)?\n(.*?)```", text, re.DOTALL)
    sources = []
    for block in blocks:
        match = re.search(r"(?m)^program \w+;[\s\S]*", block)
        if match is None or "on " not in match.group(0):
            continue
        sources.append(match.group(0).rsplit('"""', 1)[0])
    return sources


def test_tutorial_dsl_compiles():
    sources = _dsl_blocks(os.path.join(DOCS, "TUTORIAL.md"))
    assert sources, "tutorial lost its DSL example"
    for source in sources:
        program = compile_program(source)
        assert program.handled_events()


def test_language_reference_example_compiles():
    sources = _dsl_blocks(os.path.join(DOCS, "LANGUAGE.md"))
    assert sources, "language reference lost its example"
    for source in sources:
        program = compile_program(source)
        assert program.name == "microburst"
        assert program.state_bits() == 1024 * 32


def test_readme_quickstart_class_compiles():
    """The README's native-model snippet is importable-quality code."""
    readme = os.path.join(os.path.dirname(DOCS), "README.md")
    with open(readme) as handle:
        text = handle.read()
    match = re.search(r"```python\n(.*?)```", text, re.DOTALL)
    assert match, "README lost its quickstart snippet"
    snippet = match.group(1).replace("...", "pass")
    namespace = {}
    exec(compile(snippet, "README.md", "exec"), namespace)  # noqa: S102
    program_cls = namespace["Microburst"]
    program = program_cls()
    assert program.handled_events()
    # And the snippet actually loaded it onto a switch.
    assert "switch" in namespace
    assert namespace["switch"].program is program or namespace[
        "switch"
    ].program.__class__ is program_cls
