"""Every ``examples/`` script must run headless and exit cleanly.

The examples are the repo's front door; this smoke suite keeps them
compiling and running as the APIs underneath them evolve.  Each script
runs in its own interpreter (as a reader would run it) with the repo's
``src/`` on ``PYTHONPATH`` and no arguments.
"""

import glob
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")

EXAMPLE_SCRIPTS = sorted(glob.glob(os.path.join(EXAMPLES_DIR, "*.py")))


def test_examples_exist():
    assert EXAMPLE_SCRIPTS, f"no example scripts found under {EXAMPLES_DIR}"


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[os.path.basename(s) for s in EXAMPLE_SCRIPTS]
)
def test_example_runs_headless(script, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [sys.executable, script],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(tmp_path),  # scripts must not depend on the repo cwd
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{os.path.basename(script)} exited {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{os.path.basename(script)} printed nothing"
