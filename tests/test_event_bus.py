"""Unit tests for the central EventBus and its switch wiring."""

from repro.arch.bus import BusObserver, EventBus
from repro.arch.event_driven import LogicalEventSwitch
from repro.arch.events import Event, EventType
from repro.arch.program import P4Program, handler
from repro.arch.sume import SumeEventSwitch
from repro.packet.builder import make_udp_packet
from repro.sim.kernel import Simulator


class Recorder(BusObserver):
    def __init__(self):
        self.publishes = []
        self.dispatches = []
        self.drops = []

    def on_publish(self, bus, event, admitted):
        self.publishes.append((bus.name, event.kind, admitted))

    def on_dispatch(self, bus, event, latency_ps, handled):
        self.dispatches.append((bus.name, event.kind, latency_ps, handled))

    def on_drop(self, bus, event):
        self.drops.append((bus.name, event.kind))


def timer_event(t_ps=0, timer_id=1):
    return Event(kind=EventType.TIMER, time_ps=t_ps, meta={"timer_id": timer_id})


# ----------------------------------------------------------------------
# Publish / admission / routing
# ----------------------------------------------------------------------
def test_publish_admitted_counts_fired_and_routes():
    sim = Simulator()
    bus = EventBus(sim)
    seen = []
    bus.subscribe(seen.append)
    assert bus.publish(timer_event()) is True
    assert bus.fired[EventType.TIMER] == 1
    assert bus.suppressed[EventType.TIMER] == 0
    assert len(seen) == 1


def test_admission_gate_suppresses():
    sim = Simulator()
    bus = EventBus(sim)
    seen = []
    bus.subscribe(seen.append)
    bus.set_admission(lambda event: event.kind is EventType.TIMER)
    assert bus.publish(timer_event()) is True
    user = Event(kind=EventType.USER, time_ps=0)
    assert bus.publish(user) is False
    assert bus.suppressed[EventType.USER] == 1
    assert bus.fired[EventType.USER] == 0
    assert [event.kind for event in seen] == [EventType.TIMER]
    assert bus.published_total() == 2


def test_gated_false_bypasses_admission():
    sim = Simulator()
    bus = EventBus(sim)
    bus.set_admission(lambda event: False)
    assert bus.publish(timer_event(), gated=False) is True
    assert bus.fired[EventType.TIMER] == 1


def test_route_false_skips_subscribers_but_counts():
    sim = Simulator()
    bus = EventBus(sim)
    seen = []
    bus.subscribe(seen.append)
    assert bus.publish(timer_event(), route=False) is True
    assert seen == []
    assert bus.fired[EventType.TIMER] == 1


def test_per_kind_subscription():
    sim = Simulator()
    bus = EventBus(sim)
    timers, everything = [], []
    bus.subscribe(timers.append, kinds=[EventType.TIMER])
    bus.subscribe(everything.append)
    bus.publish(timer_event())
    bus.publish(Event(kind=EventType.USER, time_ps=0))
    assert [event.kind for event in timers] == [EventType.TIMER]
    assert [event.kind for event in everything] == [
        EventType.TIMER,
        EventType.USER,
    ]


# ----------------------------------------------------------------------
# Dispatch side
# ----------------------------------------------------------------------
def test_dispatch_runs_dispatcher_and_counts_handled():
    sim = Simulator()
    bus = EventBus(sim)
    ran = []
    bus.set_dispatcher(lambda event: (ran.append(event.kind), True)[1])
    assert bus.dispatch(timer_event()) is True
    assert ran == [EventType.TIMER]
    assert bus.handled[EventType.TIMER] == 1


def test_unhandled_dispatch_not_counted():
    sim = Simulator()
    bus = EventBus(sim)
    bus.set_dispatcher(lambda event: False)
    assert bus.dispatch(timer_event()) is False
    assert bus.handled[EventType.TIMER] == 0


def test_drop_counts_and_notifies():
    sim = Simulator()
    bus = EventBus(sim)
    recorder = Recorder()
    bus.add_observer(recorder)
    bus.drop(timer_event())
    assert bus.dropped[EventType.TIMER] == 1
    assert recorder.drops == [("bus", EventType.TIMER)]


# ----------------------------------------------------------------------
# Observers
# ----------------------------------------------------------------------
def test_observer_sees_publish_and_dispatch_latency():
    sim = Simulator()
    bus = EventBus(sim)
    recorder = Recorder()
    bus.add_observer(recorder)
    event = timer_event(t_ps=0)
    bus.publish(event, route=False)
    sim.call_at(700, bus.dispatch, event)
    sim.run()
    assert recorder.publishes == [("bus", EventType.TIMER, True)]
    # Staleness = dispatch time - fire time.
    assert recorder.dispatches == [("bus", EventType.TIMER, 700, False)]


def test_observer_sees_suppressed_publish():
    sim = Simulator()
    bus = EventBus(sim)
    recorder = Recorder()
    bus.add_observer(recorder)
    bus.set_admission(lambda event: False)
    bus.publish(timer_event())
    assert recorder.publishes == [("bus", EventType.TIMER, False)]


def test_remove_observer():
    sim = Simulator()
    bus = EventBus(sim)
    recorder = Recorder()
    bus.add_observer(recorder)
    bus.remove_observer(recorder)
    bus.publish(timer_event())
    assert recorder.publishes == []


def test_global_observer_scoping():
    """Global observers attach to buses created while registered — only."""
    sim = Simulator()
    before = EventBus(sim, name="before")
    recorder = Recorder()
    EventBus.register_global_observer(recorder)
    try:
        during = EventBus(sim, name="during")
    finally:
        EventBus.unregister_global_observer(recorder)
    after = EventBus(sim, name="after")
    for bus in (before, during, after):
        bus.publish(timer_event())
    assert recorder.publishes == [("during", EventType.TIMER, True)]


# ----------------------------------------------------------------------
# Switch integration
# ----------------------------------------------------------------------
class TimerCounter(P4Program):
    def __init__(self):
        super().__init__()
        self.timers = 0

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx, pkt, meta):
        meta.send_to_port(1)

    @handler(EventType.TIMER)
    def on_timer(self, ctx, event):
        self.timers += 1


def test_switch_counters_alias_bus_counters():
    sim = Simulator()
    switch = LogicalEventSwitch(sim)
    assert switch.events_fired is switch.bus.fired
    assert switch.events_handled is switch.bus.handled
    assert switch.events_suppressed is switch.bus.suppressed


def test_fire_event_flows_through_bus_to_handler():
    sim = Simulator()
    switch = LogicalEventSwitch(sim)
    program = TimerCounter()
    switch.load_program(program)
    switch.fire_event(timer_event(t_ps=0))
    sim.run()
    assert program.timers == 1
    assert switch.bus.fired[EventType.TIMER] == 1
    assert switch.bus.handled[EventType.TIMER] == 1


def test_pipeline_packet_events_counted_on_bus():
    sim = Simulator()
    switch = LogicalEventSwitch(sim)
    switch.load_program(TimerCounter())
    sent = []
    switch.set_tx_callback(lambda pkt, port: sent.append(port))
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    assert sent == [1]
    assert switch.bus.fired[EventType.INGRESS_PACKET] == 1
    assert switch.bus.handled[EventType.INGRESS_PACKET] == 1


def test_merger_overflow_reports_bus_drop():
    sim = Simulator()
    switch = SumeEventSwitch(
        sim,
        merger_queue_capacity=1,
        merger_injection_enabled=False,
    )
    switch.load_program(TimerCounter())
    # With injection off and no carrier traffic, a second offered timer
    # evicts the first from the full per-kind queue.
    switch.fire_event(timer_event(t_ps=0, timer_id=1))
    switch.fire_event(timer_event(t_ps=0, timer_id=2))
    sim.run()
    assert switch.merger.stats.dropped == 1
    assert switch.bus.dropped[EventType.TIMER] == 1
