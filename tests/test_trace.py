"""Unit tests for packet trace capture and replay."""

import io

import pytest

from repro.packet.builder import make_tcp_packet, make_udp_packet
from repro.packet.parser import Deparser
from repro.packet.trace import TraceReader, TraceRecord, TraceReplayer, TraceWriter
from repro.sim.kernel import Simulator


def capture_stream(packets_with_ts):
    stream = io.BytesIO()
    writer = TraceWriter(stream)
    for ts, pkt in packets_with_ts:
        writer.write_packet(ts, pkt)
    writer.close()
    stream.seek(0)
    return stream


def test_roundtrip_bytes_and_timestamps():
    packets = [
        (100, make_udp_packet(1, 2, payload_len=50)),
        (250, make_tcp_packet(3, 4, payload_len=10)),
    ]
    stream = capture_stream(packets)
    records = TraceReader(stream).read_all()
    deparser = Deparser()
    assert [r.ts_ps for r in records] == [100, 250]
    assert records[0].data == deparser.deparse(packets[0][1])
    assert records[1].data == deparser.deparse(packets[1][1])


def test_bad_magic_rejected():
    with pytest.raises(ValueError):
        TraceReader(io.BytesIO(b"NOTTRACE" + b"\x00" * 16))


def test_truncated_record_detected():
    stream = capture_stream([(1, make_udp_packet(1, 2))])
    data = stream.getvalue()[:-5]  # chop the body
    with pytest.raises(ValueError):
        TraceReader(io.BytesIO(data)).read_all()


def test_timestamps_must_be_monotone():
    writer = TraceWriter(io.BytesIO())
    writer.write(100, b"x")
    with pytest.raises(ValueError):
        writer.write(50, b"y")
    with pytest.raises(ValueError):
        writer.write(-1, b"z")


def test_file_roundtrip(tmp_path):
    path = tmp_path / "capture.trc"
    with TraceWriter(path) as writer:
        writer.write_packet(10, make_udp_packet(1, 2))
    with TraceReader(path) as reader:
        records = reader.read_all()
    assert len(records) == 1


def test_sink_captures_at_sim_time():
    sim = Simulator()
    stream = io.BytesIO()
    writer = TraceWriter(stream)
    sink = writer.sink(sim)
    sim.call_at(777, sink, make_udp_packet(1, 2))
    sim.run()
    stream.seek(0)
    assert TraceReader(stream).read_all()[0].ts_ps == 777


def test_replay_preserves_relative_timing():
    packets = [
        (1_000, make_udp_packet(1, 2, sport=1, dport=1)),
        (3_000, make_udp_packet(1, 2, sport=2, dport=2)),
    ]
    stream = capture_stream(packets)
    records = TraceReader(stream).read_all()
    sim = Simulator()
    arrivals = []
    replayer = TraceReplayer(
        sim, records, lambda pkt: arrivals.append((sim.now_ps, pkt)), offset_ps=500
    )
    assert replayer.schedule() == 2
    sim.run()
    assert [t for t, _ in arrivals] == [500, 2_500]  # normalized to offset
    assert arrivals[0][1].five_tuple().sport == 1


def test_replay_time_scaling():
    records = [TraceRecord(0, make_udp_packet(1, 2).headers[0].pack() + b"")]
    # Build real records via writer for valid parsing.
    stream = capture_stream([(0, make_udp_packet(1, 2)), (1_000, make_udp_packet(1, 2))])
    records = TraceReader(stream).read_all()
    sim = Simulator()
    arrivals = []
    TraceReplayer(
        sim, records, lambda pkt: arrivals.append(sim.now_ps), time_scale=2.0
    ).schedule()
    sim.run()
    assert arrivals == [0, 2_000]
    with pytest.raises(ValueError):
        TraceReplayer(sim, records, lambda pkt: None, time_scale=0)


def test_capture_then_replay_through_switch():
    """Capture one experiment's egress, replay it into a fresh switch."""
    from app_harness import H0_IP, H1_IP, single_switch
    from repro.apps.aqm import DropTailProgram

    program = DropTailProgram()
    network, switch, sink = single_switch(program)
    stream = io.BytesIO()
    writer = TraceWriter(stream)
    network.hosts["h1"].add_sink(writer.sink(network.sim))
    for i in range(5):
        network.sim.call_at(
            1_000 + i * 50_000,
            network.hosts["h0"].send,
            make_udp_packet(H0_IP, H1_IP, payload_len=100 + i),
        )
    network.run()
    writer.close()
    stream.seek(0)
    records = TraceReader(stream).read_all()
    assert len(records) == 5

    # Replay into a second, fresh topology.
    program2 = DropTailProgram()
    network2, switch2, sink2 = single_switch(program2)
    TraceReplayer(
        network2.sim, records, network2.hosts["h0"].send, offset_ps=1_000
    ).schedule()
    network2.run()
    assert sink2.packets == 5
    # Byte-identical packet sizes survived the capture/replay cycle.
    assert sink2.bytes == sum(100 + i + 42 for i in range(5))
