"""Unit tests for the §6 Tofino-style event emulation."""

import pytest

from repro.arch.emulation import EmulatedEventSwitch, MARKER_WIRE_BYTES
from repro.arch.events import EventType
from repro.arch.program import P4Program, handler
from repro.packet.builder import make_udp_packet
from repro.sim.kernel import Simulator
from repro.sim.units import bytes_to_time_ps


class Auditor(P4Program):
    def __init__(self):
        super().__init__()
        self.dequeues = []
        self.timers = []

    @handler(EventType.INGRESS_PACKET)
    def ingress(self, ctx, pkt, meta):
        meta.send_to_port(1)

    @handler(EventType.DEQUEUE)
    def on_dequeue(self, ctx, event):
        self.dequeues.append((event.time_ps, ctx.now_ps))

    @handler(EventType.TIMER)
    def on_timer(self, ctx, event):
        self.timers.append((event.time_ps, ctx.now_ps))


def make_switch(**kwargs):
    sim = Simulator()
    switch = EmulatedEventSwitch(sim, **kwargs)
    program = Auditor()
    switch.load_program(program)
    switch.set_tx_callback(lambda pkt, port: None)
    return sim, switch, program


def test_timer_emulated_via_generator_marker():
    sim, switch, program = make_switch()
    switch.configure_timer(0, 1_000_000)
    sim.run(until_ps=2_500_000)
    assert len(program.timers) == 2
    assert switch.emu_timer_markers == 2
    # Each delivery is delayed by the pipeline traversal.
    for fired, handled in program.timers:
        assert handled == fired + switch.ingress_pipeline.latency_ps


def test_dequeue_emulated_via_recirculation():
    sim, switch, program = make_switch()
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    assert len(program.dequeues) == 1
    assert switch.emu_dequeue_markers == 1
    fired, handled = program.dequeues[0]
    expected_delay = (
        bytes_to_time_ps(MARKER_WIRE_BYTES, switch.recirc_rate_gbps)
        + switch.ingress_pipeline.latency_ps
    )
    assert handled == fired + expected_delay


def test_recirc_port_serializes_markers():
    sim, switch, program = make_switch(recirc_rate_gbps=0.01)
    for i in range(3):
        sim.call_at(i + 1, switch.receive, make_udp_packet(1, 2), 0)
    sim.run()
    handled_times = [handled for _f, handled in program.dequeues]
    gaps = [b - a for a, b in zip(handled_times, handled_times[1:])]
    marker_time = bytes_to_time_ps(MARKER_WIRE_BYTES, 0.01)
    assert all(gap >= marker_time * 0.99 for gap in gaps)


def test_saturated_recirc_drops_events():
    sim, switch, program = make_switch(
        recirc_rate_gbps=0.0001, recirc_queue_capacity=2
    )
    for i in range(10):
        sim.call_at(i + 1, switch.receive, make_udp_packet(1, 2), 0)
    sim.run(until_ps=10_000_000)
    assert switch.emu_events_lost > 0


def test_unsupported_events_stay_suppressed():
    sim, switch, program = make_switch()
    switch.receive(make_udp_packet(1, 2), 0)
    sim.run()
    # Enqueue fired in the TM but Tofino-like devices cannot deliver it.
    assert switch.events_suppressed[EventType.ENQUEUE] == 1
    assert switch.events_fired[EventType.ENQUEUE] == 0


def test_overhead_report():
    sim, switch, program = make_switch()
    switch.configure_timer(0, 500_000)
    for i in range(5):
        sim.call_at(i * 1_000 + 1, switch.receive, make_udp_packet(1, 2), 0)
    sim.run(until_ps=5_000_000)
    report = switch.emulation_overhead_report(5_000_000)
    assert report["dequeue_markers"] == 5
    assert report["timer_markers"] > 0
    assert 0 < report["recirc_utilization"] < 1
    assert report["pipeline_slot_fraction"] > 0
    with pytest.raises(ValueError):
        switch.emulation_overhead_report(0)


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        EmulatedEventSwitch(sim, recirc_rate_gbps=0)
