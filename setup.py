"""Legacy setup shim: enables `pip install -e . --no-use-pep517` in
offline environments where the `wheel` package is unavailable."""

from setuptools import setup

setup()
